"""Execution-latency regression surface — paper eq. 3.

``eex(st, d, u) = (a1 u^2 + a2 u + a3) d^2 + (b1 u^2 + b2 u + b3) d``

Units follow the paper: the latency is in **milliseconds**, ``d`` is in
**hundreds of data items** and ``u`` is the CPU utilization as a
**fraction** in ``[0, 1]`` (the paper says "percentage" but its Table 2
coefficients are only dimensionally sensible with a fractional ``u``; see
``repro.bench.datasets``).  :meth:`ExecutionLatencyModel.predict_seconds`
converts from tracks/seconds for internal callers.

Two fitting procedures are provided:

* :meth:`ExecutionLatencyModel.fit_two_stage` — the paper's §4.2.1.1
  procedure: per-utilization through-origin quadratics ``Y = A(u) d^2 +
  B(u) d`` (the red "Y" curves of Figs. 2-3), then quadratic fits of
  ``A(u)`` and ``B(u)`` over utilization (the green "Y-" surface).
* :meth:`ExecutionLatencyModel.fit_direct` — one-stage OLS on the full
  6-column surface basis; used as a cross-check (tests assert the two
  agree on noiseless data).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InsufficientDataError, RegressionError
from repro.regression.design import (
    poly2_features,
    quadratic_features,
    surface_features,
)
from repro.regression.polyfit import OLSResult, ols_fit
from repro.units import MS, ms_to_s, tracks_to_regression_units


@dataclass(frozen=True)
class ExecutionLatencyModel:
    """The fitted eq. 3 surface for one subtask.

    Attributes
    ----------
    subtask_name:
        Which subtask this surface describes.
    a:
        ``(a1, a2, a3)`` — the quadratic-in-``u`` coefficient of ``d^2``.
    b:
        ``(b1, b2, b3)`` — the quadratic-in-``u`` coefficient of ``d``.
    r_squared:
        Goodness of fit over the training profile (1.0 for exact models).
    n_samples:
        Profile points used for the fit (0 for hand-specified models).
    """

    subtask_name: str
    a: tuple[float, float, float]
    b: tuple[float, float, float]
    r_squared: float = 1.0
    n_samples: int = 0
    stage1_r_squared: dict[float, float] = field(default_factory=dict, compare=False)

    # -- prediction -------------------------------------------------------------

    def d2_coefficient(self, u: float) -> float:
        """``A(u) = a1 u^2 + a2 u + a3``."""
        a1, a2, a3 = self.a
        return a1 * u * u + a2 * u + a3

    def d_coefficient(self, u: float) -> float:
        """``B(u) = b1 u^2 + b2 u + b3``."""
        b1, b2, b3 = self.b
        return b1 * u * u + b2 * u + b3

    def predict_ms(self, d_hundreds: float, u: float) -> float:
        """Forecast latency in milliseconds (paper units).

        Negative predictions (possible when extrapolating a quadratic
        outside the profiled region) are clamped to zero — a latency
        forecast below zero carries no physical meaning.
        """
        if d_hundreds < 0.0:
            raise RegressionError(f"negative data size {d_hundreds}")
        if not 0.0 <= u <= 1.0:
            raise RegressionError(f"utilization {u} outside [0, 1]")
        value = (
            self.d2_coefficient(u) * d_hundreds * d_hundreds
            + self.d_coefficient(u) * d_hundreds
        )
        return max(0.0, value)

    def predict_seconds(self, d_tracks: float, u: float) -> float:
        """Forecast latency in seconds for ``d_tracks`` raw data items."""
        return ms_to_s(self.predict_ms(tracks_to_regression_units(d_tracks), u))

    def predict_seconds_many(
        self, d_tracks: float, utilizations: "np.ndarray | list[float]"
    ) -> np.ndarray:
        """One data share forecast at many utilizations, in seconds.

        This is the Figure 5 hot path batched: every replica of a
        subtask carries the same share ``d / k``, only the hosting
        processor's utilization differs.  Element ``i`` is
        **bit-identical** to ``predict_seconds(d_tracks, u[i])`` — the
        arithmetic mirrors the scalar chain operation for operation
        (left-associated coefficient polynomials, then
        ``A*d*d + B*d``, clamp, ms→s), unlike :meth:`predict_ms_grid`
        whose ``d**2`` grouping may differ in the last ulp.
        """
        d_h = tracks_to_regression_units(d_tracks)
        if d_h < 0.0:
            raise RegressionError(f"negative data size {d_h}")
        u_arr = np.asarray(utilizations, dtype=float)
        if u_arr.size and (float(u_arr.min()) < 0.0 or float(u_arr.max()) > 1.0):
            raise RegressionError("utilization outside [0, 1]")
        a1, a2, a3 = self.a
        b1, b2, b3 = self.b
        a_u = a1 * u_arr * u_arr + a2 * u_arr + a3
        b_u = b1 * u_arr * u_arr + b2 * u_arr + b3
        value_ms = a_u * d_h * d_h + b_u * d_h
        return np.maximum(0.0, value_ms) * MS

    def predict_ms_grid(self, d_hundreds: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`predict_ms` over parallel arrays."""
        d_arr = np.asarray(d_hundreds, dtype=float)
        u_arr = np.asarray(u, dtype=float)
        a_u = self.a[0] * u_arr**2 + self.a[1] * u_arr + self.a[2]
        b_u = self.b[0] * u_arr**2 + self.b[1] * u_arr + self.b[2]
        return np.maximum(0.0, a_u * d_arr**2 + b_u * d_arr)

    # -- fitting -----------------------------------------------------------------

    @classmethod
    def fit_two_stage(
        cls,
        subtask_name: str,
        d_hundreds: np.ndarray,
        u: np.ndarray,
        latency_ms: np.ndarray,
    ) -> "ExecutionLatencyModel":
        """Fit by the paper's two-stage procedure (§4.2.1.1, Figs. 2-4).

        Stage 1 groups samples by utilization level and fits
        ``Y = A d^2 + B d`` per level; stage 2 fits quadratics
        ``A(u)``, ``B(u)`` across levels.  Needs >= 3 distinct
        utilization levels and >= 2 distinct data sizes per level.
        """
        d_arr = np.asarray(d_hundreds, dtype=float).ravel()
        u_arr = np.asarray(u, dtype=float).ravel()
        y_arr = np.asarray(latency_ms, dtype=float).ravel()
        if not (d_arr.shape == u_arr.shape == y_arr.shape):
            raise RegressionError("d, u and latency arrays must align")

        levels = np.unique(u_arr)
        if levels.size < 3:
            raise InsufficientDataError(
                f"two-stage fit needs >= 3 utilization levels, got {levels.size}"
            )
        a_vals: list[float] = []
        b_vals: list[float] = []
        stage1_r2: dict[float, float] = {}
        for level in levels:
            mask = u_arr == level
            d_level = d_arr[mask]
            if np.unique(d_level).size < 2:
                raise InsufficientDataError(
                    f"utilization level {level} has "
                    f"{np.unique(d_level).size} distinct data sizes; need >= 2"
                )
            result = ols_fit(poly2_features(d_level), y_arr[mask])
            a_vals.append(float(result.coefficients[0]))
            b_vals.append(float(result.coefficients[1]))
            stage1_r2[float(level)] = result.r_squared

        a_fit = ols_fit(quadratic_features(levels), np.asarray(a_vals))
        b_fit = ols_fit(quadratic_features(levels), np.asarray(b_vals))

        model = cls(
            subtask_name=subtask_name,
            a=tuple(float(c) for c in a_fit.coefficients),  # type: ignore[arg-type]
            b=tuple(float(c) for c in b_fit.coefficients),  # type: ignore[arg-type]
            r_squared=0.0,
            n_samples=int(d_arr.size),
            stage1_r_squared=stage1_r2,
        )
        # Overall R^2 of the final surface against the raw samples.
        predictions = model.predict_ms_grid(d_arr, u_arr)
        resid = y_arr - predictions
        centered = y_arr - y_arr.mean()
        ss_tot = float(centered @ centered)
        r2 = 1.0 - float(resid @ resid) / ss_tot if ss_tot > 0.0 else 1.0
        return cls(
            subtask_name=model.subtask_name,
            a=model.a,
            b=model.b,
            r_squared=r2,
            n_samples=model.n_samples,
            stage1_r_squared=stage1_r2,
        )

    @classmethod
    def fit_direct(
        cls,
        subtask_name: str,
        d_hundreds: np.ndarray,
        u: np.ndarray,
        latency_ms: np.ndarray,
    ) -> "ExecutionLatencyModel":
        """Fit the 6-coefficient surface in one OLS solve (cross-check)."""
        d_arr = np.asarray(d_hundreds, dtype=float).ravel()
        u_arr = np.asarray(u, dtype=float).ravel()
        y_arr = np.asarray(latency_ms, dtype=float).ravel()
        result: OLSResult = ols_fit(surface_features(d_arr, u_arr), y_arr)
        c = result.coefficients
        return cls(
            subtask_name=subtask_name,
            a=(float(c[0]), float(c[1]), float(c[2])),
            b=(float(c[3]), float(c[4]), float(c[5])),
            r_squared=result.r_squared,
            n_samples=result.n_samples,
        )

    # -- introspection ---------------------------------------------------------

    def coefficients(self) -> dict[str, float]:
        """Named coefficients in the paper's Table 2 layout."""
        return {
            "a1": self.a[0],
            "a2": self.a[1],
            "a3": self.a[2],
            "b1": self.b[0],
            "b2": self.b[1],
            "b3": self.b[2],
        }
