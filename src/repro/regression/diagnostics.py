"""Regression diagnostics for the fitted latency surfaces.

The paper ships coefficients and plots; a production reproduction also
needs to *audit* its fits.  :func:`diagnose_latency_fit` examines a
profiling campaign's samples against its fitted surface and reports:

* overall and per-utilization-level R²,
* residual summary (bias, RMSE, worst relative error),
* a heteroscedasticity indicator (ratio of residual RMS between the
  largest-d and smallest-d halves of the sample — multiplicative noise
  on a quadratic demand makes residuals grow with d, which is why the
  two-stage fit weights the big-d region implicitly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import RegressionError
from repro.formatting import format_table

if TYPE_CHECKING:  # annotation-only: bench sits above regression (LAY-DAG)
    from repro.bench.profiler import LatencyProfileResult


@dataclass(frozen=True)
class FitDiagnostics:
    """Audit results for one fitted eq. 3 surface."""

    subtask_name: str
    n_samples: int
    r_squared: float
    per_level_r_squared: dict[float, float]
    mean_residual_ms: float
    rmse_ms: float
    worst_relative_error: float
    heteroscedasticity_ratio: float

    @property
    def is_healthy(self) -> bool:
        """A usable fit: explains the data, no gross outliers."""
        return (
            self.r_squared > 0.9
            and self.worst_relative_error < 1.0
            and all(v > 0.8 for v in self.per_level_r_squared.values())
        )

    def render(self) -> str:
        """ASCII summary."""
        rows = [
            ["samples", self.n_samples],
            ["overall R^2", self.r_squared],
            ["mean residual (ms)", self.mean_residual_ms],
            ["RMSE (ms)", self.rmse_ms],
            ["worst relative error", self.worst_relative_error],
            ["heteroscedasticity ratio", self.heteroscedasticity_ratio],
            ["healthy", str(self.is_healthy)],
        ]
        for level, r2 in sorted(self.per_level_r_squared.items()):
            rows.append([f"R^2 at u={level:.0%}", r2])
        return format_table(
            ["quantity", "value"],
            rows,
            title=f"Fit diagnostics — {self.subtask_name}",
        )


def diagnose_latency_fit(result: LatencyProfileResult) -> FitDiagnostics:
    """Audit a profiling campaign's fitted surface against its samples."""
    if not result.samples:
        raise RegressionError("profile has no samples to diagnose")
    d, u, y = result.arrays()
    predicted = result.model.predict_ms_grid(d, u)
    residuals = y - predicted

    centered = y - y.mean()
    ss_tot = float(centered @ centered)
    r_squared = (
        1.0 - float(residuals @ residuals) / ss_tot if ss_tot > 0 else 1.0
    )

    per_level: dict[float, float] = {}
    for level in np.unique(u):
        mask = u == level
        y_level = y[mask]
        res_level = residuals[mask]
        centered_level = y_level - y_level.mean()
        ss = float(centered_level @ centered_level)
        per_level[float(level)] = (
            1.0 - float(res_level @ res_level) / ss if ss > 0 else 1.0
        )

    relative = np.abs(residuals) / np.maximum(np.abs(y), 1e-9)

    order = np.argsort(d, kind="stable")
    half = len(order) // 2
    small_rms = float(np.sqrt(np.mean(residuals[order[:half]] ** 2)))
    large_rms = float(np.sqrt(np.mean(residuals[order[half:]] ** 2)))
    hetero = large_rms / max(small_rms, 1e-12)

    return FitDiagnostics(
        subtask_name=result.subtask_name,
        n_samples=len(result.samples),
        r_squared=r_squared,
        per_level_r_squared=per_level,
        mean_residual_ms=float(residuals.mean()),
        rmse_ms=float(np.sqrt(np.mean(residuals**2))),
        worst_relative_error=float(relative.max()),
        heteroscedasticity_ratio=hetero,
    )
