"""Design-matrix builders for the paper's regression forms.

Two shapes are needed:

* the **per-utilization** stage of eq. 3: a through-origin quadratic in
  data size, ``Y = A d^2 + B d`` (:func:`poly2_features`);
* the **direct one-stage** alternative to eq. 3's two-stage procedure:
  the full surface ``(u^2, u, 1) x (d^2, d)`` cross basis
  (:func:`surface_features`), columns ordered
  ``[u^2 d^2, u d^2, d^2, u^2 d, u d, d]`` to match the paper's
  ``(a1, a2, a3, b1, b2, b3)`` coefficient layout.

All builders validate and broadcast inputs, returning C-contiguous float
arrays ready for :func:`repro.regression.polyfit.ols_fit`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RegressionError


def _as_1d(name: str, values: np.ndarray) -> np.ndarray:
    arr = np.atleast_1d(np.asarray(values, dtype=float))
    if arr.ndim != 1:
        raise RegressionError(f"{name} must be 1-D, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise RegressionError(f"{name} contains non-finite values")
    return arr


def poly2_features(d: np.ndarray) -> np.ndarray:
    """Through-origin quadratic features ``[d^2, d]`` for eq. 3 stage 1.

    Omitting the intercept encodes the physical constraint that zero data
    items cost zero execution time, which the paper's eq. 3 also encodes
    (no constant term).
    """
    d1 = _as_1d("d", d)
    return np.column_stack([d1 * d1, d1])


def quadratic_features(u: np.ndarray) -> np.ndarray:
    """Quadratic-with-intercept features ``[u^2, u, 1]`` for eq. 3 stage 2."""
    u1 = _as_1d("u", u)
    return np.column_stack([u1 * u1, u1, np.ones_like(u1)])


def surface_features(d: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Full eq. 3 surface basis; columns ``[u^2 d^2, u d^2, d^2, u^2 d, u d, d]``.

    ``d`` and ``u`` must have equal length (one row per observation).
    """
    d1 = _as_1d("d", d)
    u1 = _as_1d("u", u)
    if d1.shape[0] != u1.shape[0]:
        raise RegressionError(
            f"d and u must have equal length, got {d1.shape[0]} and {u1.shape[0]}"
        )
    d2 = d1 * d1
    u2 = u1 * u1
    return np.column_stack([u2 * d2, u1 * d2, d2, u2 * d1, u1 * d1, d1])


def linear_through_origin_features(x: np.ndarray) -> np.ndarray:
    """Single-column design ``[x]`` for eq. 5's ``Dbuf = k * load`` fit."""
    x1 = _as_1d("x", x)
    return x1.reshape(-1, 1)
