"""Transmission-delay model — paper eq. 6.

``Dtrans(d) = d / ls`` where ``d`` is the message size in bits and
``ls`` the link transmission speed.  Unlike eqs. 3 and 5 this is not
fitted: link speed is a known constant of the deployment.  The model
also accounts for the fixed per-message overhead the network charges,
so the estimator's forecast matches what the simulated medium does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RegressionError
from repro.units import ETHERNET_100_MBPS, s_to_ms, transmission_time


@dataclass(frozen=True)
class TransmissionModel:
    """Deterministic wire-clocking delay for a message.

    Attributes
    ----------
    bandwidth_bps:
        Link speed ``ls`` in bits/second.
    overhead_bytes:
        Fixed per-message framing/protocol overhead included in the
        forecast (must mirror the network's configuration).
    """

    bandwidth_bps: float = ETHERNET_100_MBPS
    overhead_bytes: float = 1500.0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0.0:
            raise RegressionError(
                f"bandwidth must be positive, got {self.bandwidth_bps}"
            )
        if self.overhead_bytes < 0.0:
            raise RegressionError(
                f"overhead must be non-negative, got {self.overhead_bytes}"
            )

    def predict_seconds(self, payload_bytes: float) -> float:
        """``Dtrans`` in seconds for a payload of ``payload_bytes``."""
        return transmission_time(
            payload_bytes + self.overhead_bytes, self.bandwidth_bps
        )

    def predict_ms(self, payload_bytes: float) -> float:
        """``Dtrans`` in milliseconds."""
        return s_to_ms(self.predict_seconds(payload_bytes))
