"""Combined communication-delay model — paper eq. 4.

``ecd(m, d, c) = Dbuf(d, c) + Dtrans(d)``

Bundles the fitted :class:`~repro.regression.buffer_model.BufferDelayModel`
(eq. 5) with the deterministic
:class:`~repro.regression.transmission.TransmissionModel` (eq. 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.regression.buffer_model import BufferDelayModel
from repro.regression.transmission import TransmissionModel
from repro.units import s_to_ms


@dataclass(frozen=True)
class CommunicationDelayModel:
    """Forecast of one message's end-to-end communication delay."""

    buffer: BufferDelayModel
    transmission: TransmissionModel

    def predict_seconds(self, payload_bytes: float, total_tracks: float) -> float:
        """``ecd`` in seconds.

        Parameters
        ----------
        payload_bytes:
            Application payload carried by this message.
        total_tracks:
            Total periodic workload (data items across all tasks in the
            current period) — the driver of eq. 5's buffer delay.
        """
        return self.buffer.predict_seconds(total_tracks) + (
            self.transmission.predict_seconds(payload_bytes)
        )

    def predict_ms(self, payload_bytes: float, total_tracks: float) -> float:
        """``ecd`` in milliseconds."""
        return s_to_ms(self.predict_seconds(payload_bytes, total_tracks))
