"""Statistical regression substrate (paper §4.2.1.1 - §4.2.1.2).

The predictive algorithm's forecasts come from three fitted models:

* :class:`~repro.regression.latency_model.ExecutionLatencyModel` —
  paper eq. 3, the two-stage polynomial surface
  ``eex(d, u) = (a1 u^2 + a2 u + a3) d^2 + (b1 u^2 + b2 u + b3) d``
  fitted from profiled subtask latencies;
* :class:`~repro.regression.buffer_model.BufferDelayModel` — paper
  eq. 5, the through-origin line ``Dbuf = k * sum_i ds(T_i, c)`` fitted
  from observed message queueing delays;
* :class:`~repro.regression.transmission.TransmissionModel` — paper
  eq. 6, the deterministic ``Dtrans = d / ls``.

They are combined by
:class:`~repro.regression.comm.CommunicationDelayModel` (eq. 4) and
exposed to the resource manager through
:class:`~repro.regression.estimator.TimingEstimator`.

All fitting is ordinary least squares on explicit design matrices
(:mod:`repro.regression.design`, :mod:`repro.regression.polyfit`) —
no black boxes, so tests can verify coefficient recovery exactly.
"""

from repro.regression.buffer_model import BufferDelayModel
from repro.regression.comm import CommunicationDelayModel
from repro.regression.design import poly2_features, surface_features
from repro.regression.estimator import TimingEstimator
from repro.regression.latency_model import ExecutionLatencyModel
from repro.regression.polyfit import OLSResult, ols_fit
from repro.regression.transmission import TransmissionModel

__all__ = [
    "BufferDelayModel",
    "CommunicationDelayModel",
    "ExecutionLatencyModel",
    "OLSResult",
    "TimingEstimator",
    "TransmissionModel",
    "ols_fit",
    "poly2_features",
    "surface_features",
]
