"""Plain-text table/series rendering (foundation layer).

These renderers are shared by every layer — regression diagnostics,
benchmark logs, the experiment reports and the CLI — so they live at the
bottom of the package DAG alongside :mod:`repro.units` and
:mod:`repro.errors` (``regression`` must not reach up into
``experiments`` for a table).  :mod:`repro.experiments.report` re-exports
them for backwards compatibility.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        # Display thresholds, not unit conversions.
        if abs(value) >= 1000.0 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_series_table(
    x_label: str,
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """Render an x-axis plus named series as a table (one figure panel)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


def format_sparkline(values: Sequence[float], width: int = 40) -> str:
    """A crude one-line chart (for quick visual sanity in bench logs)."""
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    lo = min(values)
    hi = max(values)
    span = (hi - lo) or 1.0
    # Resample to the requested width.
    out = []
    n = len(values)
    for i in range(min(width, n)):
        v = values[int(i * n / min(width, n))]
        out.append(blocks[int((v - lo) / span * (len(blocks) - 1))])
    return "".join(out)


def paper_vs_measured(
    rows: list[tuple[str, str, str]],
    title: str = "paper vs measured",
) -> str:
    """Render (aspect, paper, measured) comparison rows."""
    return format_table(["aspect", "paper", "measured"], rows, title=title)
