"""CPU model: a single processor with round-robin / processor-sharing service.

The paper's testbed runs a round-robin scheduler with a 1 ms time slice
(Table 1).  Simulating every quantum of a 1 s period is needlessly slow,
and RR with a quantum far smaller than job service times converges to
**processor sharing** (PS): each of the ``n`` active jobs progresses at
rate ``1/n``.  :class:`Processor` therefore implements two disciplines:

* :attr:`Discipline.PROCESSOR_SHARING` (default) — exact event-driven PS.
  On every arrival/departure the remaining demands are aged by
  ``elapsed / n`` and the next completion is rescheduled.  Cost is
  O(active jobs) per state change.
* :attr:`Discipline.ROUND_ROBIN` — exact quantum-by-quantum RR with a
  configurable time slice.  Used in tests and the processor-model
  ablation bench to bound the PS approximation error.

Utilization ``ut(p, t)`` (paper §3, property 13) is the busy fraction of
the trailing ``utilization_window`` seconds, provided by
:class:`~repro.cluster.metering.UtilizationMeter`.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable

from repro.cluster.metering import UtilizationMeter
from repro.errors import ClusterError
from repro.sim.counters import IdCounter
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.units import MS

_job_ids = IdCounter(1)


class Discipline(enum.Enum):
    """CPU scheduling discipline."""

    PROCESSOR_SHARING = "ps"
    ROUND_ROBIN = "rr"


class Job:
    """A unit of CPU work submitted to a :class:`Processor`.

    Attributes
    ----------
    demand:
        Total CPU seconds required.
    remaining:
        CPU seconds still to be served (kept current only at state-change
        instants in PS mode).
    kind:
        Free-form tag (``"app"``, ``"background"``, ``"profile"``), used by
        tracing and by tests.
    on_complete:
        Callback ``(job, completion_time)`` invoked when the job finishes.
    """

    __slots__ = (
        "job_id",
        "demand",
        "remaining",
        "kind",
        "label",
        "on_complete",
        "arrival_time",
        "completion_time",
    )

    def __init__(
        self,
        demand: float,
        kind: str = "app",
        label: str = "",
        on_complete: Callable[["Job", float], None] | None = None,
    ) -> None:
        if demand <= 0.0:
            raise ClusterError(f"job demand must be positive, got {demand}")
        self.job_id = next(_job_ids)
        self.demand = float(demand)
        self.remaining = float(demand)
        self.kind = kind
        self.label = label
        self.on_complete = on_complete
        self.arrival_time: float | None = None
        self.completion_time: float | None = None

    @property
    def latency(self) -> float:
        """Sojourn time (completion minus arrival); raises if not finished."""
        if self.arrival_time is None or self.completion_time is None:
            raise ClusterError(f"job {self.job_id} has not completed")
        return self.completion_time - self.arrival_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Job {self.job_id} kind={self.kind} demand={self.demand:.6f} "
            f"remaining={self.remaining:.6f}>"
        )


class Processor:
    """One homogeneous processor of the distributed system.

    Parameters
    ----------
    engine:
        The discrete-event engine driving this processor.
    name:
        Identifier, e.g. ``"p1"``.
    discipline:
        PS (default) or quantum-level RR.
    quantum:
        RR time slice in seconds (Table 1: 1 ms).  Ignored under PS.
    utilization_window:
        Trailing window (seconds) over which ``ut(p, t)`` is computed.
    speed:
        Service-rate multiplier relative to the reference node whose
        demands the ground-truth models describe (1.0 = Table 1's
        homogeneous baseline).  A job of demand ``w`` running alone
        finishes in ``w / speed`` wall seconds.  The paper assumes
        homogeneity; heterogeneous speeds exist for the extension study
        probing how the (speed-blind) eq. 3 forecasts degrade.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        discipline: Discipline = Discipline.PROCESSOR_SHARING,
        quantum: float = 1.0 * MS,
        utilization_window: float = 5.0,
        speed: float = 1.0,
    ) -> None:
        if quantum <= 0.0:
            raise ClusterError(f"quantum must be positive, got {quantum}")
        if speed <= 0.0:
            raise ClusterError(f"speed must be positive, got {speed}")
        self.engine = engine
        self.name = name
        self.speed = float(speed)
        self.discipline = discipline
        self.quantum = float(quantum)
        self.utilization_window = float(utilization_window)
        self.meter = UtilizationMeter(max_window=max(utilization_window, 30.0))
        self.completed_jobs = 0
        self.failed = False
        self.failure_count = 0
        #: Optional sensor-fault transform applied to every utilization
        #: reading (chaos injection: stale/corrupted monitor inputs).
        #: The meter itself stays truthful — only the *reported* value
        #: is transformed, so measured experiment metrics are unaffected.
        self.reading_fault: Callable[[float], float] | None = None
        # PS state
        self._active: dict[int, Job] = {}
        self._last_update = engine.now
        self._completion_event: Event | None = None
        # RR state
        self._rr_queue: deque[Job] = deque()
        self._rr_current: Job | None = None
        self._rr_event: Event | None = None

    # -- public API -------------------------------------------------------

    def submit(self, job: Job) -> Job:
        """Add a job to this processor's run queue.

        Submitting to a **failed** processor is accepted but the job
        will never complete (the node is dark; the sender cannot know) —
        the overload watchdog and the monitor's overdue detection handle
        the consequences, exactly as they would for a real silent crash.
        """
        job.arrival_time = self.engine.now
        if self.failed:
            return job
        if self.discipline is Discipline.PROCESSOR_SHARING:
            self._ps_arrive(job)
        else:
            self._rr_arrive(job)
        return job

    # -- failure injection ------------------------------------------------------

    def fail(self) -> int:
        """Crash the processor: all in-flight jobs are lost (no callbacks).

        Returns the number of jobs lost.  Idempotent while failed.
        """
        if self.failed:
            return 0
        self.failed = True
        self.failure_count += 1
        lost = list(self.active_jobs())
        for job in lost:
            self.cancel_job(job)
        self.engine.tracer.record(
            self.engine.now, "failure", f"{self.name}.fail", {"lost": len(lost)}
        )
        return len(lost)

    def recover(self) -> None:
        """Bring the processor back (empty queue, meter keeps history)."""
        if not self.failed:
            return
        self.failed = False
        self.engine.tracer.record(
            self.engine.now, "failure", f"{self.name}.recover", {}
        )

    def run_for(
        self,
        demand: float,
        kind: str = "app",
        label: str = "",
        on_complete: Callable[[Job, float], None] | None = None,
    ) -> Job:
        """Convenience: create and submit a job of ``demand`` CPU seconds."""
        return self.submit(Job(demand, kind=kind, label=label, on_complete=on_complete))

    def cancel_job(self, job: Job) -> bool:
        """Remove a job from the processor without completing it.

        Used by the executor's overload-shedding path (aborting periods
        that have fallen hopelessly behind).  Returns ``True`` if the job
        was present and removed; its completion callback never fires.
        """
        if self.discipline is Discipline.PROCESSOR_SHARING:
            self._ps_age()
            if self._active.pop(job.job_id, None) is None:
                return False
            if not self._active:
                self.meter.set_busy(self.engine.now, False)
            self._ps_reschedule()
            return True
        # Round-robin: remove from the queue, or drop the running slice.
        for queued in list(self._rr_queue):
            if queued.job_id == job.job_id:
                self._rr_queue.remove(queued)
                return True
        if self._rr_current is not None and self._rr_current.job_id == job.job_id:
            if self._rr_event is not None:
                self._rr_event.cancel()
            self._rr_current = None
            self._rr_dispatch()
            return True
        return False

    def utilization(self, now: float | None = None, window: float | None = None) -> float:
        """``ut(p, t)``: busy fraction over the trailing window."""
        t = self.engine.now if now is None else now
        w = self.utilization_window if window is None else window
        reading = self.meter.utilization(t, w)
        if self.reading_fault is not None:
            reading = self.reading_fault(reading)
        return reading

    @property
    def active_count(self) -> int:
        """Number of jobs currently in service or queued."""
        if self.discipline is Discipline.PROCESSOR_SHARING:
            return len(self._active)
        return len(self._rr_queue) + (1 if self._rr_current is not None else 0)

    @property
    def is_busy(self) -> bool:
        """Whether any job is present."""
        return self.active_count > 0

    def active_jobs(self) -> list[Job]:
        """Snapshot of jobs currently present (any discipline)."""
        if self.discipline is Discipline.PROCESSOR_SHARING:
            self._ps_age()
            return list(self._active.values())
        jobs = list(self._rr_queue)
        if self._rr_current is not None:
            jobs.insert(0, self._rr_current)
        return jobs

    # -- processor sharing ---------------------------------------------------

    def _ps_arrive(self, job: Job) -> None:
        self._ps_age()
        if not self._active:
            self.meter.set_busy(self.engine.now, True)
        self._active[job.job_id] = job
        self._ps_reschedule()

    def _ps_age(self) -> None:
        """Advance every active job's remaining demand to the current time."""
        now = self.engine.now
        elapsed = now - self._last_update
        if elapsed > 0.0 and self._active:
            served = elapsed * self.speed / len(self._active)
            for job in self._active.values():
                job.remaining -= served
        self._last_update = now

    def _ps_reschedule(self) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not self._active:
            return
        shortest = min(self._active.values(), key=lambda j: (j.remaining, j.job_id))
        # Numerical guard: aging can leave a tiny negative remainder.
        delay = max(0.0, shortest.remaining * len(self._active) / self.speed)
        self._completion_event = self.engine.schedule(
            delay, self._ps_complete, shortest.job_id, label=f"{self.name}.ps-done"
        )

    def _ps_complete(self, job_id: int) -> None:
        self._ps_age()
        job = self._active.pop(job_id, None)
        if job is None:  # stale event; a newer reschedule superseded it
            return
        job.remaining = 0.0
        self._finish(job)
        if not self._active:
            self.meter.set_busy(self.engine.now, False)
        self._ps_reschedule()

    # -- quantum round-robin ----------------------------------------------------

    def _rr_arrive(self, job: Job) -> None:
        self._rr_queue.append(job)
        if self._rr_current is None:
            self.meter.set_busy(self.engine.now, True)
            self._rr_dispatch()

    def _rr_dispatch(self) -> None:
        if not self._rr_queue:
            self._rr_current = None
            self.meter.set_busy(self.engine.now, False)
            return
        job = self._rr_queue.popleft()
        self._rr_current = job
        # A wall-clock quantum serves quantum*speed units of demand.
        work = min(self.quantum * self.speed, job.remaining)
        self._rr_event = self.engine.schedule(
            work / self.speed,
            self._rr_slice_end,
            job,
            work,
            label=f"{self.name}.rr-slice",
        )

    def _rr_slice_end(self, job: Job, slice_len: float) -> None:
        job.remaining -= slice_len
        self._rr_current = None
        if job.remaining <= 1e-12:
            job.remaining = 0.0
            self._finish(job)
        else:
            self._rr_queue.append(job)
        self._rr_dispatch()

    # -- shared ---------------------------------------------------------------

    def _finish(self, job: Job) -> None:
        job.completion_time = self.engine.now
        self.completed_jobs += 1
        self.engine.tracer.record(
            self.engine.now,
            "job",
            job.label or job.kind,
            {"processor": self.name, "demand": job.demand, "latency": job.latency},
        )
        telemetry = self.engine.telemetry
        if telemetry.enabled:
            telemetry.on_job_complete(
                self.engine.now, self.name, job.kind, job.demand, job.latency
            )
        if job.on_complete is not None:
            job.on_complete(job, self.engine.now)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Processor {self.name} {self.discipline.value} "
            f"active={self.active_count}>"
        )
