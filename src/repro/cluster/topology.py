"""The assembled distributed system.

:class:`System` bundles the engine, the processor set ``PR`` (paper §3,
property 12), the shared network, and the node clocks into one object
that the task executor, the profiler, and the resource manager all share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.clock import ClockSyncService, NodeClock
from repro.cluster.index import UtilizationIndex
from repro.cluster.network import Network
from repro.cluster.processor import Discipline, Processor
from repro.errors import ClusterError
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer
from repro.sim.vector import VectorizedEngine
from repro.telemetry.hub import TelemetryHub
from repro.units import ETHERNET_100_MBPS, MS


@dataclass
class System:
    """A homogeneous distributed system on a shared medium.

    Attributes
    ----------
    engine:
        The discrete-event engine everything runs on.
    processors:
        The processor set ``PR = {p1 ... pm}``.
    network:
        The shared Ethernet segment.
    clocks:
        One :class:`~repro.cluster.clock.NodeClock` per processor.
    clock_sync:
        The synchronization service (already started by
        :func:`build_system` when enabled).
    rng:
        Named random streams for all stochastic components.
    """

    engine: Engine
    processors: list[Processor]
    network: Network
    clocks: list[NodeClock]
    clock_sync: ClockSyncService | None
    rng: RngRegistry
    #: Serve utilization queries from the incremental index (bit-identical
    #: to the scan; disable to benchmark the pre-index path).
    use_utilization_index: bool = True

    _by_name: dict[str, Processor] = field(init=False, repr=False)
    utilization_index: UtilizationIndex | None = field(
        init=False, repr=False, default=None
    )

    def __post_init__(self) -> None:
        self._by_name = {p.name: p for p in self.processors}
        if len(self._by_name) != len(self.processors):
            raise ClusterError("duplicate processor names")
        if self.use_utilization_index and self.processors:
            self.utilization_index = UtilizationIndex(self.engine, self.processors)

    # -- lookup ----------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of processors ``m``."""
        return len(self.processors)

    def processor(self, name: str) -> Processor:
        """Look up a processor by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ClusterError(f"unknown processor {name!r}") from None

    def clock_of(self, name: str) -> NodeClock:
        """Look up the clock of processor ``name``."""
        for clock in self.clocks:
            if clock.name == name:
                return clock
        raise ClusterError(f"no clock for processor {name!r}")

    # -- utilization views ---------------------------------------------------------

    def utilizations(self, window: float | None = None) -> dict[str, float]:
        """``ut(p, t)`` for every processor at the current time."""
        return {p.name: p.utilization(window=window) for p in self.processors}

    def least_utilized(
        self, exclude: set[str] | frozenset[str] = frozenset(), window: float | None = None
    ) -> Processor | None:
        """The least-utilized *live* processor outside ``exclude``.

        This is step 3 of the paper's Figure 5 (``p_min``); failed
        processors are never candidates.  ``None`` if the exclusion set
        (plus failures) covers every processor.  Ties break by name.

        Served from the incremental utilization index (O(log P) on the
        hot path, bit-identical results); non-default windows and
        index-less systems fall back to the full scan.
        """
        if self.utilization_index is None or window is not None:
            return self.least_utilized_scan(exclude=exclude, window=window)
        found = self.utilization_index.argmin(exclude=exclude)
        if found is None:
            return None
        return self._by_name[found[1]]

    def least_utilized_scan(
        self, exclude: set[str] | frozenset[str] = frozenset(), window: float | None = None
    ) -> Processor | None:
        """Reference O(P) implementation of :meth:`least_utilized`."""
        candidates = [
            p for p in self.processors if p.name not in exclude and not p.failed
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda p: (p.utilization(window=window), p.name))

    def processors_below(
        self, threshold: float, window: float | None = None
    ) -> list[Processor]:
        """Live processors with ``ut(p, t) < threshold``, in creation order.

        This is Figure 7's candidate sweep; like :meth:`least_utilized`
        it is served from the utilization index when possible and is
        bit-identical to :meth:`processors_below_scan`.
        """
        if self.utilization_index is None or window is not None:
            return self.processors_below_scan(threshold, window=window)
        return self.utilization_index.below(threshold)

    def processors_below_scan(
        self, threshold: float, window: float | None = None
    ) -> list[Processor]:
        """Reference O(P) implementation of :meth:`processors_below`."""
        return [
            p
            for p in self.processors
            if not p.failed and p.utilization(window=window) < threshold
        ]

    def mean_utilization(self) -> float:
        """Mean ``ut(p, t)`` over **all** processors (failed included).

        Float-identical to ``sum([p.utilization() for p in processors])
        / len(processors)``; when the index is active the readings are
        folded into it so the step's later queries hit warm entries.
        """
        if self.utilization_index is not None:
            values = self.utilization_index.exact_utilizations()
        else:
            values = [p.utilization() for p in self.processors]
        return sum(values) / len(values)

    def notify_placement_change(self, names: "set[str] | frozenset[str]") -> None:
        """Refresh index entries after replicas were placed/shut down.

        Placements don't change utilization at the decision instant, but
        re-reading the touched processors keeps their heap keys exact so
        the remaining queries of this RM step stay O(log P).
        """
        if self.utilization_index is not None and names:
            self.utilization_index.refresh(names)

    def live_processors(self) -> list[Processor]:
        """All processors currently up."""
        return [p for p in self.processors if not p.failed]

    def failed_processor_names(self) -> set[str]:
        """Names of processors currently down."""
        return {p.name for p in self.processors if p.failed}


def build_system(
    n_processors: int = 6,
    bandwidth_bps: float = ETHERNET_100_MBPS,
    discipline: Discipline = Discipline.PROCESSOR_SHARING,
    quantum: float = 1.0 * MS,
    utilization_window: float = 5.0,
    message_overhead_bytes: float = 1500.0,
    network_mode: str = "shared",
    message_loss_probability: float = 0.0,
    retransmit_timeout: float = 0.050,
    clock_drift_ppm: float = 20.0,
    clock_sync_enabled: bool = True,
    speed_factors: tuple[float, ...] | None = None,
    seed: int = 0,
    tracer: Tracer | None = None,
    telemetry: TelemetryHub | None = None,
    use_utilization_index: bool = True,
    engine: str = "scalar",
) -> System:
    """Construct the Table 1 baseline system (or a variant of it).

    Parameters mirror Table 1 defaults: 6 nodes, round-robin-equivalent
    scheduling, 100 Mbit/s Ethernet.  The returned system's clock sync
    service is already started when enabled.  ``speed_factors`` (one per
    processor) builds a heterogeneous machine for the extension study;
    omitted, all nodes run at the reference speed 1.0.  ``telemetry``
    wires a :class:`~repro.telemetry.hub.TelemetryHub` into the engine so
    every instrumented component reports to it.  ``engine`` selects the
    calendar implementation: ``"scalar"`` (the binary-heap
    :class:`~repro.sim.engine.Engine`) or ``"vectorized"`` (the
    array-backed :class:`~repro.sim.vector.VectorizedEngine`; decision
    sequences are bit-identical either way).
    """
    if n_processors < 1:
        raise ClusterError(f"need at least one processor, got {n_processors}")
    if speed_factors is not None and len(speed_factors) != n_processors:
        raise ClusterError(
            f"{n_processors} processors need {n_processors} speed factors, "
            f"got {len(speed_factors)}"
        )
    if engine not in ("scalar", "vectorized"):
        raise ClusterError(
            f"engine must be 'scalar' or 'vectorized', got {engine!r}"
        )
    engine_cls = Engine if engine == "scalar" else VectorizedEngine
    sim_engine = engine_cls(tracer=tracer, telemetry=telemetry)
    rng = RngRegistry(seed)
    processors = [
        Processor(
            sim_engine,
            f"p{i + 1}",
            discipline=discipline,
            quantum=quantum,
            utilization_window=utilization_window,
            speed=1.0 if speed_factors is None else speed_factors[i],
        )
        for i in range(n_processors)
    ]
    network = Network(
        sim_engine,
        bandwidth_bps=bandwidth_bps,
        default_overhead_bytes=message_overhead_bytes,
        utilization_window=utilization_window,
        mode=network_mode,
        loss_probability=message_loss_probability,
        retransmit_timeout=retransmit_timeout,
        rng=rng.stream("net-loss") if message_loss_probability > 0.0 else None,
    )
    clock_rng = rng.stream("clock")
    drift = clock_drift_ppm * 1e-6
    clocks = [
        NodeClock(
            p.name,
            offset=clock_rng.uniform(-0.5e-3, 0.5e-3),
            drift=clock_rng.uniform(-drift, drift),
        )
        for p in processors
    ]
    sync: ClockSyncService | None = None
    if clock_sync_enabled:
        sync = ClockSyncService(sim_engine, clocks, rng=rng.stream("clock-sync"))
        sync.start()
    return System(
        engine=sim_engine,
        processors=processors,
        network=network,
        clocks=clocks,
        clock_sync=sync,
        rng=rng,
        use_utilization_index=use_utilization_index,
    )
