"""Failure injection.

The paper's motivating requirement is *survivability* — "continued
availability of application functionality" under node loss (§1).
:class:`FailureInjector` schedules crash/recovery events against the
processors so experiments and tests can measure how fast the adaptive
resource manager restores timeliness after losing a node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.topology import System
from repro.errors import ClusterError


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled crash (and optional recovery)."""

    processor: str
    fail_at: float
    recover_at: float | None = None

    def __post_init__(self) -> None:
        if self.fail_at < 0.0:
            raise ClusterError(f"fail_at must be >= 0, got {self.fail_at}")
        if self.recover_at is not None and self.recover_at <= self.fail_at:
            raise ClusterError(
                f"recover_at {self.recover_at} must follow fail_at {self.fail_at}"
            )


@dataclass
class FailureInjector:
    """Applies a failure plan to a system.

    Example
    -------
    .. code-block:: python

        injector = FailureInjector(system)
        injector.plan(FailureEvent("p3", fail_at=20.0, recover_at=35.0))
        injector.arm()
    """

    system: System
    events: list[FailureEvent] = field(default_factory=list)
    _armed: bool = False

    def plan(self, *events: FailureEvent) -> "FailureInjector":
        """Add events to the plan (before :meth:`arm`)."""
        if self._armed:
            raise ClusterError("injector already armed")
        for event in events:
            self.system.processor(event.processor)  # validates the name
            self.events.append(event)
        return self

    def arm(self) -> None:
        """Schedule every planned event on the engine (once)."""
        if self._armed:
            raise ClusterError("injector already armed")
        self._armed = True
        for event in self.events:
            processor = self.system.processor(event.processor)
            self.system.engine.schedule_at(
                event.fail_at, processor.fail, label=f"{event.processor}.fail"
            )
            if event.recover_at is not None:
                self.system.engine.schedule_at(
                    event.recover_at,
                    processor.recover,
                    label=f"{event.processor}.recover",
                )
