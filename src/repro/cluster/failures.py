"""Failure injection.

The paper's motivating requirement is *survivability* — "continued
availability of application functionality" under node loss (§1).
:class:`FailureInjector` schedules crash/recovery events against the
processors so experiments and tests can measure how fast the adaptive
resource manager restores timeliness after losing a node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.topology import System
from repro.errors import ClusterError


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled crash (and optional recovery)."""

    processor: str
    fail_at: float
    recover_at: float | None = None

    def __post_init__(self) -> None:
        if self.fail_at < 0.0:
            raise ClusterError(f"fail_at must be >= 0, got {self.fail_at}")
        if self.recover_at is not None and self.recover_at <= self.fail_at:
            raise ClusterError(
                f"recover_at {self.recover_at} must follow fail_at {self.fail_at}"
            )


@dataclass
class FailureInjector:
    """Applies a failure plan to a system.

    Example
    -------
    .. code-block:: python

        injector = FailureInjector(system)
        injector.plan(FailureEvent("p3", fail_at=20.0, recover_at=35.0))
        injector.arm()
    """

    system: System
    events: list[FailureEvent] = field(default_factory=list)
    _armed: bool = False

    def plan(self, *events: FailureEvent) -> "FailureInjector":
        """Add events to the plan (before :meth:`arm`).

        The combined plan (existing plus new events) is validated as a
        whole: per processor, each crash interval ``[fail_at,
        recover_at)`` must end before the next crash begins.  Duplicate
        or overlapping events — e.g. two ``fail_at`` with no recovery
        between them, which would silently collapse into one crash via
        :meth:`Processor.fail`'s idempotence — raise
        :class:`~repro.errors.ClusterError` and leave the plan
        unchanged.
        """
        if self._armed:
            raise ClusterError("injector already armed")
        for event in events:
            self.system.processor(event.processor)  # validates the name
        self._check_intervals([*self.events, *events])
        self.events.extend(events)
        return self

    @staticmethod
    def _check_intervals(events: list[FailureEvent]) -> None:
        """Reject overlapping/duplicate crash intervals per processor."""
        by_processor: dict[str, list[FailureEvent]] = {}
        for event in events:
            by_processor.setdefault(event.processor, []).append(event)
        for name, plan in by_processor.items():
            plan.sort(key=lambda e: e.fail_at)
            for previous, current in zip(plan, plan[1:]):
                if current.fail_at == previous.fail_at:
                    raise ClusterError(
                        f"duplicate failure for {name!r} at "
                        f"t={current.fail_at}"
                    )
                if previous.recover_at is None:
                    raise ClusterError(
                        f"{name!r} fails at t={previous.fail_at} with no "
                        f"recovery, so the failure planned at "
                        f"t={current.fail_at} would never happen"
                    )
                if current.fail_at < previous.recover_at:
                    raise ClusterError(
                        f"overlapping failures for {name!r}: "
                        f"[{previous.fail_at}, {previous.recover_at}) "
                        f"overlaps the failure at t={current.fail_at}"
                    )

    def arm(self) -> None:
        """Schedule every planned event on the engine (once)."""
        if self._armed:
            raise ClusterError("injector already armed")
        self._armed = True
        for event in self.events:
            processor = self.system.processor(event.processor)
            self.system.engine.schedule_at(
                event.fail_at, processor.fail, label=f"{event.processor}.fail"
            )
            if event.recover_at is not None:
                self.system.engine.schedule_at(
                    event.recover_at,
                    processor.recover,
                    label=f"{event.processor}.recover",
                )
