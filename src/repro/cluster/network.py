"""Shared network medium.

Models the paper's single Ethernet segment (IEEE 802.3, 100 Mbit/s,
Table 1) as one FIFO server shared by all nodes:

* **transmission delay** — deterministic ``bits / bandwidth`` (paper
  eq. 6), plus a fixed per-message protocol/framing overhead in bytes,
  which is what makes replica fan-out cost network capacity (each of
  ``k`` replica messages carries ``1/k`` of the payload *plus* a full
  overhead) — the mechanism behind the paper's observation that the
  non-predictive algorithm drives network utilization up;
* **buffer delay** — emergent FIFO queueing while the medium is busy
  (paper eq. 5 approximates this as linear in the total periodic
  workload; :mod:`repro.regression.buffer_model` fits that line from
  measurements of this queue).

Byte counters and a :class:`~repro.cluster.metering.UtilizationMeter`
provide the "average network utilization" metric of §5.2.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.cluster.metering import UtilizationMeter
from repro.errors import ClusterError
from repro.sim.counters import IdCounter
from repro.sim.engine import Engine
from repro.units import ETHERNET_100_MBPS, transmission_time

_message_ids = IdCounter(1)


class Message:
    """One message on the shared medium.

    Attributes
    ----------
    payload_bytes:
        Application payload (track data).
    overhead_bytes:
        Fixed protocol/framing overhead added on the wire.
    source, destination:
        Node names (informational; the medium is shared so they do not
        affect timing, but traces and tests use them).
    enqueue_time / start_time / delivery_time:
        Timestamps populated as the message moves through the queue.
    """

    __slots__ = (
        "message_id",
        "payload_bytes",
        "overhead_bytes",
        "source",
        "destination",
        "label",
        "on_delivered",
        "enqueue_time",
        "start_time",
        "delivery_time",
        "loss_count",
        "dropped",
    )

    def __init__(
        self,
        payload_bytes: float,
        source: str = "",
        destination: str = "",
        overhead_bytes: float = 0.0,
        label: str = "",
        on_delivered: Callable[["Message", float], None] | None = None,
    ) -> None:
        if payload_bytes < 0.0:
            raise ClusterError(f"payload must be non-negative, got {payload_bytes}")
        if overhead_bytes < 0.0:
            raise ClusterError(f"overhead must be non-negative, got {overhead_bytes}")
        self.message_id = next(_message_ids)
        self.payload_bytes = float(payload_bytes)
        self.overhead_bytes = float(overhead_bytes)
        self.source = source
        self.destination = destination
        self.label = label
        self.on_delivered = on_delivered
        self.enqueue_time: float | None = None
        self.start_time: float | None = None
        self.delivery_time: float | None = None
        #: Transmissions of this message lost so far.
        self.loss_count = 0
        #: True once the network abandoned the message (retries exhausted).
        self.dropped = False

    @property
    def wire_bytes(self) -> float:
        """Total bytes clocked onto the medium."""
        return self.payload_bytes + self.overhead_bytes

    @property
    def buffer_delay(self) -> float:
        """Queueing time before transmission began (paper ``Dbuf``)."""
        if self.enqueue_time is None or self.start_time is None:
            raise ClusterError(f"message {self.message_id} not yet transmitted")
        return self.start_time - self.enqueue_time

    @property
    def total_delay(self) -> float:
        """End-to-end communication delay (paper ``ecd`` = Dbuf + Dtrans)."""
        if self.enqueue_time is None or self.delivery_time is None:
            raise ClusterError(f"message {self.message_id} not yet delivered")
        return self.delivery_time - self.enqueue_time


class Network:
    """A shared FIFO medium connecting all processors.

    Parameters
    ----------
    engine:
        The discrete-event engine.
    bandwidth_bps:
        Link speed in bits/second (Table 1 default: 100 Mbit/s).
    default_overhead_bytes:
        Per-message overhead applied when a message does not specify one.
        Default 1500 bytes — roughly one extra MTU of headers, preamble,
        inter-frame gaps and ACK traffic per logical message.
    utilization_window:
        Trailing window for :meth:`utilization`.
    mode:
        ``"shared"`` (default) — the paper's single Ethernet segment:
        one transmission at a time, FIFO queueing produces the eq. 5
        buffer delays.  ``"switched"`` — a modern full-duplex switch:
        every message transmits immediately and independently, so
        buffer delay is identically zero.  The switched mode exists for
        the substrate ablation showing how the eq. 5 model degenerates
        when the medium is not shared.
    loss_probability:
        Per-transmission loss probability.  A lost message is detected
        after ``retransmit_timeout`` and re-enqueued (go-back
        retransmission), so its end-to-end delay jumps — the
        "communication latencies without known upper bounds" of the
        paper's asynchronous model (§1), made concrete.  Requires
        ``rng`` when non-zero.
    retransmit_timeout:
        Seconds from the (lost) transmission's start until the sender
        retries.
    max_retries:
        Retransmissions allowed per message before the network gives up
        and **drops** it: the delivery callback never fires, the message
        is marked ``dropped``, and ``dropped_count`` plus the
        ``net.messages_dropped`` telemetry counter record the loss.
        ``None`` (default) retries forever — the original semantics,
        where a lossy link only ever *delays* messages.
    rng:
        Random generator deciding losses.
    """

    MODES = ("shared", "switched")

    def __init__(
        self,
        engine: Engine,
        bandwidth_bps: float = ETHERNET_100_MBPS,
        default_overhead_bytes: float = 1500.0,
        utilization_window: float = 5.0,
        mode: str = "shared",
        loss_probability: float = 0.0,
        retransmit_timeout: float = 0.050,
        max_retries: int | None = None,
        rng=None,
    ) -> None:
        if bandwidth_bps <= 0.0:
            raise ClusterError(f"bandwidth must be positive, got {bandwidth_bps}")
        if mode not in self.MODES:
            raise ClusterError(f"unknown network mode {mode!r}; choose {self.MODES}")
        if not 0.0 <= loss_probability < 1.0:
            raise ClusterError(
                f"loss probability must be in [0, 1), got {loss_probability}"
            )
        if retransmit_timeout <= 0.0:
            raise ClusterError(
                f"retransmit timeout must be positive, got {retransmit_timeout}"
            )
        if loss_probability > 0.0 and rng is None:
            raise ClusterError("loss_probability > 0 requires an rng")
        if max_retries is not None and max_retries < 0:
            raise ClusterError(
                f"max_retries must be >= 0 or None, got {max_retries}"
            )
        self.loss_probability = float(loss_probability)
        self.retransmit_timeout = float(retransmit_timeout)
        self.max_retries = max_retries
        self.rng = rng
        self.lost_count = 0
        self.dropped_count = 0
        self.engine = engine
        self.bandwidth_bps = float(bandwidth_bps)
        self.default_overhead_bytes = float(default_overhead_bytes)
        self.utilization_window = float(utilization_window)
        self.mode = mode
        self.meter = UtilizationMeter(max_window=max(utilization_window, 30.0))
        self._queue: deque[Message] = deque()
        self._transmitting: Message | None = None
        self._in_flight = 0  # switched mode: concurrent transmissions
        self.delivered_count = 0
        self.delivered_bytes = 0.0
        #: Per-label delivered (count, bytes) — e.g. one entry per
        #: message stage ("aaw.m2"), for traffic breakdowns.
        self.delivered_by_label: dict[str, tuple[int, float]] = {}

    # -- sending ---------------------------------------------------------------

    def send(self, message: Message) -> Message:
        """Enqueue (shared) or immediately transmit (switched) a message."""
        if message.overhead_bytes == 0.0:
            message.overhead_bytes = self.default_overhead_bytes
        message.enqueue_time = self.engine.now
        if self.mode == "switched":
            message.start_time = self.engine.now
            if self._in_flight == 0:
                self.meter.set_busy(self.engine.now, True)
            self._in_flight += 1
            self.engine.schedule(
                self.transmission_delay(message.wire_bytes),
                self._deliver_switched,
                message,
                label="net.deliver",
            )
            return message
        self._queue.append(message)
        if self._transmitting is None:
            self.meter.set_busy(self.engine.now, True)
            self._start_next()
        return message

    def send_bytes(
        self,
        payload_bytes: float,
        source: str = "",
        destination: str = "",
        label: str = "",
        on_delivered: Callable[[Message, float], None] | None = None,
    ) -> Message:
        """Convenience wrapper building and sending a :class:`Message`."""
        return self.send(
            Message(
                payload_bytes,
                source=source,
                destination=destination,
                label=label,
                on_delivered=on_delivered,
            )
        )

    def transmission_delay(self, wire_bytes: float) -> float:
        """Deterministic service time for ``wire_bytes`` (paper eq. 6)."""
        return transmission_time(wire_bytes, self.bandwidth_bps)

    # -- internals ---------------------------------------------------------------

    def _start_next(self) -> None:
        if not self._queue:
            self._transmitting = None
            self.meter.set_busy(self.engine.now, False)
            return
        message = self._queue.popleft()
        self._transmitting = message
        message.start_time = self.engine.now
        self.engine.schedule(
            self.transmission_delay(message.wire_bytes),
            self._deliver,
            message,
            label="net.deliver",
        )

    def _account(self, message: Message) -> None:
        self.delivered_count += 1
        self.delivered_bytes += message.wire_bytes
        telemetry = self.engine.telemetry
        if telemetry.enabled:
            telemetry.on_message_delivered(
                self.engine.now,
                message.wire_bytes,
                message.buffer_delay,
                message.total_delay,
            )
        if message.label:
            count, total = self.delivered_by_label.get(message.label, (0, 0.0))
            self.delivered_by_label[message.label] = (
                count + 1,
                total + message.wire_bytes,
            )

    def _maybe_lost(self, message: Message) -> bool:
        """Decide whether this transmission was lost; arrange the retry."""
        if self.loss_probability == 0.0:
            return False
        if self.rng.random() >= self.loss_probability:
            return False
        self.lost_count += 1
        message.loss_count += 1
        self.engine.tracer.record(
            self.engine.now, "message", f"{message.label or 'msg'}.lost", {}
        )
        telemetry = self.engine.telemetry
        if telemetry.enabled:
            telemetry.on_message_lost(self.engine.now)
        if (
            self.max_retries is not None
            and message.loss_count > self.max_retries
        ):
            # Retries exhausted: abandon the message.  The silent-drop
            # failure mode is no longer silent — counters and telemetry
            # record it, and the sender's callback simply never fires
            # (exactly what a crashed receiver looks like).
            message.dropped = True
            self.dropped_count += 1
            self.engine.tracer.record(
                self.engine.now,
                "message",
                f"{message.label or 'msg'}.dropped",
                {"losses": message.loss_count},
            )
            if telemetry.enabled:
                telemetry.on_message_dropped(self.engine.now)
            return True
        self.engine.schedule(
            self.retransmit_timeout, self._resend, message, label="net.retransmit"
        )
        return True

    def _resend(self, message: Message) -> None:
        """Retransmit a lost message (enqueue time is preserved, so the
        observed communication delay includes the loss + timeout)."""
        message.start_time = None
        message.delivery_time = None
        if self.mode == "switched":
            message.start_time = self.engine.now
            if self._in_flight == 0:
                self.meter.set_busy(self.engine.now, True)
            self._in_flight += 1
            self.engine.schedule(
                self.transmission_delay(message.wire_bytes),
                self._deliver_switched,
                message,
                label="net.deliver",
            )
            return
        self._queue.append(message)
        if self._transmitting is None:
            self.meter.set_busy(self.engine.now, True)
            self._start_next()

    def _deliver_switched(self, message: Message) -> None:
        self._in_flight -= 1
        if self._in_flight == 0:
            self.meter.set_busy(self.engine.now, False)
        if self._maybe_lost(message):
            return
        message.delivery_time = self.engine.now
        self._account(message)
        if message.on_delivered is not None:
            message.on_delivered(message, self.engine.now)

    def _deliver(self, message: Message) -> None:
        self._transmitting = None
        if self._maybe_lost(message):
            self._start_next()
            return
        message.delivery_time = self.engine.now
        self._account(message)
        self.engine.tracer.record(
            self.engine.now,
            "message",
            message.label or "msg",
            {
                "bytes": message.wire_bytes,
                "buffer_delay": message.buffer_delay,
                "total_delay": message.total_delay,
            },
        )
        callback = message.on_delivered
        self._start_next()
        if callback is not None:
            callback(message, self.engine.now)

    # -- queries ---------------------------------------------------------------

    @property
    def queue_length(self) -> int:
        """Messages waiting (excluding the one in transmission)."""
        return len(self._queue)

    def utilization(self, now: float | None = None, window: float | None = None) -> float:
        """Busy fraction of the medium over the trailing window."""
        t = self.engine.now if now is None else now
        w = self.utilization_window if window is None else window
        return self.meter.utilization(t, w)
