"""Incremental least-utilization index over the processor set.

The RM hot path (Figure 5 step 3, Figure 7's threshold sweep, and the
failure-migration path) repeatedly asks "which live processor is least
utilized?" — the straightforward implementation rescans all ``P``
processors and re-reads every :class:`~repro.cluster.metering.UtilizationMeter`
per query, which is fine for the paper's 6-node testbed but dominates the
decision loop at the ROADMAP's hundreds-of-processors scale.

:class:`UtilizationIndex` answers the same queries from a lazily
re-keyed min-heap and is **bit-identical** to the scan:

* Every returned value is an *exact* ``p.utilization()`` reading — the
  heap keys are only used to prove which processors cannot contend.
* Per processor the index caches the exact reading ``(u0, t0, span0)``
  taken at time ``t0`` over a trailing window of length ``span0``.
  Windowed busy fractions drift boundedly: over ``delta = t - t0`` the
  window loses at most ``delta`` busy seconds (the slide) and grows by
  at most ``delta`` (warm-up), so for every later ``t``::

      u(t) >= (u0 * span0 - delta) / (span0 + delta)

  clamped to ``[0, 1]``.  The heap is keyed by this lower bound (ties
  broken by name), recomputed in one cheap float pass per *new*
  timestamp — no meter reads.
* A query pops entries while the best exact reading found so far could
  still be beaten (``(best_u, best_name) > (key, name)`` of the heap
  top), re-reading the meter only for entries whose cached reading is
  stale (``t0 < t``).  Within one RM step the engine time is fixed and
  windowed utilization is invariant under same-instant busy/idle
  transitions, so cached same-``t`` readings stay exact and every query
  after the first touches O(log P) entries.

Failed processors are parked when a pop discovers them and re-admitted
(with a fresh reading) once recovered; the index never hooks
:meth:`~repro.cluster.processor.Processor.fail` so direct flag writes in
tests stay safe.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.processor import Processor
    from repro.sim.engine import Engine


@dataclass
class IndexStats:
    """Operation counters, exported as telemetry gauges by the manager."""

    argmin_queries: int = 0
    below_queries: int = 0
    rekeys: int = 0
    heap_pops: int = 0
    meter_reads: int = 0
    refreshes: int = 0
    parks: int = 0

    def as_dict(self) -> dict[str, int]:
        """Counter name -> value, for telemetry export."""
        return {
            "argmin_queries": self.argmin_queries,
            "below_queries": self.below_queries,
            "rekeys": self.rekeys,
            "heap_pops": self.heap_pops,
            "meter_reads": self.meter_reads,
            "refreshes": self.refreshes,
            "parks": self.parks,
        }


class UtilizationIndex:
    """Exact argmin/threshold queries over processor utilizations.

    Parameters
    ----------
    engine:
        The discrete-event engine supplying the current time.
    processors:
        The processor set, in creation order (threshold queries return
        results in this order, matching the Figure 7 scan).
    """

    def __init__(self, engine: "Engine", processors: Sequence["Processor"]) -> None:
        self.engine = engine
        self._procs: list[Processor] = list(processors)
        self._order: dict[str, int] = {p.name: i for i, p in enumerate(self._procs)}
        self._by_name: dict[str, Processor] = {p.name: p for p in self._procs}
        #: name -> (exact utilization, read time, window span at read time)
        self._cache: dict[str, tuple[float, float, float]] = {}
        #: name -> generation; heap entries with an older generation are stale
        self._gen: dict[str, int] = {p.name: 0 for p in self._procs}
        #: entries (lower-bound key, name, generation)
        self._heap: list[tuple[float, str, int]] = []
        #: failed processors currently evicted from the heap
        self._parked: set[str] = set()
        #: timestamp the heap keys are lower bounds for
        self._key_time: float = engine.now
        #: Exact readings for *all* processors (creation order) taken at
        #: ``_key_time``, or ``None``.  Same-timestamp reads can't change
        #: a reading, so while set it lets threshold sweeps bypass the
        #: heap entirely; a re-key at a new timestamp clears it.
        self._fresh_values: list[float] | None = None
        self.stats = IndexStats()
        for proc in self._procs:
            if proc.failed:
                self._parked.add(proc.name)
            else:
                self._read_and_push(proc)

    # -- cache maintenance -------------------------------------------------

    def _read_and_push(self, proc: "Processor") -> float:
        """Take an exact meter reading and (re-)insert the processor."""
        t = self.engine.now
        u = proc.utilization()
        self.stats.meter_reads += 1
        span = t - max(proc.meter.epoch, t - proc.utilization_window)
        self._cache[proc.name] = (u, t, span)
        gen = self._gen[proc.name] + 1
        self._gen[proc.name] = gen
        # Key exact for the current timestamp; decays at the next re-key.
        heapq.heappush(self._heap, (u, proc.name, gen))
        return u

    @staticmethod
    def _lower_bound(u0: float, span0: float, delta: float) -> float:
        """Sound lower bound on a windowed busy fraction ``delta`` later."""
        if delta <= 0.0:
            return u0
        if span0 <= 0.0:
            return 0.0
        return max(0.0, (u0 * span0 - delta) / (span0 + delta))

    def _unpark_recovered(self) -> None:
        """Re-admit recovered processors with a fresh reading."""
        if self._parked:
            for name in [n for n in self._parked if not self._by_name[n].failed]:
                self._parked.discard(name)
                self._read_and_push(self._by_name[name])

    def _ensure_keys(self) -> None:
        """Re-key the heap for the current time; re-admit recovered nodes."""
        self._unpark_recovered()
        t = self.engine.now
        if t == self._key_time:
            return
        self.stats.rekeys += 1
        self._key_time = t
        self._fresh_values = None
        entries: list[tuple[float, str, int]] = []
        for name, (u0, t0, span0) in self._cache.items():
            if name in self._parked:
                continue
            key = self._lower_bound(u0, span0, t - t0)
            entries.append((key, name, self._gen[name]))
        self._heap = entries
        heapq.heapify(self._heap)

    def refresh(self, names: Iterable[str]) -> None:
        """Re-read the named processors (after placements/shutdowns).

        Readings taken here keep the heap exact for the current
        timestamp, so the step's remaining queries stay O(log P).
        """
        self._ensure_keys()
        for name in names:
            proc = self._by_name.get(name)
            if proc is None or proc.failed or name in self._parked:
                continue
            self.stats.refreshes += 1
            self._read_and_push(proc)

    # -- queries -----------------------------------------------------------

    def _pop_live(self) -> tuple[float, str] | None:
        """Pop the next current-generation, non-failed entry (parking
        failed ones); ``None`` when the heap is exhausted."""
        while self._heap:
            key, name, gen = heapq.heappop(self._heap)
            self.stats.heap_pops += 1
            if gen != self._gen[name]:
                continue
            if self._by_name[name].failed:
                self._parked.add(name)
                self.stats.parks += 1
                continue
            return key, name
        return None

    def _current_exact(self, name: str) -> tuple[float, int]:
        """Exact utilization of ``name`` now, plus a fresh generation.

        Bumping the generation invalidates every heap copy of the entry;
        the caller holds the ``(u, name, gen)`` entry in its stash until
        the query ends, so no processor is examined twice per query.
        """
        u0, t0, _span0 = self._cache[name]
        if t0 == self._key_time:
            # Windowed utilization is continuous across same-instant
            # busy/idle transitions, so a same-time reading is current.
            u = u0
        else:
            proc = self._by_name[name]
            t = self.engine.now
            u = proc.utilization()
            self.stats.meter_reads += 1
            span = t - max(proc.meter.epoch, t - proc.utilization_window)
            self._cache[name] = (u, t, span)
        gen = self._gen[name] + 1
        self._gen[name] = gen
        return u, gen

    def _clean_top(self) -> tuple[float, str, int] | None:
        """Peek the top entry, discarding stale generations and parking
        failed processors."""
        while self._heap:
            key, name, gen = self._heap[0]
            if gen != self._gen[name]:
                heapq.heappop(self._heap)
                self.stats.heap_pops += 1
                continue
            if self._by_name[name].failed:
                heapq.heappop(self._heap)
                self.stats.heap_pops += 1
                self._parked.add(name)
                self.stats.parks += 1
                continue
            return key, name, gen
        return None

    def argmin(
        self, exclude: set[str] | frozenset[str] = frozenset()
    ) -> tuple[float, str] | None:
        """Exact ``min((u, name))`` over live processors outside ``exclude``.

        Bit-identical to ``min(candidates, key=lambda p:
        (p.utilization(), p.name))`` over the live, non-excluded set;
        ``None`` when that set is empty.
        """
        self._ensure_keys()
        self.stats.argmin_queries += 1
        best: tuple[float, str] | None = None
        stashed: list[tuple[float, str, int]] = []
        while True:
            top = self._clean_top()
            if top is None:
                break
            key, name, gen = top
            if best is not None and best <= (key, name):
                # Every remaining entry e has (key_e, name_e) >= (key,
                # name) and u_e >= key_e, so (u_e, name_e) cannot beat
                # best: if u_e > best[0] it loses outright; if u_e ==
                # best[0] then key_e == key == best[0] forces name_e >=
                # name >= best[1].
                break
            heapq.heappop(self._heap)
            self.stats.heap_pops += 1
            if name in exclude:
                stashed.append((key, name, gen))
                continue
            u, new_gen = self._current_exact(name)
            stashed.append((u, name, new_gen))
            if best is None or (u, name) < best:
                best = (u, name)
        for entry in stashed:
            heapq.heappush(self._heap, entry)
        return best

    def below(self, threshold: float) -> list["Processor"]:
        """Live processors with exact utilization ``< threshold``.

        Returned in processor creation order — the same order Figure 7's
        ``for every p in PR`` scan visits them.
        """
        self._ensure_keys()
        self.stats.below_queries += 1
        fresh = self._fresh_values
        if fresh is not None:
            # Every processor has an exact reading at the current
            # timestamp (the mean-utilization feed took them all), so
            # the sweep is a pure comparison pass: no heap motion, no
            # meter reads, creation order for free.
            return [
                proc
                for proc, u in zip(self._procs, fresh)
                if u < threshold and not proc.failed
            ]
        selected: list[str] = []
        stashed: list[tuple[float, str, int]] = []
        while True:
            top = self._clean_top()
            if top is None or top[0] >= threshold:
                # Remaining entries have u >= key >= threshold.
                break
            key, name, gen = top
            heapq.heappop(self._heap)
            self.stats.heap_pops += 1
            u, new_gen = self._current_exact(name)
            stashed.append((u, name, new_gen))
            if u < threshold:
                selected.append(name)
        for entry in stashed:
            heapq.heappush(self._heap, entry)
        selected.sort(key=self._order.__getitem__)
        return [self._by_name[name] for name in selected]

    def exact_utilizations(self) -> list[float]:
        """Exact readings for **all** processors, in creation order.

        Failed processors are read too (the manager's mean-utilization
        feed includes them); live readings are folded into the cache so
        subsequent queries at this timestamp are exact.

        At a *new* timestamp this is the cheapest possible way to warm
        the index: every meter must be read anyway, so the heap is
        rebuilt wholesale from the exact readings — one linear pass plus
        a C-level ``heapify``, no per-entry ``heappush`` and no separate
        lower-bound re-key.  A second call at the same timestamp serves
        cached readings without touching any meter.
        """
        t = self.engine.now
        if t == self._key_time and self._fresh_values is not None:
            return self._fresh_values
        values: list[float] = []
        if t == self._key_time:
            self._unpark_recovered()
            for proc in self._procs:
                if proc.failed or proc.name in self._parked:
                    values.append(proc.utilization())
                    self.stats.meter_reads += 1
                else:
                    u0, t0, _span0 = self._cache[proc.name]
                    if t0 == t:
                        values.append(u0)
                    else:
                        values.append(self._read_and_push(proc))
            self._fresh_values = values
            return values
        self.stats.rekeys += 1
        self._key_time = t
        cache = self._cache
        gens = self._gen
        parked = self._parked
        entries: list[tuple[float, str, int]] = []
        for proc in self._procs:
            # Inlined proc.utilization() with its default arguments —
            # one call layer less on the only per-step O(P) read pass.
            u = proc.meter.utilization(t, proc.utilization_window)
            values.append(u)
            name = proc.name
            if proc.failed:
                if name not in parked:
                    parked.add(name)
                    self.stats.parks += 1
                continue
            if parked:
                parked.discard(name)
            span = t - max(proc.meter.epoch, t - proc.utilization_window)
            cache[name] = (u, t, span)
            # The heap is replaced wholesale, so no stale copy of any
            # entry survives — the current generation can be reused.
            entries.append((u, name, gens[name]))
        self.stats.meter_reads += len(values)
        heapq.heapify(entries)
        self._heap = entries
        self._fresh_values = values
        return values
