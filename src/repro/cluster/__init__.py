"""Distributed hardware substrate.

Models the paper's testbed (Table 1): a set of homogeneous processors
with round-robin CPU scheduling, a shared 100 Mbit/s Ethernet segment,
and NTP-style synchronized clocks.

* :class:`~repro.cluster.processor.Processor` — CPU server with two
  disciplines: event-driven **processor sharing** (the limit of
  round-robin as the quantum shrinks; the default, O(changes) fast) and
  exact **quantum-level round-robin** (used to validate the PS
  approximation).
* :class:`~repro.cluster.network.Network` — shared FIFO medium with
  per-message transmission delay (paper eq. 6) and emergent queueing
  ("buffer") delay (paper eq. 5).
* :class:`~repro.cluster.background.BackgroundLoad` — open-loop job
  arrivals that hold a processor at a target utilization (used by the
  profiler to pin the ``u`` axis of the regression grid).
* :class:`~repro.cluster.clock.NodeClock` / ``ClockSyncService`` —
  bounded-offset clock model standing in for [Mills95] NTP.
* :class:`~repro.cluster.topology.System` — the assembled machine.
"""

from repro.cluster.background import BackgroundLoad
from repro.cluster.clock import ClockSyncService, NodeClock
from repro.cluster.failures import FailureEvent, FailureInjector
from repro.cluster.index import IndexStats, UtilizationIndex
from repro.cluster.metering import UtilizationMeter
from repro.cluster.network import Message, Network
from repro.cluster.processor import Discipline, Job, Processor
from repro.cluster.topology import System, build_system

__all__ = [
    "BackgroundLoad",
    "ClockSyncService",
    "Discipline",
    "FailureEvent",
    "FailureInjector",
    "IndexStats",
    "Job",
    "Message",
    "Network",
    "NodeClock",
    "Processor",
    "System",
    "UtilizationIndex",
    "UtilizationMeter",
    "build_system",
]
