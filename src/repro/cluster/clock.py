"""Clock synchronization substrate.

The paper assumes node clocks are synchronized "using an algorithm such
as [Mills95]" (NTP) so that monitoring data lives on a global time scale
(§3, property 12; Figure 1).  We model the *effect* of such an algorithm
rather than the protocol itself:

* each :class:`NodeClock` has an offset and a drift rate relative to true
  (simulation) time;
* a :class:`ClockSyncService` periodically re-disciplines every clock,
  drawing a fresh small residual offset within ``sync_bound`` — between
  syncs the offset grows with drift, as in a real NTP client.

The run-time monitor timestamps observations through node clocks, so
tests can inject desynchronization and check the resource manager's
robustness to bounded timestamp error.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClusterError
from repro.sim.engine import Engine


class NodeClock:
    """A local clock with offset and drift relative to global time.

    ``local = global + offset + drift * (global - last_sync)``.

    Parameters
    ----------
    name:
        Node identifier.
    offset:
        Initial offset in seconds.
    drift:
        Drift rate in seconds per second (e.g. ``20e-6`` for 20 ppm).
    """

    def __init__(self, name: str, offset: float = 0.0, drift: float = 0.0) -> None:
        self.name = name
        self.offset = float(offset)
        self.drift = float(drift)
        self.last_sync = 0.0

    def local_time(self, global_time: float) -> float:
        """Local reading of the clock at true time ``global_time``."""
        return global_time + self.offset + self.drift * (global_time - self.last_sync)

    def error(self, global_time: float) -> float:
        """Current absolute deviation from true time."""
        return abs(self.local_time(global_time) - global_time)

    def discipline(self, global_time: float, residual_offset: float) -> None:
        """Re-synchronize: absorb drift so far and set a new small offset."""
        self.offset = float(residual_offset)
        self.last_sync = float(global_time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<NodeClock {self.name} offset={self.offset:+.6e} drift={self.drift:+.2e}>"


class ClockSyncService:
    """Periodic clock disciplining for a set of node clocks.

    Parameters
    ----------
    engine:
        The discrete-event engine.
    clocks:
        The clocks to keep synchronized.
    sync_interval:
        Seconds between synchronization rounds (default 16 s, an NTP-ish
        poll interval).
    sync_bound:
        Residual offsets after a round are drawn uniformly from
        ``[-sync_bound, +sync_bound]``.
    rng:
        Random generator for residual offsets — required, so the
        residual stream always derives from the experiment master seed
        (pass ``registry.stream("clock-sync")``); a hidden fixed-seed
        fallback here once correlated every run (DET-RNG-SEED).
    """

    def __init__(
        self,
        engine: Engine,
        clocks: list[NodeClock],
        sync_interval: float = 16.0,
        sync_bound: float = 0.5e-3,
        rng: np.random.Generator | None = None,
    ) -> None:
        if sync_interval <= 0.0:
            raise ClusterError(f"sync interval must be positive, got {sync_interval}")
        if sync_bound < 0.0:
            raise ClusterError(f"sync bound must be non-negative, got {sync_bound}")
        if rng is None:
            raise ClusterError(
                "ClockSyncService requires an rng stream (e.g. "
                'RngRegistry.stream("clock-sync")); ambient seeding would '
                "decouple clock residuals from the experiment seed"
            )
        self.engine = engine
        self.clocks = list(clocks)
        self.sync_interval = float(sync_interval)
        self.sync_bound = float(sync_bound)
        self.rng = rng
        self.rounds = 0
        self._stop = None

    def start(self) -> None:
        """Begin periodic synchronization (idempotent)."""
        if self._stop is None:
            self._stop = self.engine.every(
                self.sync_interval, self.sync_now, start_delay=0.0, label="clock.sync"
            )

    def stop(self) -> None:
        """Stop periodic synchronization (idempotent)."""
        if self._stop is not None:
            self._stop()
            self._stop = None

    def sync_now(self) -> None:
        """Run one synchronization round immediately."""
        now = self.engine.now
        for clock in self.clocks:
            residual = self.rng.uniform(-self.sync_bound, self.sync_bound)
            clock.discipline(now, residual)
        self.rounds += 1

    def max_error(self) -> float:
        """Largest current deviation across all clocks."""
        now = self.engine.now
        return max((c.error(now) for c in self.clocks), default=0.0)
