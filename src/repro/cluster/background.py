"""Background load generation.

Two uses in the reproduction:

* the **profiler** (paper §4.2.1.1) pins a processor at each target CPU
  utilization of the measurement grid before timing a subtask, exactly as
  the authors loaded their testbed nodes; and
* experiments can add ambient load on the nodes to model the rest of the
  mission application.

The generator is open-loop: every ``interval_s`` seconds it submits one job
of demand ``target_utilization * interval_s`` (optionally jittered), so as
long as the processor is not saturated its long-run busy fraction from
background work alone equals the target.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.cluster.processor import Processor
from repro.errors import ClusterError


class BackgroundLoad:
    """Holds a processor at a target utilization with periodic jobs.

    Parameters
    ----------
    processor:
        Target processor.
    target_utilization:
        Long-run busy fraction contributed by this generator, in
        ``[0, 0.95]``.  Zero produces no jobs.
    interval_s:
        Spacing of job arrivals (seconds).  Smaller intervals approximate
        a fluid load better but cost more events.
    jitter:
        Fractional uniform jitter applied to each job's demand
        (``demand *= 1 + U(-jitter, +jitter)``); keeps profiling runs from
        phase-locking with the measured subtask.
    rng:
        Random generator used for jitter (required if ``jitter > 0``).
    """

    MAX_TARGET = 0.95

    def __init__(
        self,
        processor: Processor,
        target_utilization: float,
        interval_s: float = 0.050,
        jitter: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= target_utilization <= self.MAX_TARGET:
            raise ClusterError(
                f"target utilization must be in [0, {self.MAX_TARGET}], "
                f"got {target_utilization}"
            )
        if interval_s <= 0.0:
            raise ClusterError(f"interval must be positive, got {interval_s}")
        if jitter < 0.0 or jitter >= 1.0:
            raise ClusterError(f"jitter must be in [0, 1), got {jitter}")
        if jitter > 0.0 and rng is None:
            raise ClusterError("jitter > 0 requires an rng")
        self.processor = processor
        self.target_utilization = float(target_utilization)
        self.interval_s = float(interval_s)
        self.jitter = float(jitter)
        self.rng = rng
        self._stop: Callable[[], None] | None = None
        self.jobs_submitted = 0

    @property
    def running(self) -> bool:
        """Whether the generator is currently emitting jobs."""
        return self._stop is not None

    def start(self) -> None:
        """Begin emitting background jobs (idempotent)."""
        if self._stop is not None or self.target_utilization == 0.0:
            return
        engine = self.processor.engine
        self._stop = engine.every(
            self.interval_s,
            self._emit,
            start_delay=0.0,
            label=f"{self.processor.name}.bg",
        )

    def stop(self) -> None:
        """Stop emitting background jobs (idempotent)."""
        if self._stop is not None:
            self._stop()
            self._stop = None

    def _emit(self) -> None:
        demand = self.target_utilization * self.interval_s
        if self.jitter > 0.0:
            assert self.rng is not None
            demand *= 1.0 + self.rng.uniform(-self.jitter, self.jitter)
        if demand > 0.0:
            self.processor.run_for(demand, kind="background", label="bg")
            self.jobs_submitted += 1
