"""Busy-time metering shared by processors and the network.

:class:`UtilizationMeter` integrates a binary busy/idle signal over
simulated time and answers two questions:

* *windowed utilization* — the busy fraction over the trailing ``W``
  seconds, which is what the resource-management algorithms read as
  ``ut(p, t)`` (paper §3, property 13);
* *lifetime utilization* — the busy fraction over an arbitrary
  ``[t0, t1]`` interval, which is what the experiment metrics report as
  "average CPU utilization" / "average network utilization" (paper §5.2).

The meter stores a monotone series of ``(time, cumulative_busy)``
checkpoints recorded at every busy/idle transition, pruned to the maximum
window it is asked to serve, so memory stays bounded in long sweeps.
"""

from __future__ import annotations

import bisect


class UtilizationMeter:
    """Integrates a busy/idle signal and reports busy fractions.

    Parameters
    ----------
    max_window:
        Largest trailing window (seconds) that :meth:`utilization` will be
        asked for; checkpoints older than this may be pruned.  Lifetime
        accounting (:meth:`busy_between` relative to :attr:`epoch`) is kept
        exactly regardless of pruning via running totals.
    """

    def __init__(self, max_window: float = 30.0) -> None:
        if max_window <= 0.0:
            raise ValueError(f"max_window must be positive, got {max_window}")
        self.max_window = float(max_window)
        self.epoch = 0.0
        self._times: list[float] = [0.0]
        self._cum_busy: list[float] = [0.0]
        self._busy_since: float | None = None
        self._total_busy = 0.0
        self._last_time = 0.0

    # -- signal input -------------------------------------------------------

    def set_busy(self, now: float, busy: bool) -> None:
        """Record that the resource became busy/idle at time ``now``."""
        if now < self._last_time:
            raise ValueError(
                f"meter time went backwards: {now} < {self._last_time}"
            )
        if busy:
            if self._busy_since is None:
                self._busy_since = now
                self._checkpoint(now)
        else:
            if self._busy_since is not None:
                self._total_busy += now - self._busy_since
                self._busy_since = None
                self._checkpoint(now)
        self._last_time = max(self._last_time, now)

    def _checkpoint(self, now: float) -> None:
        cum = self._cumulative_at(now)
        if self._times and self._times[-1] == now:
            self._cum_busy[-1] = cum
        else:
            self._times.append(now)
            self._cum_busy.append(cum)
        self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = now - 2.0 * self.max_window
        # Keep at least one checkpoint at/before the horizon for interpolation.
        cut = bisect.bisect_left(self._times, horizon)
        if cut > 1:
            del self._times[: cut - 1]
            del self._cum_busy[: cut - 1]

    # -- queries --------------------------------------------------------------

    def _cumulative_at(self, t: float) -> float:
        """Cumulative busy seconds from the epoch up to time ``t``."""
        if t >= self._times[-1]:
            # Beyond the recorded history: the running totals are exact.
            if self._busy_since is not None and t >= self._busy_since:
                return self._total_busy + (t - self._busy_since)
            return self._total_busy
        # Interpolate within recorded checkpoints (the signal is
        # piecewise linear with slope 0 or 1; between checkpoints the
        # state did not change, so cumulative busy is flat or linear).
        idx = bisect.bisect_right(self._times, t) - 1
        if idx < 0:
            return 0.0
        t0, c0 = self._times[idx], self._cum_busy[idx]
        c1 = self._cum_busy[idx + 1]
        if c1 > c0:  # busy span between checkpoints
            return c0 + min(t - t0, c1 - c0)
        return c0

    def busy_between(self, t0: float, t1: float) -> float:
        """Busy seconds accumulated in ``[t0, t1]``."""
        if t1 < t0:
            raise ValueError(f"bad interval [{t0}, {t1}]")
        return self._cumulative_at(t1) - self._cumulative_at(t0)

    def utilization(self, now: float, window: float) -> float:
        """Busy fraction over the trailing ``window`` seconds ending at ``now``.

        For ``now < window`` (simulation warm-up) the denominator is
        ``now`` so early readings are not diluted by nonexistent history.
        """
        if window <= 0.0:
            raise ValueError(f"window must be positive, got {window}")
        if window > self.max_window:
            raise ValueError(
                f"window {window} exceeds meter max_window {self.max_window}"
            )
        start = max(self.epoch, now - window)
        span = now - start
        if span <= 0.0:
            return 1.0 if self._busy_since is not None else 0.0
        frac = self.busy_between(start, now) / span
        return min(1.0, max(0.0, frac))

    def lifetime_utilization(self, now: float) -> float:
        """Busy fraction over ``[epoch, now]``."""
        span = now - self.epoch
        if span <= 0.0:
            return 0.0
        return min(1.0, max(0.0, self._cumulative_at(now) / span))

    @property
    def is_busy(self) -> bool:
        """Whether the resource is currently busy."""
        return self._busy_since is not None
