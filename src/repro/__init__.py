"""repro — predictive adaptive resource management for periodic tasks.

A production-quality reproduction of:

    Binoy Ravindran and Tamir Hegazy, "A Predictive Algorithm for
    Adaptive Resource Management of Periodic Tasks in Asynchronous
    Real-Time Distributed Systems", IPPS/SPDP Workshops 2001.

Layering (bottom-up):

* :mod:`repro.sim` — discrete-event simulation engine
* :mod:`repro.cluster` — processors (RR/PS), shared Ethernet, clocks
* :mod:`repro.tasks` — the periodic subtask/message chain model
* :mod:`repro.bench` — the DynBench/AAW-like synthetic benchmark and
  the profiling campaigns
* :mod:`repro.regression` — the paper's eq. 3-6 regression models
* :mod:`repro.runtime` — periodic task execution with replication
* :mod:`repro.core` — **the contribution**: EQF deadline assignment,
  run-time monitoring, the predictive (Fig. 5) and non-predictive
  (Fig. 7) allocation algorithms, replica shutdown (Fig. 6), and the
  adaptive resource manager
* :mod:`repro.workloads` — Figure 8 workload patterns
* :mod:`repro.experiments` — the §5 evaluation harness (metrics,
  sweeps, figure/table reproduction)
* :mod:`repro.telemetry` — observability: metrics registry, RM
  decision spans, streaming JSONL traces, Chrome trace export
* :mod:`repro.api` — **the stable public surface**: every supported
  name, flat, with :func:`repro.api.fit_estimator` as the single
  estimator entry point

Quickstart
----------
.. code-block:: python

    from repro.api import (
        BaselineConfig, ExperimentConfig, fit_estimator, run_experiment,
    )

    baseline = BaselineConfig()
    estimator = fit_estimator(baseline)   # profile + fit once, cached
    result = run_experiment(
        ExperimentConfig(
            policy="predictive", pattern="triangular",
            max_workload_units=20.0, baseline=baseline,
        ),
        estimator=estimator,
    )
    print(result.metrics.combined)
"""

import warnings as _warnings

from repro.api import *  # noqa: F403
from repro.api import __all__ as _api_all

__version__ = "1.1.0"

__all__ = [*_api_all, "__version__"]

#: Pre-facade estimator entry points, kept importable from the root
#: with a DeprecationWarning (PEP 562).
_DEPRECATED_ALIASES = {
    "build_estimator": ("repro.bench.profiler", "build_estimator"),
    "get_default_estimator": ("repro.experiments.estimator_cache", "get_estimator"),
}


def __getattr__(name: str):
    target = _DEPRECATED_ALIASES.get(name)
    if target is not None:
        module_name, attr = target
        _warnings.warn(
            f"repro.{name} is deprecated; use repro.api.fit_estimator "
            "(baseline fits) or repro.api.fit_estimator(task=...) "
            "(custom-task profiling campaigns)",
            DeprecationWarning,
            stacklevel=2,
        )
        import importlib

        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
