"""repro — predictive adaptive resource management for periodic tasks.

A production-quality reproduction of:

    Binoy Ravindran and Tamir Hegazy, "A Predictive Algorithm for
    Adaptive Resource Management of Periodic Tasks in Asynchronous
    Real-Time Distributed Systems", IPPS/SPDP Workshops 2001.

Layering (bottom-up):

* :mod:`repro.sim` — discrete-event simulation engine
* :mod:`repro.cluster` — processors (RR/PS), shared Ethernet, clocks
* :mod:`repro.tasks` — the periodic subtask/message chain model
* :mod:`repro.bench` — the DynBench/AAW-like synthetic benchmark and
  the profiling campaigns
* :mod:`repro.regression` — the paper's eq. 3-6 regression models
* :mod:`repro.runtime` — periodic task execution with replication
* :mod:`repro.core` — **the contribution**: EQF deadline assignment,
  run-time monitoring, the predictive (Fig. 5) and non-predictive
  (Fig. 7) allocation algorithms, replica shutdown (Fig. 6), and the
  adaptive resource manager
* :mod:`repro.workloads` — Figure 8 workload patterns
* :mod:`repro.experiments` — the §5 evaluation harness (metrics,
  sweeps, figure/table reproduction)
* :mod:`repro.telemetry` — observability: metrics registry, RM
  decision spans, streaming JSONL traces, Chrome trace export

Quickstart
----------
.. code-block:: python

    from repro import (
        BaselineConfig, ExperimentConfig, run_experiment,
        get_default_estimator,
    )

    baseline = BaselineConfig()
    estimator = get_default_estimator(baseline)   # profile + fit once
    result = run_experiment(
        ExperimentConfig(
            policy="predictive", pattern="triangular",
            max_workload_units=20.0, baseline=baseline,
        ),
        estimator=estimator,
    )
    print(result.metrics.combined)
"""

from repro.bench import aaw_task, build_estimator, default_initial_placement
from repro.cluster import System, build_system
from repro.core import (
    AdaptiveResourceManager,
    NonPredictivePolicy,
    PredictivePolicy,
    RMConfig,
    assign_deadlines,
    shut_down_a_replica,
)
from repro.experiments import (
    BaselineConfig,
    ExperimentConfig,
    ExperimentMetrics,
    get_default_estimator,
    run_experiment,
    sweep_workloads,
)
from repro.regression import TimingEstimator
from repro.runtime import PeriodicTaskExecutor
from repro.tasks import PeriodicTask, ReplicaAssignment, TaskBuilder
from repro.telemetry import JsonlTraceSink, MetricsRegistry, TelemetryHub
from repro.workloads import make_pattern

__version__ = "1.0.0"

__all__ = [
    "AdaptiveResourceManager",
    "BaselineConfig",
    "ExperimentConfig",
    "ExperimentMetrics",
    "JsonlTraceSink",
    "MetricsRegistry",
    "NonPredictivePolicy",
    "PeriodicTask",
    "PeriodicTaskExecutor",
    "PredictivePolicy",
    "RMConfig",
    "ReplicaAssignment",
    "System",
    "TaskBuilder",
    "TelemetryHub",
    "TimingEstimator",
    "__version__",
    "aaw_task",
    "assign_deadlines",
    "build_estimator",
    "build_system",
    "default_initial_placement",
    "get_default_estimator",
    "make_pattern",
    "run_experiment",
    "shut_down_a_replica",
    "sweep_workloads",
]
