#!/usr/bin/env python3
"""AAW surveillance scenario: a raid arrives, the system adapts.

The paper's motivating application is the Anti-Air Warfare picture of a
surface combatant: a radar feeds track reports through a sensing
pipeline; when a raid multiplies the track count, the resource manager
replicates the heavy subtasks (Filter, EvalDecide) across the machine,
then shuts the replicas down as the raid clears.

This example wires the full stack by hand — system, task, executor,
manager — instead of using the experiment runner, and narrates the
adaptation timeline: track counts, replica counts, per-period latency,
and the actual synthetic tracks (positions/threat scores) produced by
the sensor model.

Run:  python examples/aaw_surveillance.py
"""

from __future__ import annotations

from repro.api import (
    AdaptiveResourceManager,
    BaselineConfig,
    PeriodicTaskExecutor,
    PredictivePolicy,
    ReplicaAssignment,
    RMConfig,
    StepPattern,
    TrackStreamGenerator,
    aaw_task,
    build_system,
    default_initial_placement,
    fit_estimator,
)

N_PERIODS = 40
RAID_START = 10
RAID_TRACKS = 9000.0
QUIET_TRACKS = 600.0


def main() -> None:
    baseline = BaselineConfig()
    estimator = fit_estimator(baseline)

    system = build_system(n_processors=baseline.n_nodes, seed=17)
    task = aaw_task(noise_sigma=baseline.noise_sigma)
    assignment = ReplicaAssignment(
        task, default_initial_placement(task, [p.name for p in system.processors])
    )

    # A raid: quiet picture, then a step to 9,000 tracks at period 10.
    pattern = StepPattern(
        min_tracks=QUIET_TRACKS,
        max_tracks=RAID_TRACKS,
        n_periods=N_PERIODS,
        step_period=RAID_START,
    )
    sensor = TrackStreamGenerator(pattern, seed=3)

    executor = PeriodicTaskExecutor(system, task, assignment, workload=pattern)
    manager = AdaptiveResourceManager(
        system,
        executor,
        estimator,
        policy=PredictivePolicy(slack_fraction=baseline.slack_fraction),
        config=RMConfig(initial_d_tracks=QUIET_TRACKS),
    )

    manager.start(N_PERIODS)
    executor.start(N_PERIODS)

    print("period  tracks  filter-replicas  eval-replicas  latency(ms)  status")
    print("------  ------  ---------------  -------------  -----------  ------")
    for period in range(N_PERIODS):
        system.engine.run_until(float(period + 1))
        record = executor.records[period]
        placement = assignment.snapshot()
        latency = record.latency
        if record.aborted:
            status, latency_text = "SHED", "-"
        elif latency is None:
            status, latency_text = "RUNNING", "-"
        else:
            status = "MISS" if record.missed else "ok"
            latency_text = f"{latency * 1e3:.0f}"
        print(
            f"{period:>6}  {record.d_tracks:>6.0f}  "
            f"{len(placement[3]):>15}  {len(placement[5]):>13}  "
            f"{latency_text:>11}  {status}"
        )

    system.engine.run_until(N_PERIODS + 3.0)

    # A peek at the surveillance picture itself around the raid onset.
    batch = sensor.batch(RAID_START)
    hostile = sorted(batch, key=lambda t: -t.threat)[:3]
    print(f"\nPicture at raid onset: {len(batch)} tracks; highest-threat three:")
    for track in hostile:
        print(
            f"  track {track.track_id:>5}: pos=({track.x:+7.1f}, {track.y:+7.1f}) km"
            f"  v=({track.vx:+.2f}, {track.vy:+.2f}) km/s  threat={track.threat:.2f}"
        )

    missed = sum(1 for r in executor.records if r.missed)
    acted = manager.actions_taken()
    print(
        f"\n{missed}/{N_PERIODS} deadlines missed; the manager adapted the "
        f"allocation {acted} times."
    )
    print(
        "Note how replicas appear within a few periods of the raid and are "
        "shut down (LIFO) after it clears."
    )


if __name__ == "__main__":
    main()
