#!/usr/bin/env python3
"""Predictive vs non-predictive: reproduce the paper's headline result.

Sweeps the maximum workload of the triangular (fluctuating) pattern and
prints the four §5.2 metrics plus the combined performance metric for
both allocation algorithms — a terminal rendition of the paper's
Figures 9 and 10.

Run:  python examples/policy_comparison.py           (default sweep)
      python examples/policy_comparison.py 5 15 30   (custom workloads)
"""

from __future__ import annotations

import sys

from repro.api import (
    BaselineConfig,
    fit_estimator,
    format_sparkline,
    format_table,
    sweep_workloads,
)


def main() -> None:
    units = tuple(float(arg) for arg in sys.argv[1:]) or (
        1.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0,
    )
    baseline = BaselineConfig()
    print("Profiling and fitting regression models...")
    estimator = fit_estimator(baseline)

    print(f"Sweeping triangular workloads: {[f'{u:g}' for u in units]} "
          "(1 unit = 500 tracks)\n")
    results = {
        policy: sweep_workloads(
            policy, "triangular", units, baseline=baseline, estimator=estimator
        )
        for policy in ("predictive", "nonpredictive")
    }

    rows = []
    for i, max_units in enumerate(units):
        for policy in ("predictive", "nonpredictive"):
            metrics = results[policy][i].metrics
            rows.append(
                [
                    f"{max_units:g}",
                    policy,
                    metrics.missed_deadline_ratio,
                    metrics.avg_cpu_utilization,
                    metrics.avg_network_utilization,
                    metrics.avg_replicas,
                    metrics.combined,
                ]
            )
    print(
        format_table(
            ["max workload", "policy", "MD", "cpu", "net", "replicas", "C"],
            rows,
            title="Triangular pattern — the paper's Figure 9/10 comparison",
        )
    )

    pred = [r.metrics.combined for r in results["predictive"]]
    nonpred = [r.metrics.combined for r in results["nonpredictive"]]
    print("\nCombined metric over the sweep (lower is better):")
    print(f"  predictive     {format_sparkline(pred)}")
    print(f"  nonpredictive  {format_sparkline(nonpred)}")

    wins = sum(1 for a, b in zip(pred, nonpred) if a < b)
    ties = sum(1 for a, b in zip(pred, nonpred) if abs(a - b) < 0.02)
    print(
        f"\nPredictive wins {wins}/{len(units)} workload points "
        f"({ties} near-ties at workloads where no replication is needed) — "
        "the paper's conclusion for fluctuating workloads."
    )


if __name__ == "__main__":
    main()
