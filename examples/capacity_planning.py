#!/usr/bin/env python3
"""Capacity planning: size the machine before the mission.

The regression models the predictive algorithm uses online double as an
offline planning tool.  This example:

1. fits the models (cached),
2. prints the capacity curve — replicas needed per sustained workload,
   and where the 6-node machine saturates,
3. verifies one planned point against a live run,
4. shows what an 8-node machine would buy.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.api import (
    BaselineConfig,
    ExperimentConfig,
    fit_estimator,
    plan_capacity,
    run_experiment,
)

GRID = (1000.0, 2500.0, 5000.0, 7500.0, 10000.0, 12500.0, 15000.0, 17500.0)


def main() -> None:
    baseline = BaselineConfig()
    estimator = fit_estimator(baseline)

    print("Capacity curve for the Table 1 machine (6 nodes):\n")
    plan6 = plan_capacity(estimator, GRID, n_processors=6, utilization=0.3)
    print(plan6.render())
    saturation = plan6.saturation_tracks()
    if saturation:
        print(f"\n-> the 6-node machine saturates at ~{saturation:.0f} "
              "tracks/period.")

    # Verify one mid-curve point against a live run.
    probe = 10000.0
    planned = next(p for p in plan6.points if p.d_tracks == probe)
    result = run_experiment(
        ExperimentConfig(
            policy="predictive",
            pattern="constant",
            max_workload_units=probe / 500.0,
            baseline=baseline,
        ),
        estimator=estimator,
    )
    online = {j: len(ps) for j, ps in result.final_placement.items() if j in (3, 5)}
    print(f"\nLive check at {probe:.0f} tracks/period:")
    print(f"  planned  replicas: st3={planned.replicas[3]}, "
          f"st5={planned.replicas[5]}")
    print(f"  online   replicas: st3={online[3]}, st5={online[5]} "
          f"(MD={result.metrics.missed_deadline_ratio:.2f})")
    print("  (the online loop parks a little above the plan — its "
          "monitoring hysteresis; the plan is the sizing floor)")

    print("\nWhat would 8 nodes buy?\n")
    plan8 = plan_capacity(estimator, GRID, n_processors=8, utilization=0.3)
    print(plan8.render())
    saturation8 = plan8.saturation_tracks()
    if saturation8 == saturation:
        print(
            f"\n-> saturation stays at ~{saturation:.0f} tracks/period: "
            "past this point the bottleneck is the serial part of the "
            "chain (the non-replicable subtasks and the message stages), "
            "not replica capacity — Amdahl's law for replication.  More "
            "nodes only help the replicable stages."
        )
    else:
        print(
            f"\n-> saturation moves from ~{saturation or 0:.0f} to "
            + (f"~{saturation8:.0f}" if saturation8 else "beyond the grid")
            + " tracks/period."
        )


if __name__ == "__main__":
    main()
