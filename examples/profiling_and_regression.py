#!/usr/bin/env python3
"""Inside the predictive machinery: profiles, fits, and forecasts.

Walks through §4.2.1 of the paper step by step:

1. profile the Filter subtask over a (CPU utilization x data size)
   grid — the measurements behind Figures 2 and 4;
2. fit eq. 3 with the paper's two-stage procedure and with direct OLS,
   and compare the surfaces;
3. fit eq. 5's buffer-delay line from message-pattern replay;
4. validate forecasts against fresh simulated executions the models
   never saw (the "does prediction work?" check the paper relies on);
5. save the models to JSON and load them back.

Run:  python examples/profiling_and_regression.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.api import (
    PAPER_TABLE2_COEFFICIENTS,
    BackgroundLoad,
    Engine,
    ExecutionLatencyModel,
    Processor,
    aaw_task,
    latency_model_from_dict,
    latency_model_to_dict,
    profile_buffer_delay,
    profile_subtask,
)


def measure_fresh_latency(task, subtask_index, d_tracks, u_target, seed):
    """One out-of-sample measurement on a fresh simulated node."""
    import numpy as np

    engine = Engine()
    processor = Processor(engine, "probe", utilization_window=2.0)
    rng = np.random.default_rng(seed)
    load = BackgroundLoad(processor, u_target, interval_s=0.01, jitter=0.3, rng=rng)
    load.start()
    engine.run_until(0.5)
    done = {}
    demand = task.subtask(subtask_index).service.demand(d_tracks, rng)
    processor.run_for(demand, on_complete=lambda j, t: done.setdefault("lat", j.latency))
    while "lat" not in done:
        engine.step()
    return done["lat"]


def main() -> None:
    task = aaw_task()
    filter_subtask = task.subtask(3)

    print("Step 1 - profiling Filter over the (u, d) grid...")
    profile = profile_subtask(
        filter_subtask,
        u_grid=(0.0, 0.2, 0.4, 0.6, 0.8),
        d_grid_tracks=(250.0, 500.0, 1000.0, 2000.0, 4000.0),
        repetitions=3,
        seed=21,
    )
    print(f"  {len(profile.samples)} measurements collected")

    print("\nStep 2 - fitting eq. 3 (two-stage vs direct OLS):")
    d, u, y = profile.arrays()
    two_stage = profile.model
    direct = ExecutionLatencyModel.fit_direct("Filter", d, u, y)
    print(f"  two-stage : a={tuple(round(v, 4) for v in two_stage.a)} "
          f"b={tuple(round(v, 3) for v in two_stage.b)} R^2={two_stage.r_squared:.4f}")
    print(f"  direct    : a={tuple(round(v, 4) for v in direct.a)} "
          f"b={tuple(round(v, 3) for v in direct.b)} R^2={direct.r_squared:.4f}")
    paper = PAPER_TABLE2_COEFFICIENTS[3]
    print(f"  paper     : a=({paper['a1']}, {paper['a2']}, {paper['a3']}) "
          f"b=({paper['b1']}, {paper['b2']}, {paper['b3']})  "
          "(different application - structure matches, values differ)")

    print("\nStep 3 - fitting eq. 5's buffer-delay line:")
    buffer_profile = profile_buffer_delay(task)
    model = buffer_profile.model
    print(f"  k = {model.k_ms_per_track * 500:.2f} ms per 500-track unit "
          f"(paper: 0.70), R^2 = {model.r_squared:.3f}")

    print("\nStep 4 - out-of-sample forecast check "
          "(points the fit never saw):")
    print("  d(tracks)   u     forecast(ms)  fresh-measured(ms)  error")
    for d_tracks, u_target, seed in (
        (750.0, 0.1, 1), (1500.0, 0.3, 2), (3000.0, 0.5, 3), (2500.0, 0.7, 4),
    ):
        forecast = two_stage.predict_seconds(d_tracks, u_target) * 1e3
        measured = measure_fresh_latency(task, 3, d_tracks, u_target, seed) * 1e3
        err = abs(forecast - measured) / measured
        print(f"  {d_tracks:>9.0f}  {u_target:.1f}  {forecast:>12.1f}  "
              f"{measured:>18.1f}  {err:>5.0%}")

    print("\nStep 5 - JSON round-trip:")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "filter_model.json"
        import json

        path.write_text(json.dumps(latency_model_to_dict(two_stage)))
        restored = latency_model_from_dict(json.loads(path.read_text()))
        assert restored == two_stage
        print(f"  saved and restored identical model ({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
