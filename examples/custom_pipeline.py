#!/usr/bin/env python3
"""Bring your own application: a custom pipeline and a custom policy.

The library is not hard-wired to the AAW benchmark.  This example

1. builds a *video-analytics* pipeline (Ingest -> Detect -> Track ->
   Publish) with its own demand models via :class:`TaskBuilder`,
2. profiles it and fits fresh regression models,
3. registers a custom allocation policy ("budgeted-predictive": the
   paper's Figure 5 loop with a hard replica cap) through the policy
   registry,
4. runs it against a bursty workload on a 4-node system.

Run:  python examples/custom_pipeline.py
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import (
    AdaptiveResourceManager,
    AllocationOutcome,
    AllocationRequest,
    BurstyPattern,
    LinearServiceModel,
    PeriodicTaskExecutor,
    PredictivePolicy,
    QuadraticServiceModel,
    ReplicaAssignment,
    RMConfig,
    TaskBuilder,
    build_system,
    fit_estimator,
    register_policy,
)

N_PERIODS = 30


def build_video_task():
    """A 4-stage video-analytics chain: frames instead of tracks."""
    return (
        TaskBuilder("video", period_s=0.5, deadline_s=0.45)
        .subtask("Ingest", LinearServiceModel(q1_ms=0.3, noise_sigma=0.05))
        .message(bytes_per_item=1200.0)  # compressed frame chunks
        .subtask(
            "Detect",
            QuadraticServiceModel(q2_ms=0.5, q1_ms=3.0, noise_sigma=0.05),
            replicable=True,
        )
        .message(bytes_per_item=200.0, context_bytes_per_item=40.0)
        .subtask(
            "Track",
            QuadraticServiceModel(q2_ms=0.2, q1_ms=2.0, noise_sigma=0.05),
            replicable=True,
        )
        .message(bytes_per_item=64.0)
        .subtask("Publish", LinearServiceModel(q1_ms=0.2, noise_sigma=0.05))
        .build()
    )


@dataclass(frozen=True)
class BudgetedPredictivePolicy:
    """Figure 5's loop with a hard cap on replicas per subtask."""

    max_replicas: int = 3
    inner: PredictivePolicy = PredictivePolicy(slack_fraction=0.2)
    name: str = "budgeted-predictive"

    def replicate(self, request: AllocationRequest) -> AllocationOutcome:
        before = request.assignment.replica_count(request.subtask_index)
        if before >= self.max_replicas:
            return AllocationOutcome(
                subtask_index=request.subtask_index, success=False
            )
        outcome = self.inner.replicate(request)
        # Trim anything beyond the budget (keeps the cap hard).
        removed = 0
        while request.assignment.replica_count(request.subtask_index) > (
            self.max_replicas
        ):
            request.assignment.remove_last_replica(request.subtask_index)
            removed += 1
        kept = outcome.added_processors[: len(outcome.added_processors) - removed]
        return AllocationOutcome(
            subtask_index=outcome.subtask_index,
            success=outcome.success and removed == 0,
            added_processors=kept,
            forecast_latency=outcome.forecast_latency,
        )


register_policy("budgeted-predictive", BudgetedPredictivePolicy)


def main() -> None:
    task = build_video_task()
    print(f"Custom task {task.name!r}: {task.n_subtasks} subtasks, "
          f"period {task.period * 1e3:.0f} ms, deadline {task.deadline * 1e3:.0f} ms")

    print("Profiling the custom pipeline (fresh regression models)...")
    estimator = fit_estimator(
        task=task,
        u_grid=(0.0, 0.2, 0.4, 0.6),
        d_grid_tracks=(100.0, 300.0, 600.0, 1200.0, 2400.0),
        repetitions=2,
        seed=5,
    )

    system = build_system(n_processors=4, seed=5)
    names = [p.name for p in system.processors]
    assignment = ReplicaAssignment(
        task, {i + 1: names[i % len(names)] for i in range(task.n_subtasks)}
    )
    workload = BurstyPattern(
        min_tracks=200.0,
        max_tracks=2400.0,
        n_periods=N_PERIODS,
        burst_probability=0.35,
        seed=8,
    )
    executor = PeriodicTaskExecutor(system, task, assignment, workload=workload)
    manager = AdaptiveResourceManager(
        system,
        executor,
        estimator,
        policy=BudgetedPredictivePolicy(max_replicas=3),
        config=RMConfig(initial_d_tracks=200.0),
    )
    manager.start(N_PERIODS)
    executor.start(N_PERIODS)
    system.engine.run_until(N_PERIODS * task.period + 2.0)

    missed = sum(1 for r in executor.records if r.missed)
    peak = max(count for _, count in manager.replica_samples())
    print(f"\nBursty run on 4 nodes: {missed}/{N_PERIODS} deadlines missed, "
          f"peak total replicas {peak} (cap 3 per subtask), "
          f"{manager.actions_taken()} adaptations.")
    print("Final placement:")
    for index, processors in sorted(assignment.snapshot().items()):
        print(f"  {task.subtask(index).name:>8}: {list(processors)}")


if __name__ == "__main__":
    main()
