#!/usr/bin/env python3
"""Survivability: losing the Filter node mid-mission.

The paper's opening paragraphs motivate decentralized adaptive resource
management with *survivability* — the mission must continue when parts
of the machine are lost.  This example runs the benchmark at a steady
5,000 tracks/period, crashes the node hosting the Filter subtask's
original replica at t = 15 s, recovers it at t = 28 s, and renders the
whole story as an ASCII timeline: watch the latency spike, the manager
evict the dead replicas and re-replicate elsewhere, and timeliness
return within ~2 periods.

Run:  python examples/survivability.py
"""

from __future__ import annotations

from repro.api import (
    AdaptiveResourceManager,
    BaselineConfig,
    FailureEvent,
    FailureInjector,
    PeriodicTaskExecutor,
    PredictivePolicy,
    ReplicaAssignment,
    RMConfig,
    aaw_task,
    build_system,
    default_initial_placement,
    extract_timeline,
    fit_estimator,
    render_timeline,
)

N_PERIODS = 40
WORKLOAD = 5000.0
CRASH_AT = 15.5
RECOVER_AT = 28.5


def main() -> None:
    baseline = BaselineConfig()
    estimator = fit_estimator(baseline)

    system = build_system(n_processors=baseline.n_nodes, seed=11)
    task = aaw_task(noise_sigma=baseline.noise_sigma)
    assignment = ReplicaAssignment(
        task, default_initial_placement(task, [p.name for p in system.processors])
    )
    executor = PeriodicTaskExecutor(
        system, task, assignment, workload=lambda c: WORKLOAD
    )
    manager = AdaptiveResourceManager(
        system,
        executor,
        estimator,
        policy=PredictivePolicy(),
        config=RMConfig(initial_d_tracks=WORKLOAD / 4.0),
    )
    filter_home = assignment.processors_of(3)[0]
    print(f"Filter's original replica lives on {filter_home}; it will crash "
          f"at t={CRASH_AT:g}s and recover at t={RECOVER_AT:g}s.\n")
    FailureInjector(system).plan(
        FailureEvent(filter_home, fail_at=CRASH_AT, recover_at=RECOVER_AT)
    ).arm()

    manager.start(N_PERIODS)
    executor.start(N_PERIODS)
    system.engine.run_until(N_PERIODS + 3.0)

    timeline = extract_timeline(executor, manager)
    print(render_timeline(timeline, deadline_s=task.deadline))

    recoveries = [
        (event.time, recovery)
        for event in manager.history
        for recovery in event.recoveries
    ]
    print("\nFailure-recovery actions:")
    for time, (subtask_index, dead, target) in recoveries:
        action = (
            f"migrated to {target}" if target is not None else "evicted "
            "(surviving replicas absorbed the stream)"
        )
        print(f"  t={time:>4.0f}s  subtask {subtask_index}: replica on {dead} "
              f"{action}")

    missed = sum(1 for r in executor.records if r.missed)
    print(f"\n{missed}/{N_PERIODS} deadlines missed across the crash AND the "
          "recovery — the mission survived the node loss.")


if __name__ == "__main__":
    main()
