#!/usr/bin/env python3
"""Quickstart: profile the benchmark, run one adaptive experiment.

This is the five-minute tour of the library:

1. take the Table 1 baseline configuration,
2. profile the synthetic AAW benchmark and fit the paper's regression
   models (eq. 3 latency surfaces, eq. 4-6 communication model),
3. run the predictive resource-management algorithm against a
   triangular workload,
4. print the §5.2 metrics.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import (
    BaselineConfig,
    ExperimentConfig,
    fit_estimator,
    run_experiment,
)


def main() -> None:
    baseline = BaselineConfig()  # Table 1: 6 nodes, 1 s period, 990 ms deadline
    print("Profiling the benchmark and fitting regression models "
          "(a few seconds, cached afterwards)...")
    estimator = fit_estimator(baseline)

    for index, model in sorted(estimator.latency_models.items()):
        print(
            f"  subtask {index} ({model.subtask_name:>10}): "
            f"eex(d=10, u=0.4) = {model.predict_ms(10.0, 0.4):7.1f} ms, "
            f"fit R^2 = {model.r_squared:.3f}"
        )
    print(
        f"  buffer-delay slope k = "
        f"{estimator.comm_model.buffer.k_ms_per_track * 500:.2f} ms per "
        "500-track unit\n"
    )

    config = ExperimentConfig(
        policy="predictive",
        pattern="triangular",
        max_workload_units=20.0,  # peaks at 10,000 tracks/period
        baseline=baseline,
    )
    print(f"Running {config.policy!r} on a {config.pattern!r} workload "
          f"peaking at {config.max_tracks:.0f} tracks/period...")
    result = run_experiment(config, estimator=estimator)

    metrics = result.metrics
    print(f"\n  periods released        : {metrics.periods_released}")
    print(f"  missed-deadline ratio   : {metrics.missed_deadline_ratio:.3f}")
    print(f"  avg CPU utilization     : {metrics.avg_cpu_utilization:.3f}")
    print(f"  avg network utilization : {metrics.avg_network_utilization:.3f}")
    print(f"  avg subtask replicas    : {metrics.avg_replicas:.2f} "
          f"(of {metrics.max_replicas} max)")
    print(f"  RM actions taken        : {metrics.rm_actions}")
    print(f"  combined metric C       : {metrics.combined:.3f}  (lower is better)")
    print("\nFinal replica placement:")
    for index, processors in sorted(result.final_placement.items()):
        print(f"  subtask {index}: {list(processors)}")


if __name__ == "__main__":
    main()
