#!/usr/bin/env python3
"""A full mission: composite workload + latency breakdown.

Runs the "skirmishes" mission profile — quiet patrol punctuated by two
triangular engagements — under the predictive manager, then answers two
operator questions:

1. *How did the system behave over the mission?* (ASCII timeline)
2. *Where did the period go?* (per-stage latency breakdown, computed
   separately for the quiet stretches and the engagements)

Run:  python examples/mission_profile.py
"""

from __future__ import annotations

from repro.api import (
    AdaptiveResourceManager,
    BaselineConfig,
    PeriodicTaskExecutor,
    PredictivePolicy,
    ReplicaAssignment,
    RMConfig,
    aaw_task,
    build_system,
    compute_breakdown,
    default_initial_placement,
    extract_timeline,
    fit_estimator,
    mission_profile,
    render_timeline,
)


def main() -> None:
    baseline = BaselineConfig()
    estimator = fit_estimator(baseline)
    profile = mission_profile("skirmishes", max_tracks=9000.0, quiet_tracks=500.0)
    print(f"Mission: 'skirmishes', {profile.n_periods} periods, "
          f"{profile.min_tracks:.0f}-{profile.max_tracks:.0f} tracks/period\n")

    system = build_system(n_processors=baseline.n_nodes, seed=23)
    task = aaw_task(noise_sigma=baseline.noise_sigma)
    assignment = ReplicaAssignment(
        task, default_initial_placement(task, [p.name for p in system.processors])
    )
    executor = PeriodicTaskExecutor(system, task, assignment, workload=profile)
    manager = AdaptiveResourceManager(
        system,
        executor,
        estimator,
        policy=PredictivePolicy(),
        config=RMConfig(initial_d_tracks=500.0),
    )
    manager.start(profile.n_periods)
    executor.start(profile.n_periods)
    system.engine.run_until(profile.n_periods + 3.0)

    print(render_timeline(extract_timeline(executor, manager),
                          deadline_s=task.deadline))

    # Quiet patrol: periods 0-5.  First engagement: periods 6-17.
    print("\n--- quiet patrol (periods 0-5) ---")
    print(compute_breakdown(executor, first_period=0, last_period=5).render())
    print("\n--- first engagement (periods 6-17) ---")
    engaged = compute_breakdown(executor, first_period=6, last_period=17)
    print(engaged.render())

    dominant = engaged.dominant_stage()
    print(f"\nDuring the engagement the period is dominated by "
          f"st{dominant.subtask_index} ({dominant.subtask_name}): "
          f"{dominant.mean_stage_s * 1e3:.0f} ms with "
          f"{dominant.mean_replicas:.1f} replicas on average.")


if __name__ == "__main__":
    main()
