"""Unit tests for the SLO engine: rules, burn rates, alerts, verdicts."""

from __future__ import annotations

import pytest

from repro.errors import TelemetryError
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.slo import (
    DEFAULT_SLO_RULES,
    SloEngine,
    SloRule,
    load_slo_rules,
)


def _rule(**overrides):
    kwargs = dict(
        name="miss",
        signal="deadline_miss_rate",
        objective=0.25,
        windows=(5.0, 20.0),
        burn_rate_threshold=2.0,
    )
    kwargs.update(overrides)
    return SloRule(**kwargs)


class TestSloRule:
    def test_unknown_signal_rejected(self):
        with pytest.raises(TelemetryError, match="unknown signal"):
            _rule(signal="cpu_temperature")

    def test_empty_name_rejected(self):
        with pytest.raises(TelemetryError, match="non-empty"):
            _rule(name="")

    def test_ratio_objective_must_be_a_fraction(self):
        with pytest.raises(TelemetryError, match=r"\[0, 1\]"):
            _rule(objective=1.5)

    def test_value_objective_must_be_positive(self):
        with pytest.raises(TelemetryError, match="positive"):
            _rule(signal="placement_latency", objective=0.0)

    def test_windows_must_be_ordered(self):
        with pytest.raises(TelemetryError, match="short <= long"):
            _rule(windows=(20.0, 5.0))

    def test_burn_threshold_must_be_positive(self):
        with pytest.raises(TelemetryError, match="burn_rate_threshold"):
            _rule(burn_rate_threshold=0.0)

    def test_error_budget_inverts_min_ratio(self):
        avail = _rule(signal="availability", objective=0.98)
        assert avail.kind == "min_ratio"
        assert avail.error_budget == pytest.approx(0.02)
        miss = _rule(objective=0.02)
        assert miss.kind == "max_ratio"
        assert miss.error_budget == pytest.approx(0.02)

    def test_default_rules_are_deterministic_signals_only(self):
        # placement_latency is wall-clock; keeping it out of the default
        # set is what keeps `repro slo` output reproducible.
        assert all(
            rule.signal != "placement_latency" for rule in DEFAULT_SLO_RULES
        )


TOML = """
[[slo.rules]]
name = "miss"
signal = "deadline_miss_rate"
objective = 0.02
windows = [5.0, 20.0]

[[slo.rules]]
name = "avail"
signal = "availability"
objective = 0.98
"""


class TestLoadSloRules:
    def test_parses_toml_text(self):
        rules = load_slo_rules(TOML)
        assert [r.name for r in rules] == ["miss", "avail"]
        assert rules[0].windows == (5.0, 20.0)

    def test_parses_file(self, tmp_path):
        path = tmp_path / "rules.toml"
        path.write_text(TOML)
        assert len(load_slo_rules(path)) == 2

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TelemetryError, match="cannot read"):
            load_slo_rules(tmp_path / "nope.toml")

    def test_parses_mapping(self):
        rules = load_slo_rules(
            {"rules": [{"name": "m", "signal": "message_loss_rate",
                        "objective": 0.05}]}
        )
        assert rules[0].signal == "message_loss_rate"

    def test_unknown_key_rejected(self):
        with pytest.raises(TelemetryError, match="unknown key"):
            load_slo_rules(
                {"rules": [{"name": "m", "signal": "availability",
                            "objective": 0.9, "burn_threshold": 2.0}]}
            )

    def test_duplicate_names_rejected(self):
        entry = {"name": "m", "signal": "availability", "objective": 0.9}
        with pytest.raises(TelemetryError, match="duplicate"):
            load_slo_rules({"rules": [entry, dict(entry)]})

    def test_empty_document_rejected(self):
        with pytest.raises(TelemetryError, match="no .*rules"):
            load_slo_rules({"slo": {}})

    def test_malformed_toml_rejected(self):
        with pytest.raises(TelemetryError, match="malformed"):
            load_slo_rules("[[slo.rules\nname=")


class TestEngineFeeds:
    def test_period_feeds_miss_and_availability(self):
        engine = SloEngine(
            (
                _rule(name="miss", objective=0.25),
                _rule(name="avail", signal="availability", objective=0.5),
            )
        )
        engine.on_period(1.0, missed=True)
        engine.on_period(2.0, missed=False)
        engine.on_period(3.0, missed=False)
        engine.on_period(4.0, missed=False)
        report = engine.report()
        by_name = {v.rule.name: v for v in report.verdicts}
        assert by_name["miss"].observed == pytest.approx(0.25)
        assert by_name["miss"].passed
        assert by_name["avail"].observed == pytest.approx(0.75)
        assert by_name["avail"].passed

    def test_no_events_is_vacuously_green(self):
        engine = SloEngine(
            (
                _rule(name="miss", objective=0.0),
                _rule(name="avail", signal="availability", objective=1.0),
            )
        )
        engine.evaluate(10.0)
        report = engine.report()
        assert report.passed
        assert all(v.n_events == 0 for v in report.verdicts)

    def test_forecast_tolerance_decides_badness(self):
        rule = _rule(
            name="cal", signal="forecast_calibration_error",
            objective=0.25, tolerance=0.5,
        )
        engine = SloEngine((rule,))
        engine.on_forecast_realized(1.0, ape=0.4)  # within tolerance
        engine.on_forecast_realized(2.0, ape=0.6)  # badly calibrated
        [verdict] = engine.report().verdicts
        assert verdict.observed == pytest.approx(0.5)
        assert not verdict.passed

    def test_message_loss_ratio(self):
        engine = SloEngine((_rule(name="loss", signal="message_loss_rate",
                                  objective=0.5),))
        engine.on_message(1.0, dropped=False)
        engine.on_message(1.0, dropped=True)
        [verdict] = engine.report().verdicts
        assert verdict.observed == pytest.approx(0.5)
        assert verdict.passed

    def test_decision_latency_uses_the_mean(self):
        engine = SloEngine((_rule(name="lat", signal="placement_latency",
                                  objective=0.010),))
        engine.on_decision_latency(1.0, 0.004)
        engine.on_decision_latency(2.0, 0.008)
        [verdict] = engine.report().verdicts
        assert verdict.observed == pytest.approx(0.006)
        assert verdict.passed

    def test_unrelated_signals_do_not_cross_feed(self):
        engine = SloEngine((_rule(name="loss", signal="message_loss_rate",
                                  objective=0.5),))
        engine.on_period(1.0, missed=True)
        [verdict] = engine.report().verdicts
        assert verdict.n_events == 0


class TestBurnRateAlerts:
    def test_alert_fires_and_resolves(self):
        emitted = []
        registry = MetricsRegistry()
        engine = SloEngine(
            (_rule(objective=0.25),), registry=registry, emit=emitted.append
        )
        # Four straight misses: both windows burn at 1.0/0.25 = 4x.
        for t in (1.0, 2.0, 3.0, 4.0):
            engine.on_period(t, missed=True)
        engine.evaluate(4.0)
        assert [a.state for a in engine.alerts] == ["firing"]
        assert engine.alerts[0].burn_short == pytest.approx(4.0)
        # A long clean stretch: the bad events age out of both windows.
        for t in range(5, 31):
            engine.on_period(float(t), missed=False)
        engine.evaluate(30.0)
        assert [a.state for a in engine.alerts] == ["firing", "resolved"]
        assert [r["kind"] for r in emitted] == ["slo.alert", "slo.alert"]
        assert (
            registry.counter("slo.alert_transitions", {"slo": "miss"}).value
            == 2
        )
        [verdict] = engine.report().verdicts
        assert verdict.alerts_fired == 1

    def test_short_window_blip_alone_does_not_fire(self):
        engine = SloEngine((_rule(objective=0.25),))
        # 16 good events fill the long window first...
        for t in range(1, 17):
            engine.on_period(float(t), missed=False)
        # ...then a short burst of misses: short window burns hot, but
        # the long window stays under threshold (4/20 = 0.2 < 0.5).
        for t in (17.0, 17.2, 17.4, 17.6):
            engine.on_period(t, missed=True)
        engine.evaluate(17.6)
        assert engine.alerts == []
        [verdict] = engine.report().verdicts
        assert verdict.worst_burn < 2.0

    def test_evaluate_publishes_gauges(self):
        registry = MetricsRegistry()
        engine = SloEngine((_rule(objective=0.25),), registry=registry)
        engine.on_period(1.0, missed=True)
        engine.evaluate(1.0)
        labels = {"slo": "miss"}
        assert registry.gauge("slo.observed", labels).value == 1.0
        assert registry.gauge("slo.burn_short", labels).value == pytest.approx(4.0)
        assert registry.gauge("slo.burn_long", labels).value == pytest.approx(4.0)
        assert registry.gauge("slo.ok", labels).value == 0.0

    def test_burn_history_feeds_the_sparkline(self):
        engine = SloEngine((_rule(objective=0.25),))
        engine.on_period(1.0, missed=True)
        engine.evaluate(1.0)
        engine.evaluate(2.0)
        [verdict] = engine.report().verdicts
        assert len(verdict.burn_history) == 2
        assert verdict.burn_history[0][0] == 1.0

    def test_zero_budget_rule_burns_infinitely_on_any_miss(self):
        engine = SloEngine((_rule(objective=0.0),))
        engine.on_period(1.0, missed=True)
        engine.evaluate(1.0)
        assert [a.state for a in engine.alerts] == ["firing"]

    def test_events_are_pruned_past_the_long_window(self):
        engine = SloEngine((_rule(windows=(5.0, 20.0)),))
        for t in range(100):
            engine.on_period(float(t), missed=False)
            engine.evaluate(float(t))
        state = engine._states["miss"]
        assert len(state.events) <= 21
        assert state.total == 100  # whole-run verdict still sees everything


class TestEngineConstruction:
    def test_defaults_to_the_default_rules(self):
        assert SloEngine().rules == DEFAULT_SLO_RULES

    def test_empty_rule_set_rejected(self):
        with pytest.raises(TelemetryError, match="at least one"):
            SloEngine(())

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(TelemetryError, match="duplicate"):
            SloEngine((_rule(), _rule()))


class TestReport:
    def test_exit_code_and_breaches(self):
        engine = SloEngine((_rule(objective=0.0),))
        engine.on_period(1.0, missed=True)
        report = engine.report()
        assert not report.passed
        assert report.exit_code == 1
        assert [v.rule.name for v in report.breaches] == ["miss"]
        assert SloEngine((_rule(),)).report().exit_code == 0

    def test_render_mentions_verdicts(self):
        engine = SloEngine((_rule(objective=0.0),))
        engine.on_period(1.0, missed=True)
        text = engine.report().render()
        assert "FAIL" in text and "miss" in text

    def test_as_dict_roundtrips_to_json(self):
        import json

        engine = SloEngine((_rule(),))
        engine.on_period(1.0, missed=True)
        engine.evaluate(1.0)
        data = json.loads(json.dumps(engine.report().as_dict()))
        # One period observed, missed: rate 1.0 > objective 0.25.
        assert data["passed"] is False
        assert data["verdicts"][0]["name"] == "miss"
        assert data["verdicts"][0]["observed"] == pytest.approx(1.0)
        assert data["verdicts"][0]["burn_history"] == [[1.0, 4.0]]
