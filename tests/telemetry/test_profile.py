"""Unit tests for the deterministic run profiler."""

from __future__ import annotations

import json

from repro.telemetry.profile import PROFILE_PID, RegionStat, RunProfiler


class TestRegions:
    def test_begin_end_accumulates(self):
        profiler = RunProfiler()
        handle = profiler.begin("engine.run")
        wall = profiler.end(handle, events=42)
        [stat] = profiler.stats()
        assert stat.name == "engine.run"
        assert stat.calls == 1
        assert stat.events == 42
        assert stat.wall_s >= 0.0
        assert wall == stat.wall_s

    def test_nested_regions_attribute_self_time(self):
        profiler = RunProfiler()
        outer = profiler.begin("rm.step")
        inner = profiler.begin("rm.forecast")
        profiler.end(inner, events=3)
        profiler.end(outer, events=1)
        stats = {s.name: s for s in profiler.stats()}
        outer_stat = stats["rm.step"]
        inner_stat = stats["rm.forecast"]
        # The outer region's self time excludes the enclosed child.
        assert outer_stat.self_wall_s <= outer_stat.wall_s
        assert outer_stat.wall_s >= inner_stat.wall_s
        assert inner_stat.self_wall_s == inner_stat.wall_s

    def test_stale_handle_is_harmless(self):
        profiler = RunProfiler()
        assert profiler.end(7) == 0.0
        assert profiler.stats() == ()

    def test_exception_abandoned_frames_are_discarded(self):
        # A region that dies between begin and end (e.g. an unhardened
        # RM step crashing on faulty input) must not corrupt the stack:
        # ending the outer handle discards the abandoned inner frame.
        profiler = RunProfiler()
        outer = profiler.begin("rm.step")
        profiler.begin("rm.forecast")  # never ended - "crashed"
        profiler.end(outer, events=1)
        stats = {s.name: s for s in profiler.stats()}
        assert "rm.forecast" not in stats
        assert stats["rm.step"].calls == 1
        assert profiler._stack == []

    def test_count_adds_events_without_calls(self):
        profiler = RunProfiler()
        profiler.count("net.message")
        profiler.count("net.message", events=4)
        [stat] = profiler.stats()
        assert stat.calls == 0
        assert stat.events == 5
        assert stat.wall_s == 0.0

    def test_stats_sorted_by_name(self):
        profiler = RunProfiler()
        for name in ("zeta", "alpha", "mid"):
            profiler.count(name)
        assert [s.name for s in profiler.stats()] == ["alpha", "mid", "zeta"]


class TestSummary:
    def test_deterministic_summary_has_no_wall_keys(self):
        profiler = RunProfiler()
        handle = profiler.begin("engine.run")
        profiler.end(handle, events=10)
        summary = profiler.summary(deterministic=True)
        assert summary["deterministic"] is True
        [region] = summary["regions"]
        assert set(region) == {"name", "calls", "events"}

    def test_wall_summary_includes_times(self):
        profiler = RunProfiler()
        handle = profiler.begin("engine.run")
        profiler.end(handle)
        [region] = profiler.summary()["regions"]
        assert "wall_s" in region and "self_wall_s" in region

    def test_deterministic_summaries_compare_equal_across_runs(self):
        def run():
            profiler = RunProfiler()
            for _ in range(3):
                handle = profiler.begin("engine.run")
                profiler.end(handle, events=7)
            profiler.count("net.message", 2)
            return json.dumps(profiler.summary(deterministic=True),
                              sort_keys=True)

        assert run() == run()

    def test_render_is_a_table(self):
        profiler = RunProfiler()
        handle = profiler.begin("engine.run")
        profiler.end(handle, events=5)
        text = profiler.render()
        assert "engine.run" in text and "self %" in text

    def test_region_stat_as_dict_modes(self):
        stat = RegionStat("x", calls=2, events=9, wall_s=0.5, self_wall_s=0.4)
        assert stat.as_dict(deterministic=True) == {
            "name": "x", "calls": 2, "events": 9,
        }
        assert stat.as_dict()["wall_s"] == 0.5


class TestChromeExport:
    def test_flame_track_shape(self):
        profiler = RunProfiler()
        outer = profiler.begin("rm.step")
        inner = profiler.begin("rm.forecast")
        profiler.end(inner)
        profiler.end(outer)
        trace = profiler.to_chrome_trace()
        metas = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {m["name"] for m in metas} == {"process_name", "thread_name"}
        assert len(slices) == 2
        assert all(e["pid"] == PROFILE_PID for e in slices)
        assert all(e["dur"] >= 0.0 for e in slices)
        # Inner slice ends first, so it is recorded first.
        assert [e["name"] for e in slices] == ["rm.forecast", "rm.step"]

    def test_write_chrome_trace(self, tmp_path):
        profiler = RunProfiler()
        handle = profiler.begin("engine.run")
        profiler.end(handle)
        target = profiler.write_chrome_trace(tmp_path / "flame.json")
        data = json.loads(target.read_text())
        assert data["displayTimeUnit"] == "ms"
