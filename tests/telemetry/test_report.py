"""Unit tests for the deterministic HTML health report."""

from __future__ import annotations

import hashlib

from repro.telemetry.report import render_report, sparkline, write_report


def _payload():
    return dict(
        meta={"policy": "predictive", "seed": 42},
        metrics={"missed": 0.0, "combined": 1.25},
        slo={
            "passed": True,
            "verdicts": [
                {
                    "name": "miss", "signal": "deadline_miss_rate",
                    "objective": 0.02, "observed": 0.0, "n_events": 60,
                    "passed": True, "alerts_fired": 0, "worst_burn": 0.0,
                    "burn_history": [[1.0, 0.0], [2.0, 0.5]],
                }
            ],
            "alerts": [],
        },
        profile={
            "deterministic": True,
            "regions": [{"name": "engine.run", "calls": 1, "events": 100}],
        },
        calibration={"n": 9, "mape": 0.11},
    )


class TestDeterminism:
    def test_same_payload_same_bytes(self):
        # The digest gate: rebuilding the payload fresh both times must
        # produce byte-identical HTML (no timestamps, no ids).
        digests = {
            hashlib.sha256(render_report(**_payload()).encode()).hexdigest()
            for _ in range(2)
        }
        assert len(digests) == 1

    def test_floats_use_6g(self):
        html = render_report(metrics={"x": 0.123456789})
        assert "0.123457" in html
        assert "0.123456789" not in html


class TestSections:
    def test_sections_render_only_when_given(self):
        html = render_report(**_payload())
        for heading in ("Run", "Metrics", "SLOs", "Profile",
                        "Forecast calibration"):
            assert f"<h2>{heading}" in html
        assert "Resilience scorecard" not in html
        assert "Campaign rollup" not in html
        bare = render_report(metrics={"x": 1.0})
        assert "<h2>SLOs" not in bare

    def test_overall_verdict_banner(self):
        html = render_report(slo={"passed": False, "verdicts": [],
                                  "alerts": []})
        assert "Overall SLO verdict" in html
        assert 'class="fail">FAIL' in html

    def test_alert_transitions_table(self):
        payload = _payload()
        payload["slo"]["alerts"] = [
            {"t": 4.0, "rule": "miss", "state": "firing",
             "burn_short": 4.0, "burn_long": 4.0}
        ]
        html = render_report(**payload)
        assert "Alert transitions" in html
        assert "firing" in html

    def test_profile_wall_columns_follow_determinism_flag(self):
        det = render_report(profile={"deterministic": True, "regions": []})
        assert "wall s" not in det
        wall = render_report(
            profile={
                "deterministic": False,
                "regions": [{"name": "r", "calls": 1, "events": 2,
                             "wall_s": 0.5, "self_wall_s": 0.4}],
            }
        )
        assert "wall s" in wall and "0.5" in wall

    def test_rollup_section(self):
        html = render_report(
            rollup={
                "aggregate": {"n_runs": 2,
                              "slo": {"passed": 1, "failed": 1, "absent": 0}},
                "runs": {
                    "a/u10": {"metrics": {"missed": 0.0},
                              "slo": {"passed": True, "alerts": []}},
                    "a/u20": {"metrics": {"missed": 0.2},
                              "slo": {"passed": False, "alerts": [1, 2]}},
                },
            }
        )
        assert "Campaign rollup" in html
        assert "a/u20" in html
        assert "1 SLO pass" in html

    def test_meta_values_are_escaped(self):
        html = render_report(meta={"note": "<script>alert(1)</script>"})
        assert "<script>" not in html
        assert "&lt;script&gt;" in html

    def test_self_contained_single_document(self):
        html = render_report(**_payload())
        assert html.startswith("<!DOCTYPE html>")
        assert html.endswith("</body></html>\n")
        assert "http" not in html  # no external resources


class TestSparkline:
    def test_empty_series(self):
        assert "no data" in sparkline([])

    def test_polyline_and_threshold(self):
        svg = sparkline([[0.0, 0.0], [1.0, 2.0], [2.0, 1.0]], threshold=2.0)
        assert svg.startswith('<svg class="spark"')
        assert "<polyline" in svg
        assert "stroke-dasharray" in svg
        assert sparkline([[0.0, 1.0]], threshold=None).count("line") == 1

    def test_coordinates_are_rounded(self):
        svg = sparkline([[0.0, 1.0 / 3.0], [1.0, 2.0 / 3.0]])
        # Two-decimal rounding keeps the markup short and deterministic.
        assert "3333" not in svg


class TestWriteReport:
    def test_writes_the_rendered_bytes(self, tmp_path):
        target = write_report(tmp_path / "health.html", **_payload())
        assert target.read_text(encoding="utf-8") == render_report(**_payload())
