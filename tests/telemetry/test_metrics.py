"""Unit tests for the telemetry metrics registry."""

from __future__ import annotations

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeWeightedGauge,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_raises(self):
        c = Counter("x")
        with pytest.raises(TelemetryError, match="cannot decrease"):
            c.inc(-1.0)

    def test_sample_shape(self):
        c = Counter("x")
        c.inc(4.0)
        assert c.sample(at=10.0) == {"value": 4.0}


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("x")
        g.set(5.0)
        g.inc(-2.0)
        assert g.value == 3.0

    def test_sample_shape(self):
        g = Gauge("x")
        g.set(7)
        assert g.sample(at=0.0) == {"value": 7.0}


class TestTimeWeightedGauge:
    def test_time_average_weights_by_duration(self):
        g = TimeWeightedGauge("replicas")
        g.set(0.0, 2.0)   # 2 replicas for 8s
        g.set(8.0, 4.0)   # 4 replicas for 2s
        # (2*8 + 4*2) / 10 = 2.4
        assert g.time_average(at=10.0) == pytest.approx(2.4)
        assert g.value == 4.0

    def test_average_before_any_update_is_zero(self):
        assert TimeWeightedGauge("x").time_average(at=5.0) == 0.0

    def test_average_at_first_update_time_is_current_value(self):
        g = TimeWeightedGauge("x")
        g.set(3.0, 9.0)
        assert g.time_average(at=3.0) == 9.0

    def test_backwards_time_raises(self):
        g = TimeWeightedGauge("x")
        g.set(5.0, 1.0)
        with pytest.raises(TelemetryError, match="backwards"):
            g.set(4.0, 2.0)

    def test_sample_includes_average(self):
        g = TimeWeightedGauge("x")
        g.set(0.0, 1.0)
        g.set(1.0, 3.0)
        sample = g.sample(at=2.0)
        assert sample["value"] == 3.0
        assert sample["time_average"] == pytest.approx(2.0)


class TestHistogram:
    def test_observations_land_in_correct_buckets(self):
        h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        h.observe(0.05)   # <= 0.1
        h.observe(0.1)    # <= 0.1 (bounds are inclusive upper)
        h.observe(0.5)    # <= 1.0
        h.observe(100.0)  # +Inf overflow
        assert h.counts == [2, 1, 0, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(100.65)

    def test_mean(self):
        h = Histogram("lat", buckets=(1.0,))
        assert h.mean == 0.0
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == 3.0

    def test_non_increasing_buckets_raise(self):
        with pytest.raises(TelemetryError, match="strictly increasing"):
            Histogram("bad", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(TelemetryError, match="strictly increasing"):
            Histogram("bad", buckets=())

    def test_quantile(self):
        h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for _ in range(9):
            h.observe(0.05)
        h.observe(5.0)
        assert h.quantile(0.5) == 0.1
        assert h.quantile(1.0) == 10.0
        with pytest.raises(TelemetryError, match="quantile"):
            h.quantile(1.5)

    def test_quantile_empty(self):
        assert Histogram("lat").quantile(0.9) == 0.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a", {"p": "1"}) is not reg.counter("a", {"p": "2"})
        assert len(reg) == 3

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        first = reg.counter("a", {"x": "1", "y": "2"})
        second = reg.counter("a", {"y": "2", "x": "1"})
        assert first is second

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TelemetryError, match="already registered"):
            reg.gauge("a")

    def test_snapshot_is_deterministic_and_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("z.second").inc(2)
        reg.counter("a.first").inc(1)
        reg.histogram("a.hist").observe(0.2)
        snap = reg.snapshot(at=12.0)
        assert snap["at"] == 12.0
        names = [m["name"] for m in snap["metrics"]]
        assert names == sorted(names)
        # Round-trips through json without custom encoders.
        parsed = json.loads(json.dumps(snap))
        assert parsed["metrics"][0]["name"] == "a.first"

    def test_to_json_parses(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.5)
        doc = json.loads(reg.to_json(at=3.0))
        assert doc["at"] == 3.0

    def test_to_prometheus_format(self):
        reg = MetricsRegistry()
        reg.counter("sim.events_executed").inc(42)
        reg.gauge("sim.time").set(9.5)
        reg.counter("proc.jobs_completed", {"processor": "p0"}).inc(3)
        reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        reg.time_gauge("rm.replicas_total").set(0.0, 4.0)
        text = reg.to_prometheus(at=10.0)
        assert "# TYPE repro_sim_events_executed counter" in text
        assert "repro_sim_events_executed 42" in text
        assert "repro_sim_time 9.5" in text
        assert 'repro_proc_jobs_completed{processor="p0"} 3' in text
        # Cumulative buckets plus the +Inf catch-all.
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert "repro_lat_sum 0.05" in text
        assert "repro_lat_count 1" in text
        # Time gauge exports both value and _avg series.
        assert "repro_rm_replicas_total 4" in text
        assert "repro_rm_replicas_total_avg 4" in text
        assert text.endswith("\n")

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))
