"""Trace continuity across checkpoint/restore (:mod:`repro.recovery`).

A run streaming a :class:`JsonlTraceSink` that is snapshotted and
resumed must leave ONE coherent trace file: the records written before
the snapshot survive (append-mode reopen, no truncation) and the
continuation's records follow them, all loadable by
:func:`read_jsonl`.
"""

from __future__ import annotations

import pickle

from repro.experiments.config import BaselineConfig, ExperimentConfig
from repro.experiments.runner import build_world, run_experiment
from repro.recovery import restore_snapshot, take_snapshot
from repro.sim.trace import StreamingTracer
from repro.telemetry.sinks import JsonlTraceSink, read_jsonl

BASELINE = BaselineConfig(n_periods=8, seed=3)
CONFIG = ExperimentConfig(
    policy="predictive",
    pattern="triangular",
    max_workload_units=12.0,
    baseline=BASELINE,
)


class TestAppendMode:
    def test_append_reopen_concatenates(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.write({"t": 1.0, "kind": "trace", "label": "first"})
        with JsonlTraceSink(path, append=True) as sink:
            sink.write({"t": 2.0, "kind": "trace", "label": "second"})
        records = read_jsonl(path)
        assert [r["label"] for r in records] == ["first", "second"]

    def test_default_mode_still_truncates(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.write({"t": 1.0, "kind": "trace", "label": "first"})
        with JsonlTraceSink(path) as sink:
            sink.write({"t": 2.0, "kind": "trace", "label": "second"})
        assert [r["label"] for r in read_jsonl(path)] == ["second"]

    def test_unpickled_sink_reopens_in_append_mode(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path)
        sink.write({"t": 1.0, "kind": "trace", "label": "before"})
        clone = pickle.loads(pickle.dumps(sink))
        sink.close()
        clone.write({"t": 2.0, "kind": "trace", "label": "after"})
        clone.close()
        assert [r["label"] for r in read_jsonl(path)] == ["before", "after"]


class TestResumedRunTrace:
    def test_resumed_trace_concatenates_and_round_trips(self, tmp_path, fitted_estimator):
        # Reference: one uninterrupted traced run.
        ref_path = tmp_path / "ref.jsonl"
        with JsonlTraceSink(ref_path, flush_every=1) as sink:
            run_experiment(
                CONFIG, estimator=fitted_estimator, tracer=StreamingTracer(sink)
            )
        reference = read_jsonl(ref_path)
        assert reference, "traced reference run produced no records"

        # Crash-and-resume: snapshot mid-run (the sink pickles with the
        # world), keep running nothing in the original, restore, finish.
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path, flush_every=1)
        world = build_world(
            CONFIG, estimator=fitted_estimator, tracer=StreamingTracer(sink)
        )
        world.system.engine.run_until(3.0)
        snapshot = take_snapshot(world)
        sink.close()  # the "crash": original process gone, file flushed

        resumed_world = restore_snapshot(snapshot)
        resumed_world.system.engine.run_until(resumed_world.end_time)
        resumed_world.system.engine.tracer.sink.close()

        merged = read_jsonl(path)
        times = [r["t"] for r in merged]
        assert times == sorted(times)
        # The pre-snapshot prefix survived and the continuation extends
        # past the snapshot point.
        assert any(r["t"] <= 3.0 for r in merged)
        assert any(r["t"] > 3.0 for r in merged)
        # Same event stream as the uninterrupted run, modulo the few
        # records the original emitted between snapshot and close: the
        # merged trace replays the reference's (t, kind, label) stream.
        def key(record):
            return (record["t"], record["kind"], record.get("label"))

        ref_keys = [key(r) for r in reference]
        merged_keys = [key(r) for r in merged]
        assert merged_keys == ref_keys
