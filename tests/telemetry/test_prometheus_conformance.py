"""Prometheus text-exposition conformance for the metrics registry.

The exposition format has sharp edges that a naive exporter gets wrong:
label values must escape backslash, double-quote, and newline; histogram
bucket counts are cumulative; and the ``+Inf`` bucket must equal
``_count`` exactly.  These tests pin each of them with a conformance
vector so a regression shows up as a readable diff.
"""

from __future__ import annotations

import re

import pytest

from repro.errors import TelemetryError
from repro.telemetry.metrics import MetricsRegistry, _escape_label_value

#: ``name{labels} value`` with an optional exponent — every non-comment
#: exposition line must match.
SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\\\|\\\"|\\n)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\\\|\\\"|\\n)*\")*\})?"
    r" -?[0-9.eE+\-]+(\+Inf)?$"
)


class TestLabelEscaping:
    def test_escape_function(self):
        assert _escape_label_value("plain") == "plain"
        assert _escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert _escape_label_value("a\\b") == "a\\\\b"
        assert _escape_label_value("line1\nline2") == "line1\\nline2"

    def test_escaped_values_in_exposition(self):
        registry = MetricsRegistry()
        registry.counter(
            "events", {"path": 'C:\\tmp\\"x"', "note": "two\nlines"}
        ).inc()
        text = registry.to_prometheus(0.0)
        [line] = [l for l in text.splitlines() if not l.startswith("#")]
        assert '\\"x\\"' in line
        assert "C:\\\\tmp" in line
        assert "two\\nlines" in line
        assert "\n" not in line  # the raw newline must never leak

    def test_every_sample_line_is_well_formed(self):
        registry = MetricsRegistry()
        registry.counter("a.b-c", {"k": 'v"\\\n'}).inc(3)
        registry.gauge("g", {"x": "1"}).set(-2.5)
        registry.time_gauge("tg").set(1.0, 4.0)
        registry.histogram("h", buckets=(0.1, 1.0)).observe(0.5)
        for line in registry.to_prometheus(2.0).splitlines():
            if line.startswith("#"):
                continue
            assert SAMPLE_LINE.match(line), line


class TestHistogramConsistency:
    def test_buckets_are_cumulative_and_inf_equals_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        text = registry.to_prometheus(0.0)
        buckets = re.findall(r'le="([^"]+)"\} (\d+)', text)
        assert buckets == [
            ("0.1", "1"), ("1", "3"), ("10", "4"), ("+Inf", "5"),
        ]
        counts = [int(n) for _, n in buckets]
        assert counts == sorted(counts)  # cumulative, never decreasing
        count = int(re.search(r"repro_lat_count (\d+)", text).group(1))
        assert count == 5 == counts[-1]
        assert "repro_lat_sum" in text

    def test_empty_histogram_exports_zeros(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0,))
        text = registry.to_prometheus(0.0)
        assert 'le="+Inf"} 0' in text
        assert "repro_lat_count 0" in text

    def test_inconsistent_histogram_is_an_error_not_a_lie(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(1.0,))
        hist.observe(0.5)
        hist.count += 1  # simulate state corruption
        with pytest.raises(TelemetryError, match="inconsistent"):
            registry.to_prometheus(0.0)


class TestConformanceVector:
    def test_known_registry_exposition(self):
        """A small registry's full exposition, pinned byte for byte."""
        registry = MetricsRegistry()
        registry.counter("net.messages", {"node": "p0"}).inc(7)
        registry.gauge("slo.ok", {"slo": "miss-rate"}).set(1.0)
        registry.histogram("delay", buckets=(0.5, 1.0)).observe(0.25)
        assert registry.to_prometheus(3.0) == (
            "# TYPE repro_delay histogram\n"
            'repro_delay_bucket{le="0.5"} 1\n'
            'repro_delay_bucket{le="1"} 1\n'
            'repro_delay_bucket{le="+Inf"} 1\n'
            "repro_delay_sum 0.25\n"
            "repro_delay_count 1\n"
            "# TYPE repro_net_messages counter\n"
            'repro_net_messages{node="p0"} 7\n'
            "# TYPE repro_slo_ok gauge\n"
            'repro_slo_ok{slo="miss-rate"} 1\n'
        )
