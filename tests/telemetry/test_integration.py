"""End-to-end: a telemetry-enabled experiment run streams a usable trace."""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import BaselineConfig, ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.sim.trace import StreamingTracer
from repro.telemetry import (
    JsonlTraceSink,
    TelemetryHub,
    read_jsonl,
    summarize_trace,
    to_chrome_trace,
)
from repro.telemetry.chrome import iter_kinds


@pytest.fixture(scope="module")
def telemetry_run(tmp_path_factory, fitted_estimator):
    """One predictive run instrumented end-to-end, shared by the tests."""
    out = tmp_path_factory.mktemp("telemetry")
    trace_path = out / "trace.jsonl"
    sink = JsonlTraceSink(trace_path)
    hub = TelemetryHub(sink=sink)
    tracer = StreamingTracer(sink)
    config = ExperimentConfig(
        policy="predictive",
        pattern="increasing",
        max_workload_units=8.0,
        baseline=BaselineConfig(n_periods=15, noise_sigma=0.0, seed=3),
    )
    result = run_experiment(
        config, estimator=fitted_estimator, tracer=tracer, telemetry=hub
    )
    hub.close()
    return result, hub, trace_path


class TestTelemetryRun:
    def test_trace_file_written_and_parseable(self, telemetry_run):
        _, _, trace_path = telemetry_run
        records = read_jsonl(trace_path)
        assert len(records) > 50
        assert all("t" in r and "kind" in r for r in records)

    def test_trace_contains_expected_kinds(self, telemetry_run):
        _, _, trace_path = telemetry_run
        kinds = iter_kinds(read_jsonl(trace_path))
        assert kinds.get("run.meta", 0) == 1
        assert kinds.get("rm.span", 0) >= 10
        assert kinds.get("trace.job", 0) > 0
        assert kinds.get("trace.period", 0) > 0

    def test_metrics_registry_populated(self, telemetry_run):
        _, hub, _ = telemetry_run
        reg = hub.registry
        assert reg.counter("sim.events_executed").value > 0
        assert reg.counter("task.periods_completed").value == 15
        assert reg.counter("rm.steps").value >= 10
        assert reg.counter("net.messages_delivered").value > 0
        # Per-processor utilization gauges were recorded by the runner.
        snapshot = reg.snapshot(at=hub.now)
        util = [
            m for m in snapshot["metrics"] if m["name"] == "proc.utilization"
        ]
        assert len(util) >= 2
        assert all(0.0 <= m["value"] <= 1.0 for m in util)

    def test_exports_are_valid(self, telemetry_run):
        _, hub, trace_path = telemetry_run
        json.loads(hub.registry.to_json(at=hub.now))
        prom = hub.registry.to_prometheus(at=hub.now)
        assert "repro_sim_events_executed" in prom
        doc = to_chrome_trace(read_jsonl(trace_path))
        json.dumps(doc)
        assert len(doc["traceEvents"]) > 50

    def test_summary_renders(self, telemetry_run):
        _, _, trace_path = telemetry_run
        text = summarize_trace(read_jsonl(trace_path))
        assert "per-processor utilization" in text
        assert "forecast calibration" in text

    def test_forecast_calibration_attached_to_result(self, telemetry_run):
        result, _, _ = telemetry_run
        assert result.forecasts is not None
        assert result.forecasts.n >= 0
        assert result.forecasts.mape >= 0.0

    def test_telemetry_does_not_change_metrics(self, telemetry_run, fitted_estimator):
        """An instrumented run must be observationally identical."""
        result, _, _ = telemetry_run
        plain = run_experiment(
            ExperimentConfig(
                policy="predictive",
                pattern="increasing",
                max_workload_units=8.0,
                baseline=BaselineConfig(n_periods=15, noise_sigma=0.0, seed=3),
            ),
            estimator=fitted_estimator,
        )
        assert plain.metrics == result.metrics
