"""Unit tests for the order-independent campaign rollup."""

from __future__ import annotations

import pytest

from repro.errors import TelemetryError
from repro.telemetry.rollup import CampaignRollup, merge_rollups


def _payloads():
    return {
        "a/u10": dict(metrics={"missed": 0.0, "combined": 1.2},
                      slo={"passed": True, "alerts": []},
                      decision_digest="aaa"),
        "a/u20": dict(metrics={"missed": 0.1, "combined": 0.9},
                      slo={"passed": False, "alerts": [{"t": 1.0}]},
                      decision_digest="bbb"),
        "b/u10": dict(metrics={"missed": 0.05, "combined": 1.0},
                      slo=None, decision_digest="ccc"),
    }


def _build(order):
    rollup = CampaignRollup()
    payloads = _payloads()
    for tag in order:
        rollup.add_run(tag, **payloads[tag])
    return rollup


class TestOrderIndependence:
    def test_insertion_order_does_not_change_bytes(self):
        a = _build(["a/u10", "a/u20", "b/u10"])
        b = _build(["b/u10", "a/u10", "a/u20"])
        assert a.to_json() == b.to_json()

    def test_merge_order_does_not_change_bytes(self):
        parts = [_build([tag]) for tag in _payloads()]
        forward = merge_rollups(parts).to_json()
        backward = merge_rollups(reversed(parts)).to_json()
        assert forward == backward
        assert forward == _build(list(_payloads())).to_json()

    def test_identical_readd_is_a_noop(self):
        rollup = _build(["a/u10"])
        rollup.add_run("a/u10", **_payloads()["a/u10"])
        assert len(rollup) == 1

    def test_conflicting_readd_raises(self):
        rollup = _build(["a/u10"])
        with pytest.raises(TelemetryError, match="conflict"):
            rollup.add_run("a/u10", metrics={"missed": 0.9})

    def test_merge_conflict_raises(self):
        a = _build(["a/u10"])
        b = CampaignRollup()
        b.add_run("a/u10", metrics={"missed": 0.9})
        with pytest.raises(TelemetryError, match="merge conflict"):
            a.merge(b)

    def test_merge_returns_self_and_unions(self):
        a = _build(["a/u10"])
        b = _build(["a/u20", "b/u10"])
        assert a.merge(b) is a
        assert a.tags == ("a/u10", "a/u20", "b/u10")


class TestAggregates:
    def test_slo_and_miss_aggregates(self):
        agg = _build(list(_payloads())).to_dict()["aggregate"]
        assert agg["n_runs"] == 3
        assert agg["slo"] == {
            "passed": 1, "failed": 1, "absent": 1, "alert_transitions": 1,
        }
        miss = agg["missed_deadline_ratio"]
        assert miss["mean"] == pytest.approx(0.05)
        assert miss["worst"] == pytest.approx(0.1)
        assert miss["worst_tag"] == "a/u20"

    def test_long_form_miss_key_also_accepted(self):
        rollup = CampaignRollup()
        rollup.add_run("x", metrics={"missed_deadline_ratio": 0.3})
        agg = rollup.to_dict()["aggregate"]
        assert agg["missed_deadline_ratio"]["worst"] == pytest.approx(0.3)

    def test_empty_rollup(self):
        agg = CampaignRollup().to_dict()["aggregate"]
        assert agg["n_runs"] == 0
        assert agg["missed_deadline_ratio"]["mean"] is None


class TestSerialization:
    def test_write_load_roundtrip(self, tmp_path):
        rollup = _build(list(_payloads()))
        path = rollup.write(tmp_path / "rollup.json")
        loaded = CampaignRollup.load(path)
        assert loaded.to_json() == rollup.to_json()

    def test_document_without_runs_rejected(self):
        with pytest.raises(TelemetryError, match="runs"):
            CampaignRollup.from_dict({"kind": "campaign_rollup"})

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(TelemetryError, match="cannot load"):
            CampaignRollup.load(tmp_path / "nope.json")

    def test_get_returns_cell_payload(self):
        rollup = _build(["a/u10"])
        assert rollup.get("a/u10")["decision_digest"] == "aaa"
        assert rollup.get("missing") is None

    def test_render_lists_cells_and_verdicts(self):
        text = _build(list(_payloads())).render()
        assert "a/u20" in text
        assert "FAIL" in text and "PASS" in text
        assert "1 SLO pass / 1 fail" in text
