"""Unit tests for decision spans and forecast realization."""

from __future__ import annotations

from repro.telemetry.spans import DecisionSpan, ForecastEval, SpanRecorder


class TestForecastEval:
    def test_error_is_none_until_realized(self):
        f = ForecastEval(
            subtask_index=1, replica_count=2, forecast_s=0.5, threshold_s=0.6
        )
        assert f.error_s is None
        f.realized_s = 0.4
        assert f.error_s == 0.5 - 0.4

    def test_as_dict_round_trips_fields(self):
        f = ForecastEval(
            subtask_index=3,
            replica_count=2,
            forecast_s=0.5,
            threshold_s=0.6,
            accepted=True,
            realized_s=0.45,
        )
        assert f.as_dict() == {
            "subtask": 3,
            "replicas": 2,
            "forecast_s": 0.5,
            "threshold_s": 0.6,
            "accepted": True,
            "realized_s": 0.45,
        }


class TestDecisionSpan:
    def test_acted_reflects_actions(self):
        span = DecisionSpan(span_id=1, start_time=0.0)
        assert not span.acted
        span.actions.append({"kind": "replicate", "subtask": 0})
        assert span.acted

    def test_as_record_shape(self):
        span = DecisionSpan(span_id=7, start_time=2.0, end_time=2.1)
        span.replicas = {2: 3, 0: 1}
        record = span.as_record()
        assert record["kind"] == "rm.span"
        assert record["span_id"] == 7
        assert record["t"] == 2.0
        assert record["end_t"] == 2.1
        # JSON object keys must be strings, sorted for determinism.
        assert record["replicas"] == {"0": 1, "2": 3}


class TestSpanRecorder:
    def test_begin_end_cycle(self):
        rec = SpanRecorder()
        span = rec.begin(1.0)
        assert rec.current is span
        closed = rec.end(1.5)
        assert closed is span
        assert closed.end_time == 1.5
        assert rec.current is None
        assert rec.completed == [span]

    def test_end_without_begin_is_none(self):
        assert SpanRecorder().end(1.0) is None

    def test_begin_closes_dangling_span(self):
        rec = SpanRecorder()
        first = rec.begin(1.0)
        second = rec.begin(2.0)
        assert first.end_time is not None
        assert rec.completed == [first]
        assert rec.current is second

    def test_span_ids_are_unique_and_increasing(self):
        rec = SpanRecorder()
        ids = []
        for t in range(5):
            rec.begin(float(t))
            ids.append(rec.end(float(t)).span_id)
        assert ids == sorted(set(ids))

    def test_completed_list_is_bounded(self):
        rec = SpanRecorder(max_spans=3)
        for t in range(10):
            rec.begin(float(t))
            rec.end(float(t))
        assert len(rec.completed) == 3
        assert rec.completed[0].start_time == 7.0

    def test_realize_matches_subtask_and_replica_count(self):
        rec = SpanRecorder()
        f = ForecastEval(
            subtask_index=1, replica_count=2, forecast_s=0.5,
            threshold_s=0.6, accepted=True,
        )
        rec.await_realization(f)
        realized = rec.realize(subtask_index=1, replica_count=2, observed_s=0.4)
        assert realized == [f]
        assert f.realized_s == 0.4
        assert rec.pending == []

    def test_realize_drops_stale_replica_count(self):
        """A pending forecast for an old replica count is dropped, not paired."""
        rec = SpanRecorder()
        stale = ForecastEval(
            subtask_index=1, replica_count=2, forecast_s=0.5,
            threshold_s=0.6, accepted=True,
        )
        rec.await_realization(stale)
        realized = rec.realize(subtask_index=1, replica_count=3, observed_s=0.4)
        assert realized == []
        assert stale.realized_s is None
        assert rec.pending == []

    def test_realize_keeps_other_subtasks_pending(self):
        rec = SpanRecorder()
        other = ForecastEval(
            subtask_index=2, replica_count=1, forecast_s=0.3,
            threshold_s=0.4, accepted=True,
        )
        rec.await_realization(other)
        rec.realize(subtask_index=1, replica_count=2, observed_s=0.4)
        assert rec.pending == [other]

    def test_pending_list_is_bounded(self):
        rec = SpanRecorder(max_spans=3)
        for i in range(10):
            rec.await_realization(
                ForecastEval(
                    subtask_index=i, replica_count=1, forecast_s=0.1,
                    threshold_s=0.2, accepted=True,
                )
            )
        assert len(rec.pending) == 3
        assert rec.pending[0].subtask_index == 7

    def test_forecast_errors_collects_realized_only(self):
        rec = SpanRecorder()
        span = rec.begin(0.0)
        realized = ForecastEval(
            subtask_index=0, replica_count=1, forecast_s=0.5,
            threshold_s=0.6, realized_s=0.3,
        )
        unrealized = ForecastEval(
            subtask_index=1, replica_count=1, forecast_s=0.5, threshold_s=0.6
        )
        span.forecasts.extend([realized, unrealized])
        rec.end(0.1)
        assert rec.forecast_errors() == [0.5 - 0.3]
