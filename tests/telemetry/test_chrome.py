"""Unit tests for the Chrome trace exporter and trace summaries."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.chrome import (
    PID_NETWORK,
    PID_PROCESSORS,
    PID_RM,
    PID_TASK,
    forecast_stats,
    iter_kinds,
    processor_utilization,
    replica_counts,
    run_meta,
    summarize_trace,
    to_chrome_trace,
    write_chrome_trace,
)


def _job(t, processor, latency, label="sub0"):
    return {
        "t": t,
        "kind": "trace",
        "cat": "job",
        "label": label,
        "data": {"processor": processor, "latency": latency},
    }


def _span(span_id, t, end_t, replicas, actions=()):
    return {
        "t": t,
        "kind": "rm.span",
        "span_id": span_id,
        "end_t": end_t,
        "verdicts": [],
        "forecasts": [],
        "actions": list(actions),
        "replicas": replicas,
    }


SAMPLE = [
    {"t": 0.0, "kind": "run.meta", "policy": "predictive", "horizon": 10.0},
    _job(1.0, "p0", 0.4),
    _job(2.0, "p1", 0.5),
    {
        "t": 3.0,
        "kind": "trace",
        "cat": "message",
        "label": "m0",
        "data": {"total_delay": 0.1},
    },
    {
        "t": 3.5,
        "kind": "trace",
        "cat": "message",
        "label": "m1.lost",
        "data": {},
    },
    {
        "t": 4.0,
        "kind": "trace",
        "cat": "period",
        "label": "period0.complete",
        "data": {"latency": 0.8},
    },
    {"t": 4.5, "kind": "trace", "cat": "failure", "label": "p1.fail", "data": {}},
    _span(1, 5.0, 5.1, {"0": 1, "1": 2}, actions=[{"kind": "replicate"}]),
    _span(2, 6.0, 6.0, {"0": 1, "1": 3}),
    {
        "t": 7.0,
        "kind": "rm.forecast_realized",
        "period": 3,
        "subtask": 1,
        "replicas": 3,
        "forecast_s": 0.5,
        "observed_s": 0.4,
        "error_s": 0.1,
    },
    {"t": 8.0, "kind": "trace", "cat": "event", "label": "noise", "data": {}},
]


class TestToChromeTrace:
    def test_document_shape_and_json_serializable(self):
        doc = to_chrome_trace(SAMPLE)
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        json.dumps(doc)  # must not raise
        assert doc["otherData"]["policy"] == "predictive"

    def test_metadata_names_all_four_processes(self):
        doc = to_chrome_trace(SAMPLE)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        process_names = {
            e["args"]["name"] for e in meta if e["name"] == "process_name"
        }
        assert process_names == {
            "processors", "network", "resource manager", "task periods"
        }
        thread_names = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert {"p0", "p1"} <= thread_names

    def test_job_becomes_backdated_slice_on_processor_track(self):
        doc = to_chrome_trace(SAMPLE)
        [slice0] = [
            e
            for e in doc["traceEvents"]
            if e.get("cat") == "job" and e["args"].get("processor") == "p0"
        ]
        assert slice0["ph"] == "X"
        assert slice0["pid"] == PID_PROCESSORS
        # Completed at t=1.0 with latency 0.4 -> started at 0.6s = 6e5us.
        assert slice0["ts"] == pytest.approx(0.6e6)
        assert slice0["dur"] == pytest.approx(0.4e6)

    def test_message_and_loss_events(self):
        doc = to_chrome_trace(SAMPLE)
        messages = [e for e in doc["traceEvents"] if e.get("cat") == "message"]
        phases = {e["name"]: e["ph"] for e in messages}
        assert phases == {"m0": "X", "m1.lost": "i"}
        assert all(e["pid"] == PID_NETWORK for e in messages)

    def test_acted_span_is_marked(self):
        doc = to_chrome_trace(SAMPLE)
        rm_events = [
            e
            for e in doc["traceEvents"]
            if e.get("cat") == "rm" and e["pid"] == PID_RM
        ]
        names = [e["name"] for e in rm_events]
        assert "rm.step#1 (acted)" in names
        assert "rm.step#2" in names
        # A zero-duration span renders as an instant, not a slice.
        by_name = {e["name"]: e for e in rm_events}
        assert by_name["rm.step#1 (acted)"]["ph"] == "X"
        assert by_name["rm.step#2"]["ph"] == "i"

    def test_period_and_failure_events(self):
        doc = to_chrome_trace(SAMPLE)
        [period] = [e for e in doc["traceEvents"] if e.get("cat") == "period"]
        assert period["ph"] == "X"
        assert period["pid"] == PID_TASK
        [failure] = [e for e in doc["traceEvents"] if e.get("cat") == "failure"]
        assert failure["ph"] == "i"
        assert failure["pid"] == PID_PROCESSORS

    def test_event_firehose_is_excluded(self):
        doc = to_chrome_trace(SAMPLE)
        assert not any(
            e.get("name") == "noise" for e in doc["traceEvents"]
        )

    def test_write_chrome_trace_round_trips(self, tmp_path):
        target = tmp_path / "out" / "trace.chrome.json"
        written = write_chrome_trace(SAMPLE, target)
        assert written == target
        doc = json.loads(target.read_text())
        assert doc["displayTimeUnit"] == "ms"


class TestSummaries:
    def test_processor_utilization_unions_intervals(self):
        records = [
            _job(1.0, "p0", 0.5),
            _job(1.2, "p0", 0.5),  # overlaps [0.5, 1.0]: union is [0.5, 1.2]
            _job(2.0, "p1", 1.0),
        ]
        util = processor_utilization(records, horizon=10.0)
        assert util["p0"] == pytest.approx(0.7 / 10.0)
        assert util["p1"] == pytest.approx(1.0 / 10.0)

    def test_utilization_capped_at_one_and_falls_back_to_t_max(self):
        records = [_job(2.0, "p0", 5.0)]  # latency > horizon
        util = processor_utilization(records)  # horizon=None -> t_max=2.0
        assert util["p0"] == 1.0

    def test_utilization_empty_trace(self):
        assert processor_utilization([]) == {}

    def test_replica_counts(self):
        records = [
            _span(1, 1.0, 1.1, {"0": 1, "1": 2}),
            _span(2, 2.0, 2.1, {"0": 1, "1": 4}),
        ]
        stats = replica_counts(records)
        assert stats[0] == {"mean": 1.0, "max": 1.0, "final": 1.0}
        assert stats[1] == {"mean": 3.0, "max": 4.0, "final": 4.0}

    def test_forecast_stats(self):
        records = [
            {
                "t": 1.0,
                "kind": "rm.span",
                "span_id": 1,
                "end_t": 1.1,
                "forecasts": [{"subtask": 0}, {"subtask": 0}],
                "actions": [],
                "replicas": {},
            },
            {
                "t": 2.0,
                "kind": "rm.forecast_realized",
                "forecast_s": 0.5,
                "observed_s": 0.4,
                "error_s": 0.1,
            },
            {
                "t": 3.0,
                "kind": "rm.forecast_realized",
                "forecast_s": 0.3,
                "observed_s": 0.4,
                "error_s": -0.1,
            },
        ]
        stats = forecast_stats(records)
        assert stats["n_evaluations"] == 2.0
        assert stats["n_realized"] == 2.0
        assert stats["mape"] == pytest.approx((0.25 + 0.25) / 2)
        assert stats["mean_error_s"] == pytest.approx(0.0)
        assert stats["pessimism_rate"] == 0.5

    def test_forecast_stats_empty(self):
        stats = forecast_stats([])
        assert stats["n_realized"] == 0.0
        assert stats["mape"] == 0.0

    def test_run_meta_merges(self):
        records = [
            {"t": 0.0, "kind": "run.meta", "policy": "predictive"},
            {"t": 0.0, "kind": "run.meta", "seed": 7},
        ]
        assert run_meta(records) == {"policy": "predictive", "seed": 7}

    def test_summarize_trace_contains_all_sections(self):
        text = summarize_trace(SAMPLE)
        assert "run" in text
        assert "per-processor utilization" in text
        assert "per-subtask replica counts" in text
        assert "forecast calibration" in text
        assert "p0" in text
        assert "MAPE" in text

    def test_summarize_trace_empty_records_still_renders(self):
        text = summarize_trace([])
        assert "forecast calibration" in text

    def test_iter_kinds(self):
        counts = iter_kinds(SAMPLE)
        assert counts["rm.span"] == 2
        assert counts["trace.job"] == 2
        assert counts["run.meta"] == 1
