"""Unit tests for trace sinks and the JSONL reader."""

from __future__ import annotations

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry.sinks import (
    JsonlTraceSink,
    MemorySink,
    TraceSink,
    read_jsonl,
)


class TestTraceSink:
    def test_base_sink_is_a_noop(self):
        sink = TraceSink()
        sink.write({"t": 0.0, "kind": "trace"})
        sink.close()

    def test_context_manager_closes(self):
        closed = []

        class Probe(TraceSink):
            def close(self):
                closed.append(True)

        with Probe():
            pass
        assert closed == [True]


class TestMemorySink:
    def test_accumulates(self):
        sink = MemorySink()
        sink.write({"t": 1.0, "kind": "trace"})
        sink.write({"t": 2.0, "kind": "rm.span"})
        assert len(sink) == 2
        assert sink.records[1]["kind"] == "rm.span"


class TestJsonlTraceSink:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "sub" / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.write({"t": 1.0, "kind": "trace", "cat": "job", "label": "a"})
            sink.write({"t": 2.0, "kind": "rm.span", "span_id": 1})
        assert sink.written == 2
        records = read_jsonl(path)
        assert records == [
            {"t": 1.0, "kind": "trace", "cat": "job", "label": "a"},
            {"t": 2.0, "kind": "rm.span", "span_id": 1},
        ]

    def test_records_are_compact_single_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.write({"t": 1.0, "kind": "trace", "data": {"a": 1}})
        line = path.read_text().strip()
        assert "\n" not in line
        assert ", " not in line  # compact separators

    def test_flush_every_bounds_unflushed_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path, flush_every=2)
        for i in range(5):
            sink.write({"t": float(i), "kind": "trace"})
        # 4 records were flushed at the last multiple of flush_every; the
        # 5th may still sit in the buffer, but no more than that.
        on_disk = [l for l in path.read_text().splitlines() if l.strip()]
        assert len(on_disk) >= 4
        sink.close()
        assert len(read_jsonl(path)) == 5

    def test_write_after_close_is_dropped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path)
        sink.write({"t": 1.0, "kind": "trace"})
        sink.close()
        sink.write({"t": 2.0, "kind": "trace"})
        sink.close()  # idempotent
        assert len(read_jsonl(path)) == 1
        assert sink.written == 1

    def test_exception_inside_with_block_keeps_buffered_records(self, tmp_path):
        # Regression: close() used to run only on the happy path, so a
        # run crashing mid-flight lost up to flush_every buffered
        # records.  __exit__ must flush-and-close on the way out of a
        # raising block too.
        path = tmp_path / "trace.jsonl"
        with pytest.raises(RuntimeError, match="mid-run"):
            with JsonlTraceSink(path, flush_every=1000) as sink:
                for i in range(5):
                    sink.write({"t": float(i), "kind": "trace", "i": i})
                raise RuntimeError("mid-run crash")
        assert sink._fh is None  # handle released despite the exception
        records = read_jsonl(path)
        assert [r["i"] for r in records] == [0, 1, 2, 3, 4]

    def test_close_releases_handle_even_if_flush_fails(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path)
        sink.write({"t": 1.0, "kind": "trace"})
        fh = sink._fh

        class Exploding:
            def flush(self):
                raise OSError("disk full")

            def close(self):
                fh.close()

        sink._fh = Exploding()
        with pytest.raises(OSError, match="disk full"):
            sink.close()
        assert sink._fh is None
        assert fh.closed
        sink.close()  # second close is still a no-op

    def test_explicit_flush_forces_records_to_disk(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path, flush_every=1000)
        sink.write({"t": 1.0, "kind": "trace"})
        sink.flush()
        assert len(read_jsonl(path)) == 1
        sink.close()
        sink.flush()  # flushing a closed sink is a no-op

    def test_non_json_values_are_stringified(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.write({"t": 1.0, "kind": "trace", "data": {"p": object()}})
        [record] = read_jsonl(path)
        assert isinstance(record["data"]["p"], str)


class TestReadJsonl:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TelemetryError, match="cannot read"):
            read_jsonl(tmp_path / "nope.jsonl")

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"t":1.0,"kind":"trace"}\n\n{"t":2.0,"kind":"trace"}\n')
        assert len(read_jsonl(path)) == 2

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"t":1.0,"kind":"trace"}\n{"t":2.0,"kind":"tra'  # crash mid-write
        )
        records = read_jsonl(path)
        assert records == [{"t": 1.0, "kind": "trace"}]

    def test_malformed_middle_line_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"t":1.0,"kind":"trace"}\nnot json at all\n{"t":2.0,"kind":"trace"}\n'
        )
        with pytest.raises(TelemetryError, match="malformed trace line"):
            read_jsonl(path)

    def test_reads_what_json_dumps_wrote(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        records_in = [{"t": float(i), "kind": "trace", "i": i} for i in range(10)]
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records_in)
        )
        assert read_jsonl(path) == records_in
