"""Unit tests for the telemetry hub facade.

The hub takes duck-typed simulation objects, so these tests drive it
with lightweight stand-ins shaped like ``PeriodRecord``,
``MonitorReport``, and ``RMEvent`` instead of building a full system.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.telemetry import (
    NULL_TELEMETRY,
    MemorySink,
    NullTelemetry,
    TelemetryHub,
)


def _stage(subtask_index, replica_count, stage_latency):
    return SimpleNamespace(
        subtask_index=subtask_index,
        replica_count=replica_count,
        stage_latency=stage_latency,
    )


def _period(period_index, stages, missed=False, latency=0.5):
    return SimpleNamespace(
        period_index=period_index, stages=stages, missed=missed, latency=latency
    )


def _verdict(subtask_index, action):
    return SimpleNamespace(
        subtask_index=subtask_index,
        action=SimpleNamespace(value=action),
        mean_stage_latency=0.1,
        budget=0.2,
        slack=0.05,
        overdue=False,
    )


def _event(
    outcomes=(), shutdowns=(), recoveries=(), placement=None, total_replicas=0
):
    return SimpleNamespace(
        outcomes=list(outcomes),
        shutdowns=list(shutdowns),
        recoveries=list(recoveries),
        placement=placement or {},
        total_replicas=total_replicas,
    )


class TestHubBasics:
    def test_enabled_flags(self):
        assert TelemetryHub().enabled
        assert not NullTelemetry().enabled
        assert not NULL_TELEMETRY.enabled

    def test_now_tracks_largest_seen_time(self):
        hub = TelemetryHub()
        hub.on_engine_run(5.0, 10)
        hub.on_message_lost(3.0)  # earlier time must not move `now` back
        assert hub.now == 5.0

    def test_emit_without_sink_is_safe(self):
        TelemetryHub().emit({"t": 0.0, "kind": "trace"})

    def test_set_run_meta_streams_record(self):
        sink = MemorySink()
        hub = TelemetryHub(sink=sink)
        hub.set_run_meta(policy="predictive", seed=7)
        assert sink.records == [
            {"t": 0.0, "kind": "run.meta", "policy": "predictive", "seed": 7}
        ]

    def test_close_flushes_dangling_span(self):
        sink = MemorySink()
        hub = TelemetryHub(sink=sink)
        hub.begin_decision(1.0)
        hub.close()
        assert [r["kind"] for r in sink.records] == ["rm.span"]


class TestInstrumentationCallbacks:
    def test_on_engine_run(self):
        hub = TelemetryHub()
        hub.on_engine_run(2.0, 100)
        hub.on_engine_run(4.0, 50)
        assert hub.registry.counter("sim.events_executed").value == 150
        assert hub.registry.gauge("sim.time").value == 4.0

    def test_on_job_complete_labels_by_processor(self):
        hub = TelemetryHub()
        hub.on_job_complete(1.0, "p0", "exec", 0.1, 0.2)
        hub.on_job_complete(2.0, "p0", "exec", 0.1, 0.3)
        hub.on_job_complete(2.0, "p1", "exec", 0.1, 0.4)
        assert (
            hub.registry.counter("proc.jobs_completed", {"processor": "p0"}).value
            == 2
        )
        hist = hub.registry.histogram(
            "proc.job_latency_seconds", {"processor": "p1"}
        )
        assert hist.count == 1

    def test_network_callbacks(self):
        hub = TelemetryHub()
        hub.on_message_delivered(1.0, 512.0, 0.01, 0.02)
        hub.on_message_lost(1.5)
        assert hub.registry.counter("net.messages_delivered").value == 1
        assert hub.registry.counter("net.bytes_delivered").value == 512.0
        assert hub.registry.counter("net.messages_lost").value == 1
        assert hub.registry.histogram("net.message_delay_seconds").count == 1

    def test_on_period_complete_counts_and_misses(self):
        hub = TelemetryHub()
        hub.on_period_complete(1.0, _period(0, [], missed=False))
        hub.on_period_complete(2.0, _period(1, [], missed=True))
        assert hub.registry.counter("task.periods_completed").value == 2
        assert hub.registry.counter("task.periods_missed").value == 1
        assert hub.registry.histogram("task.period_latency_seconds").count == 2

    def test_on_period_abort(self):
        hub = TelemetryHub()
        hub.on_period_abort(1.0, _period(0, []))
        assert hub.registry.counter("task.periods_aborted").value == 1
        assert hub.registry.counter("task.periods_missed").value == 1

    def test_on_period_abort_advances_now(self):
        hub = TelemetryHub()
        hub.on_period_abort(7.5, _period(0, []))
        assert hub.now == 7.5

    def test_on_message_dropped(self):
        hub = TelemetryHub()
        hub.on_message_dropped(2.0)
        hub.on_message_dropped(3.0)
        assert hub.registry.counter("net.messages_dropped").value == 2
        assert hub.now == 3.0

    def test_on_cluster_utilization(self):
        hub = TelemetryHub()
        hub.on_cluster_utilization(1.0, 0.4, "p2")
        hub.on_cluster_utilization(2.0, 0.3, "p2")
        hub.on_cluster_utilization(3.0, 0.5, "p0")
        assert hub.registry.gauge("cluster.min_utilization").value == 0.5
        assert (
            hub.registry.counter(
                "cluster.min_utilization_samples", {"processor": "p2"}
            ).value
            == 2
        )
        assert (
            hub.registry.counter(
                "cluster.min_utilization_samples", {"processor": "p0"}
            ).value
            == 1
        )


class TestDecisionCycle:
    def test_full_cycle_builds_span(self):
        sink = MemorySink()
        hub = TelemetryHub(sink=sink)
        hub.begin_decision(1.0)
        hub.on_monitor_report(
            1.0,
            SimpleNamespace(verdicts=[_verdict(0, "replicate"), _verdict(1, "ok")]),
        )
        hub.on_forecast(1.0, 0, 1, forecast_s=0.5, threshold_s=0.4, accepted=False)
        hub.on_forecast(1.0, 0, 2, forecast_s=0.3, threshold_s=0.4, accepted=True)
        event = _event(
            outcomes=[
                SimpleNamespace(
                    changed=True,
                    subtask_index=0,
                    added_processors=["p2"],
                    success=True,
                    forecast_latency=0.3,
                )
            ],
            placement={0: ["p0", "p2"], 1: ["p1"]},
            total_replicas=3,
        )
        span = hub.end_decision(1.1, event)
        assert span is not None
        assert span.acted
        assert len(span.verdicts) == 2
        assert len(span.forecasts) == 2
        assert span.replicas == {0: 2, 1: 1}
        assert hub.registry.counter("rm.steps").value == 1
        assert hub.registry.counter("rm.actions").value == 1
        assert hub.registry.counter("rm.verdicts", {"action": "replicate"}).value == 1
        assert hub.registry.counter("rm.forecast_evaluations").value == 2
        assert hub.registry.time_gauge("rm.replicas_total").value == 3.0
        [record] = sink.records
        assert record["kind"] == "rm.span"
        assert record["actions"][0]["kind"] == "replicate"

    def test_shutdown_and_recovery_actions(self):
        hub = TelemetryHub()
        hub.begin_decision(1.0)
        event = _event(
            shutdowns=[(1, "p3")],
            recoveries=[(0, "p1", None)],
            placement={0: ["p0"], 1: ["p2"]},
            total_replicas=2,
        )
        span = hub.end_decision(1.1, event)
        kinds = [a["kind"] for a in span.actions]
        assert kinds == ["shutdown", "recovery"]
        # A failed replica with no spare target is recorded as evicted.
        assert span.actions[1]["processors"] == ["p1", "evicted"]

    def test_quiet_cycle_does_not_count_as_action(self):
        hub = TelemetryHub()
        hub.begin_decision(1.0)
        span = hub.end_decision(1.1, _event(placement={0: ["p0"]}, total_replicas=1))
        assert not span.acted
        assert hub.registry.counter("rm.actions").value == 0

    def test_end_decision_without_begin_returns_none(self):
        hub = TelemetryHub()
        assert hub.end_decision(1.0, _event()) is None


class TestForecastRealization:
    def test_accepted_forecast_realized_by_period_completion(self):
        sink = MemorySink()
        hub = TelemetryHub(sink=sink)
        hub.begin_decision(1.0)
        hub.on_forecast(1.0, 0, 2, forecast_s=0.5, threshold_s=0.6, accepted=True)
        hub.end_decision(1.1, _event(placement={0: ["p0", "p1"]}, total_replicas=2))
        hub.on_period_complete(2.0, _period(3, [_stage(0, 2, 0.4)]))
        realized = [
            r for r in sink.records if r["kind"] == "rm.forecast_realized"
        ]
        assert len(realized) == 1
        assert realized[0]["error_s"] == pytest.approx(0.1)
        assert realized[0]["period"] == 3
        assert hub.registry.histogram("rm.forecast_error_seconds").count == 1

    def test_rejected_forecast_is_not_pending(self):
        sink = MemorySink()
        hub = TelemetryHub(sink=sink)
        hub.begin_decision(1.0)
        hub.on_forecast(1.0, 0, 2, forecast_s=0.9, threshold_s=0.6, accepted=False)
        hub.end_decision(1.1, _event(placement={}, total_replicas=0))
        hub.on_period_complete(2.0, _period(3, [_stage(0, 2, 0.4)]))
        assert not any(
            r["kind"] == "rm.forecast_realized" for r in sink.records
        )

    def test_stage_without_latency_is_skipped(self):
        hub = TelemetryHub()
        hub.begin_decision(1.0)
        hub.on_forecast(1.0, 0, 2, forecast_s=0.5, threshold_s=0.6, accepted=True)
        hub.end_decision(1.1, _event(placement={}, total_replicas=0))
        hub.on_period_complete(2.0, _period(3, [_stage(0, 2, None)]))
        assert len(hub.spans.pending) == 1  # still awaiting a real latency


class TestArmedConsumers:
    def test_arm_slo_feeds_periods_messages_and_aborts(self):
        hub = TelemetryHub()
        engine = hub.arm_slo()
        assert hub.slo is engine
        hub.on_period_complete(1.0, _period(0, [], missed=False))
        hub.on_period_complete(2.0, _period(1, [], missed=True))
        hub.on_period_abort(3.0, _period(2, []))
        hub.on_message_delivered(3.0, 64.0, 0.0, 0.01)
        hub.on_message_dropped(3.5)
        report = engine.report()
        by_name = {v.rule.name: v for v in report.verdicts}
        # 3 periods, 2 bad (the miss and the abort).
        assert by_name["deadline-miss-rate"].n_events == 3
        assert by_name["deadline-miss-rate"].observed == pytest.approx(2 / 3)
        # 2 messages, 1 dropped.
        assert by_name["message-loss"].observed == pytest.approx(0.5)

    def test_arm_slo_realizes_forecast_calibration(self):
        hub = TelemetryHub()
        engine = hub.arm_slo()
        hub.begin_decision(1.0)
        hub.on_forecast(1.0, 0, 2, forecast_s=0.8, threshold_s=0.9,
                        accepted=True)
        hub.end_decision(1.1, _event(placement={0: ["p0", "p1"]},
                                     total_replicas=2))
        # Realized 0.4 vs forecast 0.8: APE 1.0 > the 0.5 tolerance.
        hub.on_period_complete(2.0, _period(3, [_stage(0, 2, 0.4)]))
        by_name = {v.rule.name: v for v in engine.report().verdicts}
        assert by_name["forecast-calibration"].n_events == 1
        assert by_name["forecast-calibration"].observed == 1.0

    def test_end_decision_runs_an_evaluation(self):
        hub = TelemetryHub()
        hub.arm_slo()
        hub.begin_decision(1.0)
        hub.on_period_complete(1.0, _period(0, [], missed=True))
        hub.end_decision(1.1, _event(placement={}, total_replicas=0))
        assert (
            hub.registry.gauge(
                "slo.observed", {"slo": "deadline-miss-rate"}
            ).value
            == 1.0
        )

    def test_alert_records_reach_the_sink(self):
        sink = MemorySink()
        hub = TelemetryHub(sink=sink)
        hub.arm_slo()
        for i in range(4):
            hub.begin_decision(float(i))
            hub.on_period_complete(float(i), _period(i, [], missed=True))
            hub.end_decision(float(i) + 0.1, _event(placement={},
                                                    total_replicas=0))
        alerts = [r for r in sink.records if r["kind"] == "slo.alert"]
        assert alerts and alerts[0]["state"] == "firing"

    def test_arm_profiler_counts_messages(self):
        hub = TelemetryHub()
        profiler = hub.arm_profiler()
        assert hub.profiler is profiler
        hub.on_message_delivered(1.0, 64.0, 0.0, 0.01)
        hub.on_message_dropped(2.0)
        [stat] = profiler.stats()
        assert stat.name == "net.message"
        assert stat.events == 2

    def test_unarmed_hub_has_no_consumers(self):
        hub = TelemetryHub()
        assert hub.slo is None
        assert hub.profiler is None


class TestNullTelemetry:
    def test_all_callbacks_are_noops(self):
        null = NullTelemetry()
        null.emit({"t": 0.0, "kind": "trace"})
        null.on_engine_run(1.0, 5)
        null.on_job_complete(1.0, "p0", "exec", 0.1, 0.2)
        null.on_message_delivered(1.0, 10.0, 0.0, 0.0)
        null.on_message_lost(1.0)
        null.on_message_dropped(1.0)
        null.on_cluster_utilization(1.0, 0.5, "p0")
        null.on_period_complete(1.0, _period(0, []))
        null.on_period_abort(1.0, _period(0, []))
        assert len(null.registry) == 0
        assert null.now == 0.0
        assert null.slo is None and null.profiler is None
