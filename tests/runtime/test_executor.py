"""Integration-grade unit tests for the periodic task executor."""

from __future__ import annotations

import pytest

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.topology import build_system
from repro.errors import ConfigurationError
from repro.runtime.executor import ExecutorConfig, PeriodicTaskExecutor
from repro.tasks.state import ReplicaAssignment


def make_executor(
    workload=lambda c: 1000.0,
    n_processors=6,
    noise=0.0,
    drop_factor=2.0,
    seed=1,
):
    system = build_system(n_processors=n_processors, seed=seed)
    task = aaw_task(noise_sigma=noise)
    placement = default_initial_placement(task, [p.name for p in system.processors])
    assignment = ReplicaAssignment(task, placement)
    executor = PeriodicTaskExecutor(
        system,
        task,
        assignment,
        workload=workload,
        config=ExecutorConfig(drop_factor=drop_factor),
    )
    return system, task, assignment, executor


class TestBasicExecution:
    def test_period_completes_with_all_stages(self):
        system, task, _, executor = make_executor()
        executor.start(1)
        system.engine.run_until(2.0)
        record = executor.records[0]
        assert record.completed
        assert len(record.stages) == 5
        assert [s.subtask_index for s in record.stages] == [1, 2, 3, 4, 5]

    def test_latency_matches_analytic_chain(self):
        """Noise-free, idle system: latency = sum of demands + wire time."""
        system, task, _, executor = make_executor(workload=lambda c: 1000.0)
        executor.start(1)
        system.engine.run_until(2.0)
        record = executor.records[0]
        exec_total = sum(
            s.service.mean_demand_seconds(1000.0) for s in task.subtasks
        )
        wire_total = sum(
            (m.wire_payload_bytes(1000.0, 1000.0) + 1500.0) * 8 / 100e6
            for m in task.messages
        )
        assert record.latency == pytest.approx(exec_total + wire_total, rel=1e-6)

    def test_periodic_releases(self):
        system, _, _, executor = make_executor(workload=lambda c: 500.0)
        executor.start(5)
        system.engine.run_until(6.0)
        assert len(executor.records) == 5
        for c, record in enumerate(executor.records):
            assert record.release_time == pytest.approx(float(c))
            assert record.period_index == c

    def test_workload_callable_drives_data_size(self):
        system, _, _, executor = make_executor(workload=lambda c: 100.0 * (c + 1))
        executor.start(3)
        system.engine.run_until(4.0)
        assert [r.d_tracks for r in executor.records] == [100.0, 200.0, 300.0]

    def test_zero_workload_period_trivially_completes(self):
        system, _, _, executor = make_executor(workload=lambda c: 0.0)
        executor.start(1)
        system.engine.run_until(1.0)
        record = executor.records[0]
        assert record.completed
        assert record.latency == 0.0
        assert not record.missed

    def test_negative_workload_rejected(self):
        system, _, _, executor = make_executor(workload=lambda c: -1.0)
        executor.start(1)
        with pytest.raises(ConfigurationError):
            system.engine.run_until(1.0)

    def test_completion_callback_fires(self):
        done = []
        system, task, assignment, _ = make_executor()
        executor = PeriodicTaskExecutor(
            system, task, assignment,
            workload=lambda c: 500.0,
            on_period_complete=done.append,
        )
        executor.start(2)
        system.engine.run_until(3.0)
        assert len(done) == 2

    def test_current_period_tracking(self):
        system, _, _, executor = make_executor(workload=lambda c: 100.0 * (c + 1))
        executor.start(3)
        system.engine.run_until(2.5)
        assert executor.current_period_index == 2
        assert executor.current_d_tracks == 300.0


class TestReplication:
    def test_replicated_stage_splits_work(self):
        system, task, assignment, executor = make_executor(
            workload=lambda c: 6000.0
        )
        # Unreplicated first:
        executor.start(1)
        system.engine.run_until(3.0)
        unreplicated = executor.records[0].stage(3).exec_latency
        # Now with 3 replicas of subtask 3:
        system2, task2, assignment2, executor2 = make_executor(
            workload=lambda c: 6000.0
        )
        assignment2.add_replica(3, "p6")
        assignment2.add_replica(3, "p1")
        executor2.start(1)
        system2.engine.run_until(3.0)
        replicated = executor2.records[0].stage(3).exec_latency
        truth = task.subtask(3).service
        assert unreplicated == pytest.approx(
            truth.mean_demand_seconds(6000.0), rel=1e-6
        )
        assert replicated == pytest.approx(
            truth.mean_demand_seconds(2000.0), rel=0.05
        )
        assert replicated < unreplicated / 2

    def test_stage_records_replica_count(self):
        system, _, assignment, executor = make_executor()
        assignment.add_replica(3, "p6")
        executor.start(1)
        system.engine.run_until(2.0)
        assert executor.records[0].stage(3).replica_count == 2

    def test_message_burst_per_receiving_replica(self):
        system, _, assignment, executor = make_executor(workload=lambda c: 2000.0)
        assignment.add_replica(3, "p6")
        assignment.add_replica(3, "p1")
        executor.start(1)
        system.engine.run_until(2.0)
        # 4 message stages; the burst into stage 3 has 3 messages:
        # 1 + 3 + 1 + 1 = 6 in total.
        assert system.network.delivered_count == 6

    def test_replica_snapshot_taken_at_stage_start(self):
        """Replicas added mid-period affect only later stages."""
        system, _, assignment, executor = make_executor(workload=lambda c: 3000.0)
        executor.start(1)
        # Add a replica for subtask 5 while stage 1 runs.
        system.engine.schedule(0.001, assignment.add_replica, 5, "p6")
        system.engine.run_until(3.0)
        assert executor.records[0].stage(5).replica_count == 2


class TestOverloadShedding:
    def test_hopeless_period_aborted(self):
        # 20000 tracks unreplicated: Filter alone needs ~13 s.
        system, _, _, executor = make_executor(
            workload=lambda c: 20000.0, drop_factor=2.0
        )
        executor.start(1)
        system.engine.run_until(5.0)
        record = executor.records[0]
        assert record.aborted
        assert record.missed
        assert not record.completed

    def test_abort_frees_processors(self):
        system, _, _, executor = make_executor(
            workload=lambda c: 20000.0, drop_factor=1.0
        )
        executor.start(1)
        system.engine.run_until(5.0)
        assert all(not p.is_busy for p in system.processors)

    def test_in_flight_count(self):
        system, _, _, executor = make_executor(workload=lambda c: 20000.0)
        executor.start(1)
        system.engine.run_until(0.5)
        assert executor.in_flight_count == 1
        system.engine.run_until(5.0)
        assert executor.in_flight_count == 0

    def test_drop_factor_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            ExecutorConfig(drop_factor=0.5)


class TestMonitoringViews:
    def test_overdue_subtasks_detects_stuck_stage(self):
        system, _, _, executor = make_executor(
            workload=lambda c: 20000.0, drop_factor=5.0
        )
        executor.start(1)
        system.engine.run_until(1.5)  # deadline (0.99) passed, stage 3 stuck
        overdue = executor.overdue_subtasks()
        assert 3 in overdue

    def test_no_overdue_when_on_time(self):
        system, _, _, executor = make_executor(workload=lambda c: 500.0)
        executor.start(1)
        system.engine.run_until(1.5)
        assert executor.overdue_subtasks() == set()

    def test_completed_records_view(self):
        system, _, _, executor = make_executor(workload=lambda c: 500.0)
        executor.start(3)
        system.engine.run_until(2.5)
        # Two finished, one likely in flight or finished.
        assert len(executor.completed_records()) >= 2


class TestDeterminism:
    def test_same_seed_same_timeline(self):
        def run():
            system, _, _, executor = make_executor(noise=0.1, seed=9)
            executor.start(5)
            system.engine.run_until(7.0)
            return [r.latency for r in executor.records]

        assert run() == run()

    def test_different_seed_differs(self):
        def run(seed):
            system, _, _, executor = make_executor(noise=0.1, seed=seed)
            executor.start(5)
            system.engine.run_until(7.0)
            return [r.latency for r in executor.records]

        assert run(1) != run(2)
