"""Unit tests for period/stage records."""

from __future__ import annotations

import pytest

from repro.runtime.records import PeriodRecord, StageRecord


class TestStageRecord:
    def test_latencies_none_until_finished(self):
        stage = StageRecord(subtask_index=1, replica_count=1, start_time=1.0)
        assert stage.exec_latency is None
        assert stage.stage_latency is None

    def test_exec_latency(self):
        stage = StageRecord(
            subtask_index=1, replica_count=2, start_time=1.0, exec_finish_time=1.5
        )
        assert stage.exec_latency == pytest.approx(0.5)

    def test_stage_latency_includes_message_in(self):
        stage = StageRecord(
            subtask_index=2,
            replica_count=1,
            start_time=1.0,
            exec_finish_time=1.5,
            message_in_delay=0.2,
        )
        assert stage.stage_latency == pytest.approx(0.7)


class TestPeriodRecord:
    def make(self, **kwargs):
        defaults = dict(
            period_index=0, release_time=10.0, d_tracks=100.0, deadline=0.99
        )
        defaults.update(kwargs)
        return PeriodRecord(**defaults)

    def test_in_flight_state(self):
        record = self.make()
        assert not record.completed
        assert record.latency is None
        assert not record.missed

    def test_met_deadline(self):
        record = self.make(completion_time=10.5)
        assert record.completed
        assert record.latency == pytest.approx(0.5)
        assert not record.missed

    def test_missed_deadline(self):
        record = self.make(completion_time=11.5)
        assert record.missed

    def test_boundary_exactly_at_deadline_is_met(self):
        record = self.make(deadline=0.5, completion_time=10.5)
        assert not record.missed

    def test_aborted_counts_missed(self):
        record = self.make(aborted=True)
        assert record.missed
        assert not record.completed

    def test_overdue_detection(self):
        record = self.make()
        assert not record.overdue_at(10.5)
        assert record.overdue_at(11.5)

    def test_completed_record_not_overdue(self):
        record = self.make(completion_time=10.5)
        assert not record.overdue_at(20.0)

    def test_aborted_record_not_overdue(self):
        record = self.make(aborted=True)
        assert not record.overdue_at(20.0)

    def test_stage_lookup(self):
        record = self.make()
        record.stages.append(
            StageRecord(subtask_index=1, replica_count=1, start_time=10.0)
        )
        assert record.stage(1) is not None
        assert record.stage(2) is None
