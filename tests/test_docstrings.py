"""Meta-test: every public item in the library carries a docstring.

"Doc comments on every public item" is a deliverable, so it is
enforced mechanically: every module under ``repro``, every public class
and function defined in those modules, and every public method of those
classes must have a non-trivial docstring.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


MODULES = sorted(_iter_modules())


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and len(module.__doc__.strip()) > 10, (
        f"{module_name} lacks a module docstring"
    )


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their definition site
        yield name, obj


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in _public_members(module):
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module_name}: undocumented public items: {undocumented}"
    )
