"""Unit tests for the resilience scorecard math."""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest

from repro.chaos.faults import Injection
from repro.chaos.scorecard import ResilienceScorecard, compute_scorecard
from repro.errors import ChaosError
from repro.telemetry.metrics import MetricsRegistry


@dataclass(frozen=True)
class Record:
    """Minimal duck-typed period record for the scorecard."""

    release_time: float
    deadline: float = 1.0
    completed: bool = True
    missed: bool = False
    completion_time: float | None = None


def on_time(release: float, completion: float) -> Record:
    return Record(release_time=release, completion_time=completion)


def late(release: float, completion: float | None = None) -> Record:
    return Record(release_time=release, missed=True, completion_time=completion)


class TestBasics:
    def test_bad_horizon_rejected(self):
        with pytest.raises(ChaosError):
            compute_scorecard([], [], horizon_s=0.0)

    def test_clean_run_is_perfect(self):
        records = [on_time(float(c), c + 0.5) for c in range(10)]
        card = compute_scorecard(records, [], horizon_s=10.0, rm_actions=4)
        assert card.availability == 1.0
        assert card.miss_windows == 0
        assert card.miss_window_s == 0.0
        assert card.mttr_s is None
        assert card.faults_injected == 0
        assert card.actions_per_fault == 4.0  # per-run when no faults

    def test_empty_records_mean_full_availability(self):
        card = compute_scorecard([], [], horizon_s=5.0)
        assert card.availability == 1.0
        assert card.periods_released == 0

    def test_records_released_past_horizon_ignored(self):
        records = [on_time(0.0, 0.5), late(99.0)]
        card = compute_scorecard(records, [], horizon_s=10.0)
        assert card.periods_released == 1
        assert card.availability == 1.0


class TestMissWindows:
    def test_window_spans_deadline_to_next_on_time_completion(self):
        records = [
            on_time(0.0, 0.5),
            late(1.0),          # window opens at 1.0 + 1.0 = 2.0
            late(2.0),
            on_time(3.0, 3.6),  # closes at 3.6
            on_time(4.0, 4.5),
        ]
        card = compute_scorecard(records, [], horizon_s=10.0)
        assert card.miss_windows == 1
        assert card.miss_window_s == pytest.approx(1.6)
        assert card.miss_window_ratio == pytest.approx(0.16)

    def test_two_separate_windows(self):
        records = [
            late(0.0),
            on_time(1.0, 1.5),  # window 1: 1.0 .. 1.5
            late(2.0),
            on_time(3.0, 3.5),  # window 2: 3.0 .. 3.5
        ]
        card = compute_scorecard(records, [], horizon_s=10.0)
        assert card.miss_windows == 2
        assert card.miss_window_s == pytest.approx(1.0)

    def test_open_window_extends_to_horizon(self):
        records = [on_time(0.0, 0.5), late(1.0)]
        card = compute_scorecard(records, [], horizon_s=10.0)
        assert card.miss_windows == 1
        assert card.miss_window_s == pytest.approx(8.0)  # 2.0 .. 10.0

    def test_availability_counts_on_time_fraction(self):
        records = [on_time(0.0, 0.5), late(1.0), late(2.0), on_time(3.0, 3.5)]
        card = compute_scorecard(records, [], horizon_s=10.0)
        assert card.availability == 0.5
        assert card.periods_on_time == 2


class TestMTTR:
    def fault(self, time: float, kind: str = "crash") -> Injection:
        return Injection(time=time, kind=kind, target="p1", duration_s=1.0)

    def test_disruptive_fault_recovery_time(self):
        records = [late(2.0), on_time(3.0, 3.5)]
        card = compute_scorecard(records, [self.fault(1.5)], horizon_s=10.0)
        assert card.disrupted_faults == 1
        assert card.unrecovered_faults == 0
        assert card.mttr_s == pytest.approx(2.0)  # 1.5 -> 3.5

    def test_benign_fault_does_not_count(self):
        records = [on_time(2.0, 2.5), on_time(3.0, 3.5)]
        card = compute_scorecard(records, [self.fault(1.5)], horizon_s=10.0)
        assert card.disrupted_faults == 0
        assert card.mttr_s is None

    def test_unrecovered_fault_contributes_remaining_horizon(self):
        records = [late(2.0), late(3.0)]
        card = compute_scorecard(records, [self.fault(1.0)], horizon_s=10.0)
        assert card.disrupted_faults == 1
        assert card.unrecovered_faults == 1
        assert card.mttr_s == pytest.approx(9.0)  # 1.0 -> horizon

    def test_fault_past_horizon_ignored(self):
        card = compute_scorecard([late(2.0)], [self.fault(50.0)], horizon_s=10.0)
        assert card.faults_injected == 0
        assert card.disrupted_faults == 0

    def test_actions_per_fault(self):
        records = [late(2.0), on_time(3.0, 3.5)]
        faults = [self.fault(1.0), self.fault(5.0, kind="loss_spike")]
        card = compute_scorecard(
            records, faults, horizon_s=10.0, rm_actions=6
        )
        assert card.actions_per_fault == 3.0
        assert card.faults_by_kind == {"crash": 1, "loss_spike": 1}


class TestExport:
    def card(self) -> ResilienceScorecard:
        return compute_scorecard(
            [late(2.0), on_time(3.0, 3.5)],
            [Injection(time=1.0, kind="crash", target="p1", duration_s=1.0)],
            horizon_s=10.0,
            rm_actions=5,
        )

    def test_as_dict_round_trips_through_json(self):
        payload = json.loads(json.dumps(self.card().as_dict()))
        assert payload["availability"] == 0.5
        assert payload["mttr_s"] == pytest.approx(2.5)
        assert payload["faults_by_kind"] == {"crash": 1}

    def test_to_registry_exports_chaos_gauges(self):
        registry = MetricsRegistry()
        self.card().to_registry(registry)
        snapshot = {
            m["name"]: m["value"] for m in registry.snapshot(at=0.0)["metrics"]
        }
        assert snapshot["chaos.availability"] == 0.5
        assert snapshot["chaos.faults_total"] == 1
        assert snapshot["chaos.mttr_seconds"] == pytest.approx(2.5)
        assert snapshot["chaos.actions_per_fault"] == 5.0

    def test_write_json(self, tmp_path):
        target = self.card().write_json(tmp_path / "sub" / "card.json")
        assert json.loads(target.read_text())["miss_windows"] == 1
