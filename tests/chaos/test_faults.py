"""Unit tests for fault specs: validation and compile determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos.faults import (
    CORRUPTION_VALUES,
    ClockDriftSpec,
    CorrelatedOutageSpec,
    CorruptUtilizationSpec,
    CrashRecoverySpec,
    DelaySpikeSpec,
    EstimatorDriftSpec,
    FaultSpec,
    LossSpikeSpec,
    PartitionSpec,
    SensorDropoutSpec,
    StaleUtilizationSpec,
)
from repro.errors import ChaosError

NAMES = ("p1", "p2", "p3")

ALL_SPECS = (
    CrashRecoverySpec(),
    CorrelatedOutageSpec(),
    LossSpikeSpec(),
    PartitionSpec(),
    DelaySpikeSpec(),
    ClockDriftSpec(),
    SensorDropoutSpec(),
    StaleUtilizationSpec(),
    CorruptUtilizationSpec(),
    EstimatorDriftSpec(),
)


class TestValidation:
    def test_bad_parameters_rejected(self):
        cases = [
            lambda: CrashRecoverySpec(mtbf_s=0.0),
            lambda: CrashRecoverySpec(mttr_s=-1.0),
            lambda: CorrelatedOutageSpec(group_size=0),
            lambda: CorrelatedOutageSpec(outage_s=0.0),
            lambda: LossSpikeSpec(loss_probability=0.0),
            lambda: LossSpikeSpec(loss_probability=1.0),
            lambda: DelaySpikeSpec(bandwidth_factor=0.0),
            lambda: DelaySpikeSpec(bandwidth_factor=1.0),
            lambda: ClockDriftSpec(max_step_s=0.0),
            lambda: SensorDropoutSpec(duration_s=0.0),
            lambda: StaleUtilizationSpec(interval_s=-2.0),
            lambda: CorruptUtilizationSpec(mode="garbage"),
            lambda: EstimatorDriftSpec(start_s=-1.0),
            lambda: EstimatorDriftSpec(bias_factor=0.0),
            lambda: EstimatorDriftSpec(noise_sigma=-0.5),
        ]
        for make in cases:
            with pytest.raises(ChaosError):
                make()

    def test_corruption_modes_are_the_catalogue(self):
        for mode in CORRUPTION_VALUES:
            CorruptUtilizationSpec(mode=mode)  # all accepted

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: type(s).__name__)
    def test_specs_satisfy_the_protocol(self, spec):
        assert isinstance(spec, FaultSpec)


class TestCompile:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: type(s).__name__)
    def test_compile_is_deterministic_per_seed(self, spec):
        a = spec.compile(np.random.default_rng(42), 120.0, NAMES)
        b = spec.compile(np.random.default_rng(42), 120.0, NAMES)
        assert a == b

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: type(s).__name__)
    def test_injections_fall_inside_horizon(self, spec):
        for injection in spec.compile(np.random.default_rng(7), 90.0, NAMES):
            assert 0.0 <= injection.time < 90.0

    def test_crash_targets_restricted_to_named_processors(self):
        spec = CrashRecoverySpec(mtbf_s=3.0, mttr_s=1.0, processors=("p2",))
        injections = spec.compile(np.random.default_rng(0), 200.0, NAMES)
        assert injections
        assert {i.target for i in injections} == {"p2"}

    def test_crash_windows_of_one_target_never_overlap(self):
        spec = CrashRecoverySpec(mtbf_s=4.0, mttr_s=2.0)
        injections = spec.compile(np.random.default_rng(3), 300.0, NAMES)
        for name in NAMES:
            ours = sorted(
                (i for i in injections if i.target == name),
                key=lambda i: i.time,
            )
            for first, second in zip(ours, ours[1:]):
                assert first.time + first.duration_s <= second.time

    def test_outages_crash_groups_simultaneously(self):
        spec = CorrelatedOutageSpec(interval_s=10.0, group_size=2, outage_s=3.0)
        injections = spec.compile(np.random.default_rng(1), 100.0, NAMES)
        by_time: dict[float, set[str]] = {}
        for injection in injections:
            by_time.setdefault(injection.time, set()).add(injection.target)
        assert by_time
        for group in by_time.values():
            assert len(group) == 2

    def test_outage_group_capped_at_cluster_size(self):
        spec = CorrelatedOutageSpec(interval_s=5.0, group_size=99, outage_s=1.0)
        injections = spec.compile(np.random.default_rng(2), 50.0, ("p1", "p2"))
        by_time: dict[float, set[str]] = {}
        for injection in injections:
            by_time.setdefault(injection.time, set()).add(injection.target)
        for group in by_time.values():
            assert group == {"p1", "p2"}

    def test_estimator_drift_is_one_window(self):
        spec = EstimatorDriftSpec(start_s=10.0, bias_factor=0.4)
        injections = spec.compile(np.random.default_rng(0), 60.0, NAMES)
        assert len(injections) == 1
        (injection,) = injections
        assert injection.time == 10.0
        assert injection.duration_s == 50.0  # runs to the horizon
        assert injection.value == 0.4

    def test_estimator_drift_past_horizon_is_empty(self):
        spec = EstimatorDriftSpec(start_s=100.0)
        assert spec.compile(np.random.default_rng(0), 60.0, NAMES) == []

    def test_estimator_noise_draw_is_seed_stable(self):
        spec = EstimatorDriftSpec(start_s=0.0, bias_factor=0.5, noise_sigma=0.3)
        a = spec.compile(np.random.default_rng(9), 60.0, NAMES)
        b = spec.compile(np.random.default_rng(9), 60.0, NAMES)
        assert a == b
        assert a[0].value != 0.5  # noise actually perturbed the factor

    def test_partition_uses_its_own_stream(self):
        assert PartitionSpec().stream != LossSpikeSpec().stream
