"""Unit tests for the chaos injector's life-cycle and fault effects."""

from __future__ import annotations

import math

import pytest

from repro.chaos.faults import (
    CorruptUtilizationSpec,
    CrashRecoverySpec,
    EstimatorDriftSpec,
    LossSpikeSpec,
    SensorDropoutSpec,
    StaleUtilizationSpec,
)
from repro.chaos.injector import ChaosInjector
from repro.chaos.scenario import ChaosScenario, get_scenario
from repro.cluster.topology import build_system
from repro.errors import ChaosError


def make_injector(*faults, name="test", seed=0):
    system = build_system(n_processors=3, seed=seed)
    scenario = ChaosScenario(name=name, faults=tuple(faults))
    return system, ChaosInjector(system, scenario)


class TestLifeCycle:
    def test_double_arm_rejected(self):
        _, injector = make_injector()
        injector.arm(60.0)
        with pytest.raises(ChaosError, match="already armed"):
            injector.arm(60.0)

    def test_bad_horizon_rejected(self):
        _, injector = make_injector()
        with pytest.raises(ChaosError):
            injector.arm(0.0)

    def test_wrap_before_arm_rejected(self):
        _, injector = make_injector()
        with pytest.raises(ChaosError, match="arm"):
            injector.wrap_workload(lambda c: 1.0)
        with pytest.raises(ChaosError, match="arm"):
            injector.wrap_estimator(object())

    def test_scenario_with_duplicate_streams_rejected(self):
        with pytest.raises(ChaosError, match="stream"):
            ChaosScenario(
                name="dup",
                faults=(CrashRecoverySpec(), CrashRecoverySpec()),
            )

    def test_none_scenario_schedules_nothing(self):
        system, injector = make_injector()
        injector.arm(60.0)
        assert injector.fault_log == []
        assert injector.faults_by_kind() == {}

    def test_fault_log_is_time_sorted(self):
        _, injector = make_injector(
            CrashRecoverySpec(mtbf_s=5.0, mttr_s=1.0),
            LossSpikeSpec(interval_s=8.0),
        )
        injector.arm(120.0)
        times = [i.time for i in injector.fault_log]
        assert times == sorted(times)
        assert set(injector.faults_by_kind()) == {"crash", "loss_spike"}


class TestReplayDeterminism:
    def test_same_seed_same_fault_log(self):
        _, a = make_injector(CrashRecoverySpec(mtbf_s=5.0, mttr_s=1.0), seed=3)
        _, b = make_injector(CrashRecoverySpec(mtbf_s=5.0, mttr_s=1.0), seed=3)
        assert a.arm(90.0).fault_log == b.arm(90.0).fault_log

    def test_different_seed_different_fault_log(self):
        _, a = make_injector(CrashRecoverySpec(mtbf_s=5.0, mttr_s=1.0), seed=3)
        _, b = make_injector(CrashRecoverySpec(mtbf_s=5.0, mttr_s=1.0), seed=4)
        assert a.arm(90.0).fault_log != b.arm(90.0).fault_log

    def test_preset_scenarios_compile_against_any_system(self):
        for name in ("crashes", "mayhem", "sensor_dropout"):
            system = build_system(n_processors=3)
            ChaosInjector(system, get_scenario(name)).arm(30.0)


class TestCrashEffects:
    def test_crash_and_recovery_happen_on_schedule(self):
        system, injector = make_injector(
            CrashRecoverySpec(mtbf_s=10.0, mttr_s=3.0, processors=("p1",))
        )
        injector.arm(200.0)
        first = injector.fault_log[0]
        system.engine.run_until(first.time + 0.001)
        assert system.processor("p1").failed
        system.engine.run_until(first.time + first.duration_s + 0.001)
        assert not system.processor("p1").failed

    def test_failure_counts_accumulate(self):
        system, injector = make_injector(
            CrashRecoverySpec(mtbf_s=5.0, mttr_s=1.0, processors=("p2",))
        )
        injector.arm(100.0)
        system.engine.run_until(100.0)
        crashes = len(injector.fault_log)
        assert crashes > 0
        assert system.processor("p2").failure_count == crashes


class TestReadingFaults:
    def test_corrupt_window_replaces_reading_then_clears(self):
        system, injector = make_injector(
            CorruptUtilizationSpec(interval_s=10.0, duration_s=4.0)
        )
        injector.arm(120.0)
        first = injector.fault_log[0]
        target = system.processor(first.target)
        system.engine.run_until(first.time + 0.001)
        assert target.utilization() == first.value == -1.0
        system.engine.run_until(first.time + 4.0 + 0.001)
        assert target.reading_fault is None
        assert target.utilization() >= 0.0

    def test_stale_window_freezes_reading(self):
        system, injector = make_injector(
            StaleUtilizationSpec(interval_s=10.0, duration_s=5.0)
        )
        injector.arm(120.0)
        first = injector.fault_log[0]
        target = system.processor(first.target)
        system.engine.run_until(first.time + 0.001)
        frozen = target.utilization()
        # Run real work on the frozen processor: the reading must not move.
        target.run_for(1.0)
        system.engine.run_until(first.time + 2.0)
        assert target.utilization() == frozen

    def test_overlapping_reading_faults_clear_only_after_last(self):
        system, injector = make_injector()
        injector._armed = True  # drive _set_reading_fault directly
        from repro.chaos.faults import Injection

        target = system.processor("p1")
        injector._set_reading_fault(
            Injection(time=0.0, kind="reading_corrupt", target="p1",
                      duration_s=2.0, value=-1.0),
            lambda reading: -1.0,
        )
        injector._set_reading_fault(
            Injection(time=0.0, kind="reading_corrupt", target="p1",
                      duration_s=5.0, value=5.0),
            lambda reading: 5.0,
        )
        system.engine.run_until(3.0)
        assert target.reading_fault is not None  # second window still open
        system.engine.run_until(6.0)
        assert target.reading_fault is None


class TestNetworkFaults:
    def test_loss_spike_raises_then_restores_probability(self):
        system, injector = make_injector(
            LossSpikeSpec(interval_s=10.0, duration_s=3.0, loss_probability=0.4)
        )
        injector.arm(120.0)
        assert system.network.loss_probability == 0.0
        first = injector.fault_log[0]
        system.engine.run_until(first.time + 0.001)
        assert system.network.loss_probability == 0.4
        assert system.network.rng is not None  # injector supplied one
        system.engine.run_until(first.time + 3.0 + 0.001)
        assert system.network.loss_probability == 0.0


class TestWrappers:
    def test_sensor_dropout_repeats_last_healthy_value(self):
        system, injector = make_injector(
            SensorDropoutSpec(interval_s=10.0, duration_s=4.0)
        )
        injector.arm(120.0)
        wrapped = injector.wrap_workload(lambda c: float(c))
        start, _ = injector._sensor_windows[0]
        assert wrapped(1) == 1.0  # healthy before the window
        system.engine.run_until(start + 0.001)
        assert injector.in_sensor_window(system.engine.now)
        assert wrapped(7) == 1.0  # frozen at the last healthy value

    def test_identity_wrappers_when_no_matching_faults(self):
        _, injector = make_injector(CrashRecoverySpec())
        injector.arm(60.0)
        workload = lambda c: 2.0  # noqa: E731
        estimator = object()
        assert injector.wrap_workload(workload) is workload
        assert injector.wrap_estimator(estimator) is estimator

    def test_estimator_factor_inside_and_outside_window(self):
        system, injector = make_injector(
            EstimatorDriftSpec(start_s=5.0, duration_s=10.0, bias_factor=0.4)
        )
        injector.arm(60.0)
        assert injector.estimator_factor(2.0) == 1.0
        assert injector.estimator_factor(6.0) == 0.4
        assert injector.estimator_factor(20.0) == 1.0

    def test_faulty_estimator_scales_queries(self):
        system, injector = make_injector(
            EstimatorDriftSpec(start_s=0.0, duration_s=60.0, bias_factor=0.5)
        )
        injector.arm(60.0)

        class Stub:
            task = "task-model"

            def eex_seconds(self, i, d, u):
                return 2.0

            def ecd_seconds(self, i, d, t):
                return 4.0

            def extra(self):
                return "passthrough"

        wrapped = injector.wrap_estimator(Stub())
        assert wrapped.task == "task-model"
        assert math.isclose(wrapped.eex_seconds(1, 100.0, 0.5), 1.0)
        assert math.isclose(wrapped.ecd_seconds(1, 100.0, 200.0), 2.0)
        assert wrapped.extra() == "passthrough"
