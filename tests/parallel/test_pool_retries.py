"""Crash-tolerant ``map_jobs`` (``retries > 0``): died workers, retries,
bounded attempts, and :class:`JobFailure` slots."""

from __future__ import annotations

import os
import signal

import pytest

from repro.errors import ConfigurationError, ParallelExecutionError
from repro.parallel import JobFailure, map_jobs


def _square(x: int) -> int:
    return x * x


def _die_once(job) -> int:
    """SIGKILL this worker the first time each index is seen."""
    index, marker_dir = job
    marker = os.path.join(marker_dir, f"died_{index}")
    if index == 2 and not os.path.exists(marker):
        open(marker, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return index * 10


def _always_die(_job) -> None:
    os.kill(os.getpid(), signal.SIGKILL)


def _raise_on_one(x: int) -> int:
    if x == 1:
        raise ValueError("deterministic boom")
    return x


class TestValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigurationError):
            map_jobs([1], worker=_square, retries=-1)


class TestDiedWorkers:
    def test_job_that_dies_once_is_retried_to_success(self, tmp_path):
        jobs = [(i, str(tmp_path)) for i in range(5)]
        out = map_jobs(jobs, n_jobs=2, worker=_die_once, retries=2)
        assert out == [0, 10, 20, 30, 40]

    def test_exhausted_retries_become_job_failure(self):
        out = map_jobs([(0, "")], n_jobs=2, worker=_always_die, retries=1)
        assert len(out) == 1
        failure = out[0]
        assert isinstance(failure, JobFailure)
        assert failure.index == 0
        assert failure.attempts == 2  # first try + one retry
        assert "BrokenProcessPool" in failure.error

    def test_retries_zero_keeps_abort_contract(self):
        with pytest.raises(ParallelExecutionError):
            map_jobs([(0, "")], n_jobs=2, worker=_always_die, retries=0)


class TestDeterministicExceptions:
    def test_worker_exception_is_not_retried(self):
        out = map_jobs([0, 1, 2], n_jobs=2, worker=_raise_on_one, retries=3)
        assert out[0] == 0
        assert out[2] == 2
        failure = out[1]
        assert isinstance(failure, JobFailure)
        assert failure.attempts == 1
        assert "deterministic boom" in failure.error

    def test_serial_path_records_failures_too(self):
        out = map_jobs([0, 1, 2], n_jobs=1, worker=_raise_on_one, retries=1)
        assert out[0] == 0 and out[2] == 2
        assert isinstance(out[1], JobFailure)

    def test_serial_path_without_retries_still_raises(self):
        with pytest.raises(ParallelExecutionError):
            map_jobs([0, 1, 2], n_jobs=1, worker=_raise_on_one, retries=0)


class TestOrderAndCompleteness:
    def test_successes_keep_input_order_around_failures(self, tmp_path):
        jobs = [(i, str(tmp_path)) for i in range(8)]
        out = map_jobs(jobs, n_jobs=3, worker=_die_once, retries=1)
        assert out == [i * 10 for i in range(8)]
