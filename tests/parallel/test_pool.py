"""Tests for the generic process-pool core (:mod:`repro.parallel.pool`)."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.errors import ParallelExecutionError
from repro.parallel import JobSpec, effective_n_jobs, map_jobs


def _square(x: int) -> int:
    """Module-level so worker processes can unpickle it."""
    return x * x


def _fail_on_three(x: int) -> int:
    if x == 3:
        raise ValueError("boom")
    return x


def _pid_of(_x: int) -> int:
    return os.getpid()


class TestEffectiveNJobs:
    def test_positive_passthrough(self):
        assert effective_n_jobs(1) == 1
        assert effective_n_jobs(7) == 7

    def test_zero_means_all_cpus(self):
        assert effective_n_jobs(0) == (os.cpu_count() or 1)
        assert effective_n_jobs(-1) == (os.cpu_count() or 1)


class TestSerialPath:
    def test_results_in_order(self):
        assert map_jobs(range(6), n_jobs=1, worker=_square) == [0, 1, 4, 9, 16, 25]

    def test_empty(self):
        assert map_jobs([], n_jobs=1, worker=_square) == []
        assert map_jobs([], n_jobs=4, worker=_square) == []

    def test_runs_in_parent_process(self):
        assert map_jobs([0], n_jobs=1, worker=_pid_of) == [os.getpid()]

    def test_progress_callback_in_order(self):
        seen = []
        map_jobs(
            range(4),
            n_jobs=1,
            worker=_square,
            on_result=lambda i, total, r: seen.append((i, total, r)),
        )
        assert seen == [(0, 4, 0), (1, 4, 1), (2, 4, 4), (3, 4, 9)]

    def test_failure_wrapped_with_job_index(self):
        with pytest.raises(ParallelExecutionError, match="job 3/5"):
            map_jobs(range(5), n_jobs=1, worker=_fail_on_three)


class TestParallelPath:
    def test_results_in_submission_order(self):
        assert map_jobs(range(8), n_jobs=2, worker=_square) == [
            x * x for x in range(8)
        ]

    def test_runs_in_worker_processes(self):
        pids = map_jobs(range(4), n_jobs=2, worker=_pid_of)
        assert os.getpid() not in pids

    def test_failure_wrapped_with_job_index(self):
        with pytest.raises(ParallelExecutionError, match="job 3/5"):
            map_jobs(range(5), n_jobs=2, worker=_fail_on_three)

    def test_progress_sees_every_job(self):
        seen = []
        map_jobs(
            range(6),
            n_jobs=2,
            worker=_square,
            on_result=lambda i, total, r: seen.append((i, r)),
        )
        assert sorted(seen) == [(i, i * i) for i in range(6)]

    def test_bounded_in_flight_window(self):
        # A window smaller than the job count must still complete all jobs.
        assert map_jobs(
            range(10), n_jobs=2, worker=_square, max_in_flight=2
        ) == [x * x for x in range(10)]


class TestJobSpecPickling:
    def test_round_trip(self):
        from repro.experiments.config import BaselineConfig, ExperimentConfig

        spec = JobSpec(
            config=ExperimentConfig(
                policy="predictive",
                pattern="triangular",
                max_workload_units=10.0,
                baseline=BaselineConfig(n_periods=5),
            ),
            seed_offset=3,
            repetitions=1,
            cache_dir="/tmp/cache",
            tag="predictive/triangular/u10/s3",
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.config.baseline.n_periods == 5
