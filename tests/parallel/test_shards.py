"""Sharded campaign execution: plan properties and serial equality."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.campaign import CampaignSpec, run_campaign
from repro.experiments.config import BaselineConfig
from repro.parallel.shards import ShardPlan, plan_shards, run_shard


class TestShardPlan:
    def test_round_robin_partition_is_disjoint_and_complete(self):
        plan = plan_shards(10, 3)
        indices = [list(plan.indices_of(s)) for s in range(plan.n_shards)]
        assert indices == [[0, 3, 6, 9], [1, 4, 7], [2, 5, 8]]
        flat = sorted(i for shard in indices for i in shard)
        assert flat == list(range(10))

    def test_shard_sizes_differ_by_at_most_one(self):
        for n_items in (1, 5, 16, 17):
            for n_shards in (1, 2, 3, 7):
                plan = plan_shards(n_items, n_shards)
                sizes = [
                    len(plan.indices_of(s)) for s in range(plan.n_shards)
                ]
                assert max(sizes) - min(sizes) <= 1
                assert sum(sizes) == n_items

    def test_more_shards_than_items_clamps(self):
        plan = plan_shards(3, 8)
        assert plan.n_shards == 3
        assert all(len(plan.indices_of(s)) == 1 for s in range(3))

    def test_shard_of_inverts_indices_of(self):
        plan = plan_shards(9, 4)
        for shard in range(plan.n_shards):
            for index in plan.indices_of(shard):
                assert plan.shard_of(index) == shard

    def test_empty_plan(self):
        plan = plan_shards(0, 4)
        assert plan.n_shards == 1
        assert list(plan.indices_of(0)) == []

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_shards(5, 0)
        with pytest.raises(ConfigurationError):
            ShardPlan(n_items=-1, n_shards=2)
        plan = plan_shards(5, 2)
        with pytest.raises(ConfigurationError):
            plan.indices_of(2)
        with pytest.raises(ConfigurationError):
            plan.shard_of(5)


class TestRunShard:
    def test_preserves_original_indices(self, monkeypatch):
        # Patch the per-job worker so no experiment actually runs.
        import repro.parallel.shards as shards_mod

        monkeypatch.setattr(shards_mod, "run_job", lambda spec: f"ran:{spec}")
        out = run_shard([(4, "a"), (1, "b")])
        assert out == [(4, "ran:a"), (1, "ran:b")]


class TestShardedCampaignEquality:
    @pytest.fixture(scope="class")
    def spec(self):
        return CampaignSpec(
            policies=("predictive", "nonpredictive"),
            patterns=("triangular",),
            units=(15.0,),
            n_seeds=2,
            baseline=BaselineConfig(n_periods=8, seed=5),
        )

    def test_sharded_rows_byte_identical_to_serial(self, spec, tmp_path):
        serial = run_campaign(spec, n_jobs=1, cache_dir=tmp_path / "c")
        sharded = run_campaign(spec, shards=2, cache_dir=tmp_path / "c")
        assert sharded.deterministic_json() == serial.deterministic_json()
        # The digests are real per-run decision hashes, not placeholders.
        assert all(len(r.decision_digest) == 64 for r in serial.rows)

    def test_shards_override_pool_dispatch(self, spec, tmp_path):
        # shards=1 runs the whole grid serially inside one worker-style
        # pass; rows must still be byte-identical to plain serial.
        serial = run_campaign(spec, n_jobs=1, cache_dir=tmp_path / "c")
        one_shard = run_campaign(
            spec, n_jobs=4, shards=1, cache_dir=tmp_path / "c"
        )
        assert one_shard.deterministic_json() == serial.deterministic_json()
