"""Unit tests for the profiling campaigns."""

from __future__ import annotations

import pytest

from repro.bench.app import aaw_task
from repro.bench.profiler import (
    build_estimator,
    profile_buffer_delay,
    profile_subtask,
)
from repro.errors import ProfilingError

SMALL_U = (0.0, 0.3, 0.6)
SMALL_D = (200.0, 1000.0, 3000.0)


@pytest.fixture(scope="module")
def quiet_task():
    return aaw_task(noise_sigma=0.0)


@pytest.fixture(scope="module")
def filter_profile(quiet_task):
    return profile_subtask(
        quiet_task.subtask(3), u_grid=SMALL_U, d_grid_tracks=SMALL_D,
        repetitions=1, seed=11,
    )


class TestLatencyProfiling:
    def test_sample_count(self, filter_profile):
        assert len(filter_profile.samples) == len(SMALL_U) * len(SMALL_D)

    def test_samples_cover_grid(self, filter_profile):
        targets = {(s.u_target, s.d_tracks) for s in filter_profile.samples}
        assert len(targets) == len(SMALL_U) * len(SMALL_D)

    def test_latency_at_zero_util_matches_demand(self, quiet_task, filter_profile):
        truth = quiet_task.subtask(3).service
        for sample in filter_profile.samples:
            if sample.u_target == 0.0:
                assert sample.latency_s == pytest.approx(
                    truth.mean_demand_seconds(sample.d_tracks), rel=1e-6
                )

    def test_latency_grows_with_utilization(self, filter_profile):
        by_target = {}
        for sample in filter_profile.samples:
            if sample.d_tracks == 3000.0:
                by_target[sample.u_target] = sample.latency_s
        assert by_target[0.6] > by_target[0.3] > by_target[0.0]

    def test_measured_utilization_near_target(self, filter_profile):
        for sample in filter_profile.samples:
            assert sample.u_measured == pytest.approx(sample.u_target, abs=0.08)

    def test_fitted_model_attached(self, filter_profile):
        assert filter_profile.model.subtask_name == "Filter"
        assert filter_profile.model.r_squared > 0.95

    def test_arrays_shapes_align(self, filter_profile):
        d, u, y = filter_profile.arrays()
        assert d.shape == u.shape == y.shape

    def test_direct_fit_option(self, quiet_task):
        result = profile_subtask(
            quiet_task.subtask(3), u_grid=SMALL_U, d_grid_tracks=SMALL_D,
            repetitions=1, seed=11, fit="direct",
        )
        assert result.model.r_squared > 0.95

    def test_invalid_parameters_rejected(self, quiet_task):
        with pytest.raises(ProfilingError):
            profile_subtask(quiet_task.subtask(3), repetitions=0)
        with pytest.raises(ProfilingError):
            profile_subtask(quiet_task.subtask(3), fit="magic")


class TestBufferProfiling:
    def test_buffer_delay_grows_with_load(self, quiet_task):
        result = profile_buffer_delay(
            quiet_task, total_tracks_grid=(500.0, 5000.0, 15000.0), periods=3
        )
        delays = list(result.mean_buffer_delay_ms)
        assert delays[2] > delays[0]

    def test_fit_is_roughly_linear(self, quiet_task):
        result = profile_buffer_delay(quiet_task, periods=3)
        assert result.model.k_ms_per_track > 0.0
        assert result.model.r_squared > 0.7

    def test_per_message_delays_recorded(self, quiet_task):
        grid = (500.0, 5000.0)
        result = profile_buffer_delay(quiet_task, total_tracks_grid=grid, periods=2)
        assert set(result.per_message_delays) == set(grid)

    def test_invalid_parameters_rejected(self, quiet_task):
        with pytest.raises(ProfilingError):
            profile_buffer_delay(quiet_task, fanout=0)
        with pytest.raises(ProfilingError):
            profile_buffer_delay(quiet_task, periods=0)


class TestBuildEstimator:
    def test_builds_complete_estimator(self, quiet_task):
        estimator = build_estimator(
            quiet_task, u_grid=SMALL_U, d_grid_tracks=SMALL_D, repetitions=1
        )
        assert set(estimator.latency_models) == {1, 2, 3, 4, 5}
        assert estimator.comm_model.buffer.k_ms_per_track > 0.0
        # Whole-chain estimate is usable immediately.
        assert estimator.end_to_end_estimate_seconds(1000.0, 0.1) > 0.0
