"""Unit tests for the published Table 2/3 coefficients."""

from __future__ import annotations

import pytest

from repro.bench.datasets import (
    PAPER_BUFFER_K,
    PAPER_TABLE2_COEFFICIENTS,
    paper_comm_model,
    paper_latency_model,
)


class TestTable2:
    def test_exact_published_values_subtask3(self):
        c = PAPER_TABLE2_COEFFICIENTS[3]
        assert c["a1"] == -0.00155
        assert c["a2"] == 1.535e-05
        assert c["a3"] == 0.11816174
        assert c["b1"] == 0.0298276
        assert c["b2"] == -0.000285
        assert c["b3"] == 0.983699

    def test_exact_published_values_subtask5(self):
        c = PAPER_TABLE2_COEFFICIENTS[5]
        assert c["a1"] == 0.002123
        assert c["b3"] == 1.443762

    def test_only_replicable_subtasks_published(self):
        assert sorted(PAPER_TABLE2_COEFFICIENTS) == [3, 5]

    def test_paper_latency_model_positive_over_profiled_region(self):
        """With u as a fraction the surfaces are positive where profiled."""
        for index in (3, 5):
            model = paper_latency_model(index)
            for u in (0.0, 0.2, 0.4, 0.6, 0.8):
                for d in (1.0, 5.0, 10.0, 20.0):
                    assert model.predict_ms(d, u) > 0.0

    def test_paper_latency_model_unknown_subtask(self):
        with pytest.raises(KeyError):
            paper_latency_model(2)


class TestTable3:
    def test_published_slope(self):
        assert PAPER_BUFFER_K == 0.7

    def test_paper_comm_model_uses_published_slope(self):
        model = paper_comm_model()
        # 500 tracks of total load -> 0.7 ms of buffer delay.
        assert model.buffer.predict_ms(500.0) == pytest.approx(0.7)

    def test_paper_comm_model_transmission_configurable(self):
        model = paper_comm_model(bandwidth_bps=10e6, overhead_bytes=0.0)
        assert model.transmission.predict_seconds(1_250_000) == pytest.approx(1.0)
