"""Unit tests for the ground-truth service models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.ground_truth import LinearServiceModel, QuadraticServiceModel
from repro.errors import TaskModelError
from repro.tasks.model import ServiceModel


class TestQuadraticServiceModel:
    def test_mean_demand_formula(self):
        model = QuadraticServiceModel(q2_ms=0.3, q1_ms=2.0)
        # d = 1000 tracks -> d_h = 10 -> 0.3*100 + 2*10 = 50 ms.
        assert model.mean_demand_seconds(1000.0) == pytest.approx(0.050)

    def test_floor_applies_at_tiny_data(self):
        model = QuadraticServiceModel(q2_ms=0.3, q1_ms=2.0, floor_ms=0.5)
        assert model.mean_demand_seconds(1.0) == pytest.approx(0.0005)

    def test_demand_without_rng_is_deterministic(self):
        model = QuadraticServiceModel(q2_ms=0.3, q1_ms=2.0, noise_sigma=0.5)
        assert model.demand(1000.0) == model.demand(1000.0)

    def test_noise_is_multiplicative_and_unbiased_in_log(self):
        model = QuadraticServiceModel(q2_ms=0.3, q1_ms=2.0, noise_sigma=0.1)
        rng = np.random.default_rng(0)
        samples = np.array([model.demand(1000.0, rng) for _ in range(4000)])
        assert np.median(samples) == pytest.approx(0.050, rel=0.02)
        assert samples.std() > 0.0

    def test_zero_sigma_ignores_rng(self):
        model = QuadraticServiceModel(q2_ms=0.3, q1_ms=2.0, noise_sigma=0.0)
        rng = np.random.default_rng(0)
        assert model.demand(1000.0, rng) == model.mean_demand_seconds(1000.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(TaskModelError):
            QuadraticServiceModel(q2_ms=-0.1, q1_ms=1.0)
        with pytest.raises(TaskModelError):
            QuadraticServiceModel(q2_ms=0.1, q1_ms=1.0, floor_ms=0.0)
        with pytest.raises(TaskModelError):
            QuadraticServiceModel(q2_ms=0.1, q1_ms=1.0, noise_sigma=-0.1)
        model = QuadraticServiceModel(q2_ms=0.1, q1_ms=1.0)
        with pytest.raises(TaskModelError):
            model.mean_demand_seconds(-5.0)

    def test_satisfies_service_model_protocol(self):
        assert isinstance(QuadraticServiceModel(q2_ms=0.1, q1_ms=1.0), ServiceModel)


class TestLinearServiceModel:
    def test_is_quadratic_with_zero_q2(self):
        model = LinearServiceModel(2.0)
        assert model.q2_ms == 0.0
        assert model.mean_demand_seconds(1000.0) == pytest.approx(0.020)

    def test_demand_scales_linearly(self):
        model = LinearServiceModel(2.0)
        assert model.mean_demand_seconds(2000.0) == pytest.approx(
            2 * model.mean_demand_seconds(1000.0)
        )
