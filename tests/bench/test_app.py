"""Unit tests for the synthetic AAW benchmark task."""

from __future__ import annotations

import pytest

from repro.bench.app import (
    DEMAND_CONSTANTS,
    MESSAGE_BYTES_PER_ITEM,
    REPLICABLE_INDICES,
    SUBTASK_NAMES,
    aaw_task,
    default_initial_placement,
)
from repro.errors import ConfigurationError


class TestTaskShape:
    def test_table1_structure(self):
        task = aaw_task()
        assert task.n_subtasks == 5
        assert len(task.messages) == 4
        assert task.period == 1.0
        assert task.deadline == pytest.approx(0.990)

    def test_replicable_subtasks_are_3_and_5(self):
        task = aaw_task()
        assert task.replicable_indices() == REPLICABLE_INDICES == (3, 5)

    def test_subtask_names(self):
        task = aaw_task()
        assert tuple(s.name for s in task.subtasks) == SUBTASK_NAMES

    def test_message_payload_shrinks_along_chain(self):
        assert MESSAGE_BYTES_PER_ITEM[0] >= MESSAGE_BYTES_PER_ITEM[-1]
        task = aaw_task()
        assert task.message(1).bytes_per_item == 80.0

    def test_replicable_subtasks_have_quadratic_demand(self):
        for index in REPLICABLE_INDICES:
            assert DEMAND_CONSTANTS[index]["q2"] > 0.0

    def test_non_replicable_subtasks_are_linear(self):
        for index in (1, 2, 4):
            assert DEMAND_CONSTANTS[index]["q2"] == 0.0

    def test_deadline_beyond_period_rejected(self):
        with pytest.raises(ConfigurationError):
            aaw_task(period=1.0, deadline=1.5)

    def test_noise_sigma_propagates(self):
        task = aaw_task(noise_sigma=0.25)
        assert task.subtask(3).service.noise_sigma == 0.25

    def test_noise_free_variant(self):
        task = aaw_task(noise_sigma=0.0)
        assert task.subtask(3).service.noise_sigma == 0.0


class TestCalibration:
    """The demand calibration documented in DESIGN.md/app.py."""

    def test_small_workload_fits_without_replication(self):
        """At ~2 units (1000 tracks) the unreplicated chain fits easily."""
        task = aaw_task(noise_sigma=0.0)
        total = sum(
            s.service.mean_demand_seconds(1000.0) for s in task.subtasks
        )
        assert total < 0.5 * task.deadline

    def test_large_workload_needs_replication(self):
        """At 20 units (10000 tracks) the unreplicated chain cannot fit."""
        task = aaw_task(noise_sigma=0.0)
        total = sum(
            s.service.mean_demand_seconds(10000.0) for s in task.subtasks
        )
        assert total > task.deadline

    def test_full_replication_recovers_feasibility_at_moderate_load(self):
        """At 20 units with 6-way replication the chain fits again."""
        task = aaw_task(noise_sigma=0.0)
        total = 0.0
        for subtask in task.subtasks:
            share = 10000.0 / 6.0 if subtask.replicable else 10000.0
            total += subtask.service.mean_demand_seconds(share)
        assert total < task.deadline


class TestInitialPlacement:
    def test_round_robin_over_processors(self):
        task = aaw_task()
        placement = default_initial_placement(task, ["p1", "p2", "p3"])
        assert placement == {1: "p1", 2: "p2", 3: "p3", 4: "p1", 5: "p2"}

    def test_six_nodes_leaves_one_idle(self):
        task = aaw_task()
        names = [f"p{i}" for i in range(1, 7)]
        placement = default_initial_placement(task, names)
        assert "p6" not in placement.values()

    def test_empty_processor_list_rejected(self):
        with pytest.raises(ConfigurationError):
            default_initial_placement(aaw_task(), [])
