"""The public-surface contract: snapshot, re-exports, deprecations.

``repro.api.__all__`` is the compatibility promise of the distribution.
This suite pins it against a checked-in snapshot so that any addition
or removal shows up as an explicit diff in review — update
``tests/public_api_snapshot.txt`` deliberately, in the same commit as
the surface change::

    PYTHONPATH=src python -c "import repro.api; \\
        print('\\n'.join(sorted(repro.api.__all__)))" \\
        > tests/public_api_snapshot.txt
"""

from __future__ import annotations

import warnings
from pathlib import Path

import pytest

import repro
import repro.api

SNAPSHOT_PATH = Path(__file__).parent / "public_api_snapshot.txt"


class TestSnapshot:
    def test_surface_matches_snapshot(self):
        snapshot = SNAPSHOT_PATH.read_text().split()
        current = sorted(repro.api.__all__)
        assert current == snapshot, (
            "repro.api.__all__ drifted from tests/public_api_snapshot.txt; "
            "if the change is intentional, regenerate the snapshot (see "
            "module docstring)"
        )

    def test_no_duplicates(self):
        assert len(repro.api.__all__) == len(set(repro.api.__all__))

    def test_every_name_resolves(self):
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None, name

    def test_root_package_reexports_the_facade(self):
        for name in repro.api.__all__:
            assert getattr(repro, name) is getattr(repro.api, name), name
        assert set(repro.__all__) == {*repro.api.__all__, "__version__"}


class TestFitEstimator:
    def test_baseline_and_task_are_exclusive(self):
        from repro.api import BaselineConfig, ConfigurationError, aaw_task

        with pytest.raises(ConfigurationError):
            repro.api.fit_estimator(BaselineConfig(), task=aaw_task())

    def test_cache_dir_requires_baseline_mode(self, tmp_path):
        from repro.api import ConfigurationError, aaw_task

        with pytest.raises(ConfigurationError):
            repro.api.fit_estimator(task=aaw_task(), cache_dir=tmp_path)

    def test_profile_kwargs_require_task_mode(self):
        from repro.api import ConfigurationError

        with pytest.raises(ConfigurationError):
            repro.api.fit_estimator(u_grid=(0.0, 0.2))

    def test_baseline_mode_hits_the_shared_cache(self, baseline):
        from repro.experiments import estimator_cache

        first = repro.api.fit_estimator(baseline, repetitions=1)
        assert repro.api.fit_estimator(baseline, repetitions=1) is first
        key = estimator_cache.cache_key(baseline, repetitions=1)
        assert estimator_cache._MEMORY_CACHE[key] is first


OLD_NAMES = [
    ("repro", "build_estimator"),
    ("repro", "get_default_estimator"),
    ("repro.bench", "build_estimator"),
    ("repro.experiments", "get_default_estimator"),
    ("repro.experiments.runner", "get_default_estimator"),
]


class TestDeprecatedNames:
    @pytest.mark.parametrize("module_name,attr", OLD_NAMES)
    def test_old_name_works_with_deprecation_warning(self, module_name, attr):
        import importlib

        module = importlib.import_module(module_name)
        with pytest.warns(DeprecationWarning, match="repro.api.fit_estimator"):
            old = getattr(module, attr)
        assert callable(old)

    def test_old_names_left_the_facade(self):
        assert "build_estimator" not in repro.api.__all__
        assert "get_default_estimator" not in repro.api.__all__

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.nonsense_name
        with pytest.raises(AttributeError):
            repro.api.nonsense_name

    def test_supported_deep_spellings_stay_quiet(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.bench.profiler import build_estimator  # noqa: F401
            from repro.experiments.estimator_cache import (  # noqa: F401
                get_estimator,
            )
