"""Integration: placement balance and cross-period pipelining."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.topology import build_system
from repro.core.manager import AdaptiveResourceManager, RMConfig
from repro.core.predictive import PredictivePolicy
from repro.runtime.executor import ExecutorConfig, PeriodicTaskExecutor
from repro.tasks.state import ReplicaAssignment

from tests.conftest import exact_estimator


class TestPlacementBalance:
    def test_least_utilized_placement_spreads_load(self):
        """Figure 5's p_min rule: under sustained load the predictive
        policy's replicas end up spreading CPU time across the machine
        rather than piling onto a few nodes."""
        system = build_system(n_processors=6, seed=3)
        task = aaw_task(noise_sigma=0.0)
        assignment = ReplicaAssignment(
            task,
            default_initial_placement(task, [p.name for p in system.processors]),
        )
        executor = PeriodicTaskExecutor(
            system, task, assignment, workload=lambda c: 8000.0
        )
        manager = AdaptiveResourceManager(
            system, executor, exact_estimator(task),
            policy=PredictivePolicy(), config=RMConfig(initial_d_tracks=2000.0),
        )
        manager.start(30)
        executor.start(30)
        system.engine.run_until(33.0)
        # Steady-state utilizations over the second half of the run.
        utils = np.array([
            p.meter.busy_between(15.0, 30.0) / 15.0 for p in system.processors
        ])
        assert utils.mean() > 0.10  # the machine is genuinely loaded
        # No node idles while others run hot: spread bounded.
        assert utils.max() - utils.min() < 0.35
        assert utils.min() > 0.02


class TestPipelining:
    @staticmethod
    def run_unmanaged(workload, n_periods=4, drop_factor=5.0):
        system = build_system(n_processors=6, seed=4)
        task = aaw_task(noise_sigma=0.0)
        assignment = ReplicaAssignment(
            task,
            default_initial_placement(task, [p.name for p in system.processors]),
        )
        executor = PeriodicTaskExecutor(
            system, task, assignment, workload=lambda c: workload,
            config=ExecutorConfig(drop_factor=drop_factor),
        )
        executor.start(n_periods)
        return system, executor

    def test_pipelined_periods_overlap_without_contention(self):
        """With one stage per processor and every stage's duty cycle
        below the period, consecutive releases *overlap in time* yet
        never contend for a CPU: end-to-end latency exceeds the period
        while per-period latencies stay identical — textbook pipelining,
        the reason a 1.19 s chain can still meet a 1 s arrival rate."""
        system, executor = self.run_unmanaged(4200.0)
        # Probe between release 1 (t=1.0) and completion 0 (t≈1.19).
        system.engine.run_until(1.1)
        assert executor.in_flight_count >= 2
        system.engine.run_until(12.0)
        completed = [r for r in executor.records if r.completed]
        assert len(completed) == 4
        latencies = [r.latency for r in completed]
        assert latencies[0] > 1.0  # longer than the period...
        for latency in latencies[1:]:
            assert latency == pytest.approx(latencies[0], rel=1e-6)
        # ...and each period overlapped its successor's release.
        for first, second in zip(completed, completed[1:]):
            assert first.completion_time > second.release_time

    def test_stage_duty_beyond_period_creates_contention(self):
        """Once one stage's duty cycle exceeds the period (Filter needs
        ~1.6 s of CPU at 7000 tracks), consecutive periods *do* share
        its processor and the backlog stretches every later period."""
        system, executor = self.run_unmanaged(7000.0, n_periods=3)
        system.engine.run_until(20.0)
        # Period 1's Filter shares p3 with period 0's for a while (its
        # stage latency is recorded even if the period is later shed).
        stage_latencies = [
            r.stage(3).exec_latency
            for r in executor.records
            if r.stage(3) is not None and r.stage(3).exec_latency is not None
        ]
        assert len(stage_latencies) == 3
        assert stage_latencies[1] > stage_latencies[0] * 1.1
        # The backlog overwhelms the un-adapted system: some period is
        # shed outright — exactly the situation the RM exists to prevent.
        assert any(r.aborted for r in executor.records) or (
            executor.records[1].latency > executor.records[0].latency * 1.1
        )

    def test_light_load_has_no_cross_period_effects(self):
        system, executor = self.run_unmanaged(1000.0)
        system.engine.run_until(10.0)
        latencies = [r.latency for r in executor.records]
        for latency in latencies[1:]:
            assert latency == pytest.approx(latencies[0], rel=1e-9)
        assert latencies[0] < 0.5  # comfortably inside the period
