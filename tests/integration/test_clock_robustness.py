"""Integration tests: clock synchronization within the full system."""

from __future__ import annotations

import pytest

from repro.cluster.topology import build_system


class TestClockSyncInSystem:
    def test_errors_stay_bounded_during_long_run(self):
        system = build_system(seed=7, clock_drift_ppm=50.0)
        system.engine.run_until(120.0)
        assert system.clock_sync is not None
        # Bound: residual (0.5 ms) + drift over one 16 s poll interval.
        assert system.clock_sync.max_error() <= 0.5e-3 + 16.0 * 50e-6 + 1e-9

    def test_local_timestamps_comparable_across_nodes(self):
        """Two nodes timestamping the same instant disagree by less than
        a period's worth of slack — the monitoring precondition."""
        system = build_system(seed=7)
        system.engine.run_until(30.0)
        now = system.engine.now
        readings = [clock.local_time(now) for clock in system.clocks]
        assert max(readings) - min(readings) < 0.01

    def test_without_sync_drift_accumulates(self):
        system = build_system(seed=7, clock_sync_enabled=False, clock_drift_ppm=50.0)
        system.engine.run_until(600.0)
        errors = [clock.error(system.engine.now) for clock in system.clocks]
        # With +-50 ppm drift over 600 s some clock exceeds 1 ms.
        assert max(errors) > 1e-3
