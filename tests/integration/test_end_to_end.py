"""End-to-end integration tests: full experiments, paper-level claims.

These assert the *qualitative shapes* the paper reports (§5.2), on
reduced sweeps so the whole suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import BaselineConfig, ExperimentConfig
from repro.experiments.runner import run_experiment, sweep_workloads


@pytest.fixture(scope="module")
def baseline():
    return BaselineConfig(n_periods=30, seed=1)


@pytest.fixture(scope="module")
def triangular_results(baseline, fitted_estimator):
    units = (1.0, 10.0, 20.0, 30.0)
    return {
        policy: sweep_workloads(
            policy, "triangular", units, baseline=baseline,
            estimator=fitted_estimator,
        )
        for policy in ("predictive", "nonpredictive")
    }


class TestPaperClaims:
    def test_identical_at_small_workload(self, triangular_results):
        """§5.2: 'for smaller workloads where no replication is needed,
        the performance of both algorithms is the same'."""
        pred = triangular_results["predictive"][0].metrics
        nonpred = triangular_results["nonpredictive"][0].metrics
        assert pred.rm_actions == nonpred.rm_actions == 0
        assert pred.combined == pytest.approx(nonpred.combined, rel=0.05)

    def test_nonpredictive_uses_more_replicas(self, triangular_results):
        """Fig 9(d): the heuristic over-replicates at real workloads."""
        for i in (1, 2, 3):
            pred = triangular_results["predictive"][i].metrics
            nonpred = triangular_results["nonpredictive"][i].metrics
            assert nonpred.avg_replicas >= pred.avg_replicas

    def test_nonpredictive_network_utilization_not_lower(self, triangular_results):
        """Fig 9(c): more replicas -> more network."""
        for i in (2, 3):
            pred = triangular_results["predictive"][i].metrics
            nonpred = triangular_results["nonpredictive"][i].metrics
            assert nonpred.avg_network_utilization >= 0.95 * (
                pred.avg_network_utilization
            )

    def test_predictive_wins_combined_metric_at_moderate_workloads(
        self, triangular_results
    ):
        """Fig 10: predictive has the lower combined metric once
        replication matters (the paper's headline result)."""
        wins = 0
        for i in (1, 2):
            pred = triangular_results["predictive"][i].metrics
            nonpred = triangular_results["nonpredictive"][i].metrics
            if pred.combined <= nonpred.combined:
                wins += 1
        assert wins >= 1

    def test_combined_metric_increases_with_workload(self, triangular_results):
        for policy in ("predictive", "nonpredictive"):
            series = [r.metrics.combined for r in triangular_results[policy]]
            assert series[-1] > series[0]

    def test_miss_ratio_bounded_even_at_saturation(self, triangular_results):
        for policy in ("predictive", "nonpredictive"):
            for result in triangular_results[policy]:
                assert result.metrics.missed_deadline_ratio <= 0.8


class TestRampPatterns:
    @pytest.mark.parametrize("pattern", ["increasing", "decreasing"])
    def test_adaptation_tracks_monotone_load(
        self, pattern, baseline, fitted_estimator
    ):
        config = ExperimentConfig(
            policy="predictive",
            pattern=pattern,
            max_workload_units=20.0,
            baseline=baseline,
        )
        result = run_experiment(config, estimator=fitted_estimator)
        assert result.metrics.rm_actions > 0
        # By the end of an increasing ramp the system holds replicas; by
        # the end of a decreasing ramp most replicas are shut down again.
        total_final = sum(len(v) for k, v in result.final_placement.items()
                          if k in (3, 5))
        if pattern == "increasing":
            assert total_final > 2
        else:
            assert total_final <= 8

    def test_decreasing_ramp_recovers_after_initial_overload(
        self, baseline, fitted_estimator
    ):
        """The hardest scenario: the run *starts* at maximum workload."""
        config = ExperimentConfig(
            policy="predictive",
            pattern="decreasing",
            max_workload_units=20.0,
            baseline=baseline,
        )
        result = run_experiment(config, estimator=fitted_estimator)
        # Early periods are missed (nothing adapted yet) but the tail of
        # the run must be healthy.
        assert result.metrics.missed_deadline_ratio < 0.5


class TestQuantumRoundRobinParity:
    def test_rr_and_ps_agree_qualitatively(self, fitted_estimator):
        """The processor-model substitution (DESIGN.md §2) is sound:
        quantum-exact RR and PS produce close metrics."""
        from repro.cluster.processor import Discipline

        results = {}
        for discipline in (Discipline.PROCESSOR_SHARING, Discipline.ROUND_ROBIN):
            baseline = BaselineConfig(
                n_periods=12, seed=2, discipline=discipline, noise_sigma=0.0
            )
            config = ExperimentConfig(
                policy="predictive",
                pattern="triangular",
                max_workload_units=10.0,
                baseline=baseline,
            )
            results[discipline] = run_experiment(
                config, estimator=fitted_estimator
            ).metrics
        ps = results[Discipline.PROCESSOR_SHARING]
        rr = results[Discipline.ROUND_ROBIN]
        assert ps.missed_deadline_ratio == pytest.approx(
            rr.missed_deadline_ratio, abs=0.15
        )
        assert ps.avg_cpu_utilization == pytest.approx(
            rr.avg_cpu_utilization, abs=0.05
        )
