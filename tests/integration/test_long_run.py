"""Long-horizon stability: memory and bookkeeping stay bounded."""

from __future__ import annotations

import time

import pytest

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.topology import build_system
from repro.core.manager import AdaptiveResourceManager, RMConfig
from repro.core.predictive import PredictivePolicy
from repro.runtime.executor import PeriodicTaskExecutor
from repro.tasks.state import ReplicaAssignment
from repro.workloads.patterns import TriangularPattern

from tests.conftest import exact_estimator

N_PERIODS = 300


class TestLongRun:
    @pytest.fixture(scope="class")
    def long_run(self):
        system = build_system(n_processors=6, seed=42)
        task = aaw_task(noise_sigma=0.05)
        assignment = ReplicaAssignment(
            task,
            default_initial_placement(task, [p.name for p in system.processors]),
        )
        pattern = TriangularPattern(
            min_tracks=250.0, max_tracks=8000.0,
            n_periods=N_PERIODS, cycle_periods=20,
        )
        executor = PeriodicTaskExecutor(system, task, assignment, workload=pattern)
        manager = AdaptiveResourceManager(
            system, executor, exact_estimator(task),
            policy=PredictivePolicy(), config=RMConfig(initial_d_tracks=250.0),
        )
        started = time.perf_counter()
        manager.start(N_PERIODS)
        executor.start(N_PERIODS)
        system.engine.run_until(N_PERIODS + 3.0)
        elapsed = time.perf_counter() - started
        return system, executor, manager, elapsed

    def test_every_period_accounted(self, long_run):
        _, executor, _, _ = long_run
        assert len(executor.records) == N_PERIODS
        assert all(r.completed or r.aborted for r in executor.records)

    def test_simulation_speed(self, long_run):
        """300 simulated seconds should take well under 10 wall seconds."""
        _, _, _, elapsed = long_run
        assert elapsed < 10.0

    def test_meter_history_is_pruned(self, long_run):
        system, _, _, _ = long_run
        for processor in system.processors:
            # Checkpoints bounded by pruning, not O(events).
            assert len(processor.meter._times) < 5000
        assert len(system.network.meter._times) < 20000

    def test_utilization_accounting_exact_over_long_horizon(self, long_run):
        """Windowed pruning must not corrupt lifetime integrals."""
        system, executor, _, _ = long_run
        for processor in system.processors:
            busy = processor.meter.busy_between(0.0, float(N_PERIODS))
            assert 0.0 <= busy <= N_PERIODS

    def test_adaptation_remains_live_through_the_run(self, long_run):
        _, _, manager, _ = long_run
        # Actions occur in the last third of the run, not only at start.
        late_actions = [
            ev for ev in manager.history if ev.acted and ev.time > N_PERIODS * 2 / 3
        ]
        assert late_actions

    def test_miss_ratio_stable_over_time(self, long_run):
        """No degradation drift: the last third misses no more than the
        middle third."""
        _, executor, _, _ = long_run
        third = N_PERIODS // 3
        middle = executor.records[third : 2 * third]
        last = executor.records[2 * third :]

        def ratio(records):
            return sum(1 for r in records if r.missed) / len(records)

        assert ratio(last) <= ratio(middle) + 0.1
