"""Checkpoint/restore determinism across the policy × engine × chaos matrix.

The crash-safety contract in one suite: for every cell of
{predictive, nonpredictive} × {scalar, vectorized} × {fault-free,
crashes, corrupt_readings},

* arming periodic checkpoints changes *nothing* — the armed run's
  decision digest and metrics equal the unarmed reference's; and
* restoring the mid-run snapshot and running to the horizon reproduces
  the reference bit-identically (decision digest, metrics, final
  placement).

Chaos cells run hardened: the unhardened predictive controller crashes
by design on corrupted monitor inputs, which is the hardening
subsystem's concern, not checkpointing's.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import BaselineConfig, ExperimentConfig
from repro.experiments.runner import build_world, run_experiment
from repro.recovery import resume_experiment, take_snapshot

BASELINE = BaselineConfig(n_periods=12, seed=5)
UNITS = 15.0
SNAP_AT = 4.0
CELLS = [
    pytest.param(policy, engine, scenario, id=f"{policy}-{engine}-{scenario or 'none'}")
    for policy in ("predictive", "nonpredictive")
    for engine in ("scalar", "vectorized")
    for scenario in (None, "crashes", "corrupt_readings")
]


def _config(policy, engine, scenario, checkpoint=None) -> ExperimentConfig:
    return ExperimentConfig(
        policy=policy,
        pattern="triangular",
        max_workload_units=UNITS,
        baseline=BASELINE,
        engine=engine,
        chaos_scenario=scenario,
        hardened=scenario is not None,
        checkpoint=checkpoint,
    )


@pytest.mark.parametrize("policy,engine,scenario", CELLS)
class TestResumeMatrix:
    def test_checkpointing_and_resume_are_bit_identical(
        self, policy, engine, scenario, fitted_estimator
    ):
        reference = run_experiment(
            _config(policy, engine, scenario), estimator=fitted_estimator
        )

        # Arming periodic checkpoints must be free: same decisions,
        # same metrics, same placement.
        armed = run_experiment(
            _config(policy, engine, scenario, checkpoint=SNAP_AT),
            estimator=fitted_estimator,
        )
        assert armed.decision_digest == reference.decision_digest
        assert armed.metrics.as_dict() == reference.metrics.as_dict()
        assert armed.final_placement == reference.final_placement

        # Snapshot mid-run, restore, run to the horizon: bit-identical
        # continuation.
        world = build_world(
            _config(policy, engine, scenario), estimator=fitted_estimator
        )
        world.system.engine.run_until(SNAP_AT)
        snapshot = take_snapshot(world, label="matrix")
        resumed = resume_experiment(snapshot)
        assert resumed.decision_digest == reference.decision_digest
        assert resumed.metrics.as_dict() == reference.metrics.as_dict()
        assert resumed.final_placement == reference.final_placement
        if scenario is not None:
            assert resumed.scorecard is not None
            assert (
                resumed.scorecard.as_dict() == reference.scorecard.as_dict()
            )


class TestResumeFromArmedCheckpointer:
    def test_resume_from_latest_periodic_capture(self, fitted_estimator):
        reference = run_experiment(
            _config("predictive", "scalar", "crashes"),
            estimator=fitted_estimator,
        )
        world = build_world(
            _config("predictive", "scalar", "crashes", checkpoint=SNAP_AT),
            estimator=fitted_estimator,
        )
        world.system.engine.run_until(9.0)
        snapshot = world.checkpointer.latest
        assert snapshot is not None
        assert snapshot.time == pytest.approx(8.0)
        resumed = resume_experiment(snapshot)
        assert resumed.decision_digest == reference.decision_digest
        assert resumed.metrics.as_dict() == reference.metrics.as_dict()
