"""Pre-redesign decision digests, pinned bit-for-bit through the adapter.

The two-level allocation API routes every run through
``Allocator.allocate(AllocationContext)``; the paper policies ride
through :class:`~repro.core.allocation.CandidatePolicyAdapter`.  The
redesign's contract is that this lift is *invisible*: predictive and
nonpredictive runs take byte-identical decision sequences to the
pre-redesign per-candidate control loop.

The literal digests below were captured on the last commit **before**
the redesign (same baseline, pattern, estimator recipe as
``tests/integration/test_engine_equivalence.py``) and must never drift:
a mismatch means the adapter or the manager rewire changed a decision.
Both engines are pinned to the same constants — scalar/vectorized
equivalence is part of the pin.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import BaselineConfig, ExperimentConfig
from repro.experiments.runner import run_experiment

BASELINE = BaselineConfig(n_periods=12, seed=5)

#: (scenario, hardened) -> pre-redesign digest, per policy.  Captured
#: at commit 7a0dfbc (pre two-level API) with the fitted_estimator
#: recipe; cells without chaos/hardening share one digest because
#: neither changes unhardened fault-free decisions.
GOLDEN = {
    "predictive": {
        (None, False): (
            "105f0fb0b1cee673c42bbd8fac53d05033caa8ba8814cad671039614d73af825"
        ),
        (None, True): (
            "105f0fb0b1cee673c42bbd8fac53d05033caa8ba8814cad671039614d73af825"
        ),
        ("clock_drift", False): (
            "105f0fb0b1cee673c42bbd8fac53d05033caa8ba8814cad671039614d73af825"
        ),
        ("crashes", True): (
            "70fe8674cb292b3f37983d1e7df3e2ae2a7f3dd7f7531c4516e624adbae2c4bc"
        ),
        ("mayhem", True): (
            "c11ede00ff76e5dc9a44de2295485caf7ef0ff58ed55b5d16c0889db847f627c"
        ),
    },
    "nonpredictive": {
        (None, False): (
            "c1496b53dbef540f11e11f5ece016794bb4d7212cd487d44ade4cb096a927388"
        ),
        (None, True): (
            "c1496b53dbef540f11e11f5ece016794bb4d7212cd487d44ade4cb096a927388"
        ),
        ("clock_drift", False): (
            "c1496b53dbef540f11e11f5ece016794bb4d7212cd487d44ade4cb096a927388"
        ),
        ("crashes", True): (
            "a758fb8b722339ed0291bc6fc6f5653e8c93854e845e2159d30a8c41895a0a4b"
        ),
        ("mayhem", True): (
            "c08b8c63fa51c93d57b2992c77765d9fc6ff1e3c416d0ee7ba27539352fc37ef"
        ),
    },
}


def _run(policy, scenario, hardened, engine, estimator):
    config = ExperimentConfig(
        policy=policy,
        pattern="triangular",
        max_workload_units=15.0,
        baseline=BASELINE,
        chaos_scenario=scenario,
        hardened=hardened,
        engine=engine,
    )
    return run_experiment(config, estimator=estimator)


@pytest.mark.parametrize("engine", ["scalar", "vectorized"])
@pytest.mark.parametrize("scenario,hardened", list(GOLDEN["predictive"]))
@pytest.mark.parametrize("policy", ["predictive", "nonpredictive"])
class TestPreRedesignDigestsPinned:
    def test_digest_matches_pre_redesign_capture(
        self, policy, scenario, hardened, engine, fitted_estimator
    ):
        result = _run(policy, scenario, hardened, engine, fitted_estimator)
        assert result.decision_digest == GOLDEN[policy][(scenario, hardened)]


class TestAdapterIsInPath:
    def test_manager_lifts_policies_through_the_adapter(self, fitted_estimator):
        """The manager really lifts level-1 policies into the adapter."""
        from repro.bench.app import aaw_task, default_initial_placement
        from repro.cluster.topology import build_system
        from repro.core.allocation import CandidatePolicyAdapter
        from repro.core.manager import AdaptiveResourceManager
        from repro.core.predictive import PredictivePolicy
        from repro.runtime.executor import PeriodicTaskExecutor
        from repro.tasks.state import ReplicaAssignment

        system = build_system(n_processors=6, seed=0)
        task = aaw_task(noise_sigma=0.0)
        placement = default_initial_placement(
            task, [p.name for p in system.processors]
        )
        executor = PeriodicTaskExecutor(
            system=system,
            task=task,
            assignment=ReplicaAssignment(task, placement),
            workload=lambda period_index: 1000.0,
        )
        manager = AdaptiveResourceManager(
            system=system,
            executor=executor,
            estimator=fitted_estimator,
            policy=PredictivePolicy(),
        )
        assert isinstance(manager.allocator, CandidatePolicyAdapter)
        assert manager.allocator.name == "predictive"
        assert manager.policy is manager.allocator.policy
