"""Scalar-vs-vectorized engine equivalence, pinned at full-stack depth.

The vectorized calendar's contract is that every run — policy,
chaos scenario, hardening aside — takes **bit-identical decisions** to
the scalar heap engine: same decision digest (the SHA-256 over the
canonical RM step sequence), same metrics, same final placement.  These
tests pin that across the policy × chaos × hardening grid, plus the
sharded-campaign equality the dispatch layer promises.

Chaos cells use combinations that complete on the scalar engine too
(reading-corruption scenarios need the hardened RM; an unhardened
predictive run under corrupted utilization readings raises
``RegressionError`` on *both* engines, which is itself equivalence, but
not a useful grid cell).
"""

from __future__ import annotations

import pytest

from repro.experiments.config import BaselineConfig, ExperimentConfig
from repro.experiments.runner import run_experiment

BASELINE = BaselineConfig(n_periods=12, seed=5)

#: (chaos_scenario, hardened) cells — viable on both engines.
CELLS = [
    (None, False),
    (None, True),
    ("clock_drift", False),
    ("crashes", True),
    ("mayhem", True),
]


def _run(policy, scenario, hardened, engine, estimator):
    config = ExperimentConfig(
        policy=policy,
        pattern="triangular",
        max_workload_units=15.0,
        baseline=BASELINE,
        chaos_scenario=scenario,
        hardened=hardened,
        engine=engine,
    )
    return run_experiment(config, estimator=estimator)


@pytest.mark.parametrize("policy", ["predictive", "nonpredictive"])
@pytest.mark.parametrize("scenario,hardened", CELLS)
class TestDecisionSequenceEquivalence:
    def test_vectorized_matches_scalar(
        self, policy, scenario, hardened, fitted_estimator
    ):
        scalar = _run(policy, scenario, hardened, "scalar", fitted_estimator)
        vector = _run(
            policy, scenario, hardened, "vectorized", fitted_estimator
        )
        assert scalar.decision_digest == vector.decision_digest
        assert scalar.decision_digest  # non-trivial: a real digest
        assert vector.metrics.as_dict() == scalar.metrics.as_dict()
        assert vector.final_placement == scalar.final_placement
        if scalar.scorecard is not None:
            assert vector.scorecard.as_dict() == scalar.scorecard.as_dict()


class TestDigestProperties:
    def test_digest_is_sha256_hex(self, fitted_estimator):
        result = _run("predictive", None, False, "scalar", fitted_estimator)
        assert len(result.decision_digest) == 64
        int(result.decision_digest, 16)  # hex-parsable

    def test_digest_distinguishes_policies(self, fitted_estimator):
        a = _run("predictive", None, False, "scalar", fitted_estimator)
        b = _run("nonpredictive", None, False, "scalar", fitted_estimator)
        assert a.decision_digest != b.decision_digest
