"""The SLO regression gate, end to end.

Three contracts from the observability control plane:

* **gate** — under the ``estimator_bias`` chaos scenario the unhardened
  predictive run blows its forecast-calibration budget (and fires a
  burn-rate alert), while the hardened run with the *same seed* passes:
  the circuit breaker's fallback restores calibration.  This is the
  pass/fail pair CI leans on, so it is pinned here at library level.
* **bit-identity** — arming the SLO engine is observation only: the
  decision digest and metrics of an armed run equal the unarmed run's.
* **rollup identity** — a sharded campaign rolls up byte-identically to
  the same campaign run serially; merge order cannot leak into bytes.
"""

from __future__ import annotations

from repro.experiments.campaign import CampaignSpec, rollup_campaign, run_campaign
from repro.experiments.config import BaselineConfig, ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.telemetry.slo import SloRule

#: The gate watches forecast calibration only: chaos scenarios are
#: allowed to degrade miss rates in *both* arms; what hardening must
#: restore is the estimator's honesty.
GATE_RULES = (
    SloRule(
        name="forecast-calibration",
        signal="forecast_calibration_error",
        objective=0.25,
        tolerance=0.5,
        windows=(10.0, 30.0),
    ),
)


def _biased_run(hardened: bool) -> "object":
    # Default n_periods (60): the breaker needs time to trip and refill
    # the calibration window with fallback forecasts.
    config = ExperimentConfig(
        policy="predictive",
        pattern="triangular",
        max_workload_units=30.0,
        baseline=BaselineConfig(seed=0),
        chaos_scenario="estimator_bias",
        hardened=hardened,
        slo=GATE_RULES,
    )
    return run_experiment(config)


class TestRegressionGate:
    def test_unhardened_biased_run_breaches_and_alerts(self):
        report = _biased_run(hardened=False).slo
        assert report is not None
        assert not report.passed
        assert report.exit_code == 1
        [verdict] = report.verdicts
        assert verdict.rule.name == "forecast-calibration"
        assert verdict.observed > 0.25
        assert verdict.alerts_fired >= 1
        assert any(a.state == "firing" for a in report.alerts)

    def test_hardened_same_seed_passes(self):
        report = _biased_run(hardened=True).slo
        assert report is not None
        assert report.passed
        assert report.exit_code == 0
        [verdict] = report.verdicts
        assert verdict.observed <= 0.25


class TestObservationIsFree:
    def test_armed_run_keeps_decision_digest_and_metrics(self):
        base = dict(
            policy="predictive",
            pattern="triangular",
            max_workload_units=20.0,
            baseline=BaselineConfig(n_periods=20, seed=3),
        )
        plain = run_experiment(ExperimentConfig(**base))
        armed = run_experiment(ExperimentConfig(**base, slo=GATE_RULES))
        assert armed.decision_digest == plain.decision_digest
        assert armed.metrics.as_dict() == plain.metrics.as_dict()
        assert plain.slo is None and armed.slo is not None


class TestShardedRollupIdentity:
    def test_sharded_and_serial_rollups_are_byte_identical(self):
        spec = CampaignSpec(
            policies=("predictive", "nonpredictive"),
            units=(10.0, 20.0),
            baseline=BaselineConfig(n_periods=10, seed=1),
            repetitions=1,
            slo=GATE_RULES,
        )
        serial = rollup_campaign(run_campaign(spec))
        sharded = rollup_campaign(run_campaign(spec, shards=2))
        assert sharded.to_json() == serial.to_json()
        assert len(serial) == spec.n_runs
