"""Integration tests: adaptation survives processor failures.

The paper motivates decentralized adaptive management with
*survivability*; these tests crash nodes mid-run and check that the
manager evicts/migrates stranded replicas and restores timeliness.
"""

from __future__ import annotations

import pytest

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.failures import FailureEvent, FailureInjector
from repro.cluster.topology import build_system
from repro.core.manager import AdaptiveResourceManager, RMConfig
from repro.core.predictive import PredictivePolicy
from repro.runtime.executor import PeriodicTaskExecutor
from repro.tasks.state import ReplicaAssignment

from tests.conftest import exact_estimator

N_PERIODS = 30


def build_stack(workload, seed=0):
    system = build_system(n_processors=6, seed=seed)
    task = aaw_task(noise_sigma=0.0)
    assignment = ReplicaAssignment(
        task, default_initial_placement(task, [p.name for p in system.processors])
    )
    executor = PeriodicTaskExecutor(system, task, assignment, workload=workload)
    manager = AdaptiveResourceManager(
        system,
        executor,
        exact_estimator(task),
        policy=PredictivePolicy(),
        config=RMConfig(initial_d_tracks=500.0),
    )
    manager.start(N_PERIODS)
    executor.start(N_PERIODS)
    return system, task, assignment, executor, manager


class TestReplicaEviction:
    def test_dead_replica_host_is_evicted(self):
        system, _, assignment, executor, manager = build_stack(lambda c: 6000.0)
        # Let replication engage, then fail one of the added hosts.
        system.engine.run_until(8.0)
        hosts = assignment.processors_of(3)
        assert len(hosts) > 1
        victim = hosts[-1]
        system.processor(victim).fail()
        system.engine.run_until(10.0)
        assert victim not in assignment.processors_of(3)
        assert any(ev.recoveries for ev in manager.history)

    def test_sole_replica_is_migrated(self):
        system, _, assignment, executor, manager = build_stack(lambda c: 400.0)
        home = assignment.processors_of(1)[0]
        FailureInjector(system).plan(FailureEvent(home, fail_at=5.5)).arm()
        system.engine.run_until(7.0)
        new_home = assignment.processors_of(1)[0]
        assert new_home != home
        assert not system.processor(new_home).failed
        # The migration is recorded with its target.
        migrations = [
            r for ev in manager.history for r in ev.recoveries if r[2] is not None
        ]
        assert any(r[0] == 1 and r[1] == home for r in migrations)

    def test_timeliness_recovers_after_failure(self):
        system, _, assignment, executor, manager = build_stack(lambda c: 5000.0)
        FailureInjector(system).plan(FailureEvent("p3", fail_at=10.5)).arm()
        system.engine.run_until(N_PERIODS + 3.0)
        # Some periods around the crash may be shed, but the tail of the
        # run is healthy again (Filter's home p3 was lost!).
        tail = executor.records[-8:]
        missed_tail = sum(1 for r in tail if r.missed)
        assert missed_tail <= 1
        assert "p3" not in assignment.processors_of(3)

    def test_recovered_processor_is_reused(self):
        # Moderate load, then a surge after p6's recovery forces fresh
        # replication — the recovered node must be eligible again.
        def workload(c):
            return 6000.0 if c < 16 else 12000.0

        system, _, assignment, executor, manager = build_stack(workload)
        FailureInjector(system).plan(
            FailureEvent("p6", fail_at=5.5, recover_at=12.5)
        ).arm()
        system.engine.run_until(N_PERIODS + 3.0)
        used_after_recovery = any(
            "p6" in ev.placement.get(3, ()) or "p6" in ev.placement.get(5, ())
            for ev in manager.history
            if ev.time > 16.0
        )
        assert used_after_recovery


class TestFailureUnderLoad:
    @pytest.mark.parametrize("victims", [("p3",), ("p3", "p5")])
    def test_system_survives_multiple_failures(self, victims):
        system, _, assignment, executor, manager = build_stack(lambda c: 4000.0)
        injector = FailureInjector(system)
        for i, victim in enumerate(victims):
            injector.plan(FailureEvent(victim, fail_at=8.5 + i))
        injector.arm()
        system.engine.run_until(N_PERIODS + 3.0)
        # All stranded placements cleaned up.
        failed = set(victims)
        for subtask_index in (1, 2, 3, 4, 5):
            assert not failed & set(assignment.processors_of(subtask_index))
        # The run as a whole keeps the majority of deadlines.
        missed = sum(1 for r in executor.records if r.missed)
        assert missed <= N_PERIODS * 0.4
