"""Monitoring on the node-clock time scale (§3 property 12 made real).

With node-clock timestamping enabled, stage records carry bounded clock
error.  These tests check (a) synced clocks leave the RM's behaviour
essentially unchanged, and (b) grossly desynchronized clocks distort
the monitoring data in the expected direction.
"""

from __future__ import annotations

import pytest

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.topology import build_system
from repro.core.manager import AdaptiveResourceManager, RMConfig
from repro.core.predictive import PredictivePolicy
from repro.runtime.executor import ExecutorConfig, PeriodicTaskExecutor
from repro.tasks.state import ReplicaAssignment

from tests.conftest import exact_estimator


def run_stack(use_node_clocks, sync_enabled, workload=4000.0, offset=None):
    system = build_system(
        n_processors=6, seed=5, clock_sync_enabled=sync_enabled
    )
    if offset is not None:
        # Desynchronize one node grossly.
        system.clock_of("p3").offset = offset
    task = aaw_task(noise_sigma=0.0)
    assignment = ReplicaAssignment(
        task, default_initial_placement(task, [p.name for p in system.processors])
    )
    executor = PeriodicTaskExecutor(
        system,
        task,
        assignment,
        workload=lambda c: workload,
        config=ExecutorConfig(use_node_clocks=use_node_clocks),
    )
    manager = AdaptiveResourceManager(
        system, executor, exact_estimator(task),
        policy=PredictivePolicy(), config=RMConfig(initial_d_tracks=1000.0),
    )
    manager.start(15)
    executor.start(15)
    system.engine.run_until(18.0)
    return system, executor, manager


class TestSyncedClocks:
    def test_synced_node_clocks_barely_perturb_metrics(self):
        _, engine_exec, engine_mgr = run_stack(False, True)
        _, node_exec, node_mgr = run_stack(True, True)
        engine_missed = sum(1 for r in engine_exec.records if r.missed)
        node_missed = sum(1 for r in node_exec.records if r.missed)
        assert abs(engine_missed - node_missed) <= 1
        # Final placements agree in size.
        assert abs(
            node_exec.assignment.total_replicas()
            - engine_exec.assignment.total_replicas()
        ) <= 1

    def test_stage_latencies_close_to_truth(self):
        _, node_exec, _ = run_stack(True, True)
        for record in node_exec.records:
            if record.latency is None:
                continue
            stage_sum = sum(
                s.stage_latency for s in record.stages
                if s.stage_latency is not None
            )
            # Sub-ms clock residuals over 5 stages: within a few ms.
            assert stage_sum == pytest.approx(record.latency, abs=0.01)


class TestDesynchronizedClocks:
    def test_gross_offset_inflates_observed_stage_latency(self):
        """A +50 ms offset on Filter's node inflates its observed stage
        latency (its finish stamp is ahead of the sender's clock)."""
        _, baseline_exec, _ = run_stack(True, True, workload=2000.0)
        _, skewed_exec, _ = run_stack(
            True, False, workload=2000.0, offset=0.050
        )

        def mean_stage3(executor):
            values = [
                r.stage(3).stage_latency
                for r in executor.records
                if r.completed and r.stage(3) is not None
                and r.stage(3).stage_latency is not None
                and r.stage(3).replica_count == 1
            ]
            return sum(values) / len(values)

        assert mean_stage3(skewed_exec) > mean_stage3(baseline_exec) + 0.030

    def test_rm_survives_desynchronization(self):
        """Even with a 50 ms skew the loop remains stable: it may hold
        extra replicas (inflated readings), but deadlines are met."""
        _, skewed_exec, skewed_mgr = run_stack(
            True, False, workload=4000.0, offset=0.050
        )
        tail = skewed_exec.records[-6:]
        assert sum(1 for r in tail if r.missed) <= 1
