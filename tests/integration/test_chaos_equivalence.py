"""Fault-disabled equivalence and fixed-seed chaos replay.

Two invariants pin the chaos subsystem's most important contract:

* **equivalence** — with faults disabled, a chaos-wired run (scenario
  ``"none"``, with or without hardening) produces *bit-identical*
  metrics and placements to a plain run: the wrappers, dedicated rng
  streams, and hardening hooks must be pure pass-throughs when nothing
  is injected;
* **replay** — under a fixed master seed, a faulted run replays
  bit-identically: same scorecard, same metrics, same placement.
"""

from __future__ import annotations

import pytest

from repro.chaos import run_chaos_experiment
from repro.experiments.config import BaselineConfig, ExperimentConfig
from repro.experiments.runner import run_experiment

BASELINE = BaselineConfig(n_periods=12, seed=5)


def plain(policy, estimator):
    config = ExperimentConfig(
        policy=policy,
        pattern="triangular",
        max_workload_units=15.0,
        baseline=BASELINE,
    )
    return run_experiment(config, estimator=estimator)


def chaotic(policy, estimator, scenario="none", hardened=False):
    return run_chaos_experiment(
        scenario=scenario,
        policy=policy,
        pattern="triangular",
        max_workload_units=15.0,
        baseline=BASELINE,
        hardened=hardened,
        estimator=estimator,
    )


@pytest.mark.parametrize("policy", ["predictive", "nonpredictive"])
class TestFaultDisabledEquivalence:
    def test_none_scenario_matches_plain_run(self, policy, fitted_estimator):
        reference = plain(policy, fitted_estimator)
        wired = chaotic(policy, fitted_estimator)
        assert wired.metrics.as_dict() == reference.metrics.as_dict()
        assert wired.final_placement == reference.final_placement

    def test_hardening_without_faults_is_inert(self, policy, fitted_estimator):
        reference = plain(policy, fitted_estimator)
        hardened = chaotic(policy, fitted_estimator, hardened=True)
        assert hardened.metrics.as_dict() == reference.metrics.as_dict()
        assert hardened.final_placement == reference.final_placement

    def test_none_scenario_scorecard_is_clean(self, policy, fitted_estimator):
        result = chaotic(policy, fitted_estimator)
        card = result.scorecard
        assert card is not None
        # No faults were injected, so nothing can be attributed to them —
        # deadline misses (if any) are the run's own ramp-up behavior.
        assert card.faults_injected == 0
        assert card.faults_by_kind == {}
        assert card.disrupted_faults == 0
        assert card.mttr_s is None
        assert card.availability == card.periods_on_time / card.periods_released


@pytest.mark.parametrize("scenario", ["crashes", "mayhem"])
class TestFixedSeedReplay:
    def test_faulted_run_replays_bit_identically(
        self, scenario, fitted_estimator
    ):
        first = chaotic(
            "predictive", fitted_estimator, scenario=scenario, hardened=True
        )
        second = chaotic(
            "predictive", fitted_estimator, scenario=scenario, hardened=True
        )
        assert first.scorecard.as_dict() == second.scorecard.as_dict()
        assert first.metrics.as_dict() == second.metrics.as_dict()
        assert first.final_placement == second.final_placement
        assert first.scorecard.faults_injected > 0

    def test_seed_offset_changes_the_draws(self, scenario, fitted_estimator):
        base = chaotic(
            "predictive", fitted_estimator, scenario=scenario, hardened=True
        )
        shifted = run_chaos_experiment(
            scenario=scenario,
            policy="predictive",
            pattern="triangular",
            max_workload_units=15.0,
            baseline=BASELINE,
            hardened=True,
            estimator=fitted_estimator,
            seed_offset=1,
        )
        assert (
            base.scorecard.as_dict() != shifted.scorecard.as_dict()
            or base.metrics.as_dict() != shifted.metrics.as_dict()
        )
