"""Integration stress tests: combinations of the hard scenarios.

Each test stacks several mechanisms (multi-task + failure, mission
profile + breakdown, switched network + heavy replication) to catch
interactions no single-feature test would see.
"""

from __future__ import annotations

import pytest

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.failures import FailureEvent, FailureInjector
from repro.cluster.topology import build_system
from repro.core.manager import AdaptiveResourceManager, RMConfig
from repro.core.predictive import PredictivePolicy
from repro.experiments.breakdown import compute_breakdown
from repro.experiments.config import BaselineConfig, ExperimentConfig
from repro.experiments.multitask import run_multi_task_experiment
from repro.experiments.runner import run_experiment
from repro.experiments.timeline import extract_timeline
from repro.runtime.executor import PeriodicTaskExecutor
from repro.tasks.state import ReplicaAssignment
from repro.workloads.patterns import mission_profile

from tests.conftest import exact_estimator


class TestMissionProfileRun:
    @pytest.fixture(scope="class")
    def mission_run(self):
        system = build_system(n_processors=6, seed=31)
        task = aaw_task(noise_sigma=0.0)
        assignment = ReplicaAssignment(
            task,
            default_initial_placement(task, [p.name for p in system.processors]),
        )
        profile = mission_profile("raid", max_tracks=8000.0, quiet_tracks=400.0)
        executor = PeriodicTaskExecutor(
            system, task, assignment, workload=profile
        )
        manager = AdaptiveResourceManager(
            system, executor, exact_estimator(task),
            policy=PredictivePolicy(), config=RMConfig(initial_d_tracks=400.0),
        )
        manager.start(profile.n_periods)
        executor.start(profile.n_periods)
        system.engine.run_until(profile.n_periods + 3.0)
        return executor, manager, profile

    def test_mission_completes_with_bounded_misses(self, mission_run):
        executor, _, profile = mission_run
        missed = sum(1 for r in executor.records if r.missed)
        assert missed <= profile.n_periods * 0.25

    def test_replicas_track_the_raid(self, mission_run):
        executor, manager, _ = mission_run
        timeline = extract_timeline(executor, manager)
        quiet = timeline.total_replicas[:8]
        raid = timeline.total_replicas[12:22]
        assert raid.mean() > quiet[~__import__("numpy").isnan(quiet)].mean()

    def test_breakdown_distinguishes_phases(self, mission_run):
        executor, _, _ = mission_run
        quiet = compute_breakdown(executor, first_period=1, last_period=8)
        raid = compute_breakdown(executor, first_period=13, last_period=22)
        assert raid.mean_end_to_end_s > 2 * quiet.mean_end_to_end_s
        assert raid.stage(3).mean_replicas > quiet.stage(3).mean_replicas


class TestMultiTaskWithFailureTolerance:
    def test_two_tasks_on_switched_network(self, fitted_estimator):
        """Multi-task contention without the shared-medium coupling."""
        baseline = BaselineConfig(
            n_periods=15, noise_sigma=0.0, seed=5, network_mode="switched"
        )
        config = ExperimentConfig(
            policy="predictive",
            pattern="triangular",
            max_workload_units=10.0,
            baseline=baseline,
        )
        result = run_multi_task_experiment(
            config, n_tasks=2, estimator=fitted_estimator
        )
        assert result.aggregate.missed_deadline_ratio <= 0.2
        # Switched fabric keeps network busy-fraction low even with
        # two tasks' message bursts.
        assert result.aggregate.avg_network_utilization < 0.25


class TestHeterogeneousWithFailure:
    def test_slowest_node_failure_is_survivable(self, fitted_estimator):
        """Crash the slowest node of a heterogeneous machine mid-run."""
        system = build_system(
            n_processors=6, seed=9,
            speed_factors=(1.5, 1.25, 1.0, 1.0, 0.75, 0.5),
        )
        task = aaw_task(noise_sigma=0.0)
        assignment = ReplicaAssignment(
            task,
            default_initial_placement(task, [p.name for p in system.processors]),
        )
        executor = PeriodicTaskExecutor(
            system, task, assignment, workload=lambda c: 4000.0
        )
        manager = AdaptiveResourceManager(
            system, executor, exact_estimator(task),
            policy=PredictivePolicy(), config=RMConfig(initial_d_tracks=1000.0),
        )
        FailureInjector(system).plan(FailureEvent("p6", fail_at=8.5)).arm()
        manager.start(25)
        executor.start(25)
        system.engine.run_until(28.0)
        tail = executor.records[-6:]
        assert sum(1 for r in tail if r.missed) <= 1
        for index in (1, 2, 3, 4, 5):
            assert "p6" not in assignment.processors_of(index)


class TestSwitchedNetworkExperiment:
    def test_switched_run_dominates_shared_on_latency(self, fitted_estimator):
        baseline = BaselineConfig(n_periods=15, noise_sigma=0.0, seed=7)
        results = {}
        for mode in ("shared", "switched"):
            config = ExperimentConfig(
                policy="nonpredictive",
                pattern="constant",
                max_workload_units=20.0,
                baseline=baseline.with_overrides(network_mode=mode),
            )
            results[mode] = run_experiment(
                config, estimator=fitted_estimator
            ).metrics
        assert (
            results["switched"].avg_network_utilization
            <= results["shared"].avg_network_utilization
        )
        assert results["switched"].missed_deadline_ratio <= (
            results["shared"].missed_deadline_ratio + 0.02
        )
