"""Unit tests for the fluent task builder."""

from __future__ import annotations

import pytest

from repro.bench.ground_truth import LinearServiceModel
from repro.errors import TaskModelError
from repro.tasks.builder import TaskBuilder


def service():
    return LinearServiceModel(1.0)


class TestBuilder:
    def test_builds_valid_chain(self):
        task = (
            TaskBuilder("t", period_s=1.0, deadline_s=0.9)
            .subtask("a", service())
            .message(bytes_per_item=80)
            .subtask("b", service(), replicable=True)
            .build()
        )
        assert task.n_subtasks == 2
        assert task.subtask(2).replicable
        assert task.message(1).bytes_per_item == 80

    def test_message_context_forwarded(self):
        task = (
            TaskBuilder("t", period_s=1.0, deadline_s=0.9)
            .subtask("a", service())
            .message(bytes_per_item=80, context_bytes_per_item=16)
            .subtask("b", service())
            .build()
        )
        assert task.message(1).context_bytes_per_item == 16

    def test_two_subtasks_in_a_row_rejected(self):
        builder = TaskBuilder("t", period_s=1.0, deadline_s=0.9).subtask("a", service())
        with pytest.raises(TaskModelError):
            builder.subtask("b", service())

    def test_message_first_rejected(self):
        with pytest.raises(TaskModelError):
            TaskBuilder("t", period_s=1.0, deadline_s=0.9).message()

    def test_two_messages_in_a_row_rejected(self):
        builder = (
            TaskBuilder("t", period_s=1.0, deadline_s=0.9)
            .subtask("a", service())
            .message()
        )
        with pytest.raises(TaskModelError):
            builder.message()

    def test_dangling_message_rejected_at_build(self):
        builder = (
            TaskBuilder("t", period_s=1.0, deadline_s=0.9)
            .subtask("a", service())
            .message()
        )
        with pytest.raises(TaskModelError):
            builder.build()

    def test_indices_assigned_in_order(self):
        builder = TaskBuilder("t", period_s=1.0, deadline_s=0.9)
        for i in range(4):
            builder.subtask(f"s{i}", service())
            if i < 3:
                builder.message()
        task = builder.build()
        assert [s.index for s in task.subtasks] == [1, 2, 3, 4]
        assert [m.index for m in task.messages] == [1, 2, 3]
