"""Unit tests for the ReplicaAssignment (the PS(st) map)."""

from __future__ import annotations

import pytest

from repro.bench.app import aaw_task, default_initial_placement
from repro.errors import AllocationError
from repro.tasks.state import ReplicaAssignment


@pytest.fixture()
def assignment():
    task = aaw_task(noise_sigma=0.0)
    names = [f"p{i}" for i in range(1, 7)]
    return ReplicaAssignment(task, default_initial_placement(task, names))


class TestInitialState:
    def test_every_subtask_has_one_replica(self, assignment):
        for subtask in assignment.task.subtasks:
            assert assignment.replica_count(subtask.index) == 1

    def test_missing_initial_placement_rejected(self):
        task = aaw_task(noise_sigma=0.0)
        with pytest.raises(AllocationError):
            ReplicaAssignment(task, {1: "p1"})

    def test_total_replicas_counts_replicable_only_by_default(self, assignment):
        # 2 replicable subtasks, 1 replica each.
        assert assignment.total_replicas() == 2
        assert assignment.total_replicas(replicable_only=False) == 5


class TestAddReplica:
    def test_add_extends_ordered_set(self, assignment):
        assignment.add_replica(3, "p6")
        assignment.add_replica(3, "p1")
        assert assignment.processors_of(3)[-2:] == ("p6", "p1")
        assert assignment.replica_count(3) == 3

    def test_duplicate_processor_rejected(self, assignment):
        assignment.add_replica(3, "p6")
        with pytest.raises(AllocationError):
            assignment.add_replica(3, "p6")

    def test_non_replicable_subtask_rejected(self, assignment):
        with pytest.raises(AllocationError):
            assignment.add_replica(1, "p6")

    def test_unknown_subtask_rejected(self, assignment):
        with pytest.raises(AllocationError):
            assignment.add_replica(99, "p6")


class TestRemoveLastReplica:
    def test_lifo_removal(self, assignment):
        assignment.add_replica(3, "p6")
        assignment.add_replica(3, "p1")
        assert assignment.remove_last_replica(3) == "p1"
        assert assignment.remove_last_replica(3) == "p6"

    def test_original_never_removed(self, assignment):
        assert assignment.remove_last_replica(3) is None
        assert assignment.replica_count(3) == 1

    def test_unknown_subtask_rejected(self, assignment):
        with pytest.raises(AllocationError):
            assignment.remove_last_replica(99)


class TestSnapshotAndReset:
    def test_snapshot_is_immutable_copy(self, assignment):
        snap = assignment.snapshot()
        assignment.add_replica(3, "p6")
        assert len(snap[3]) == 1  # unchanged

    def test_reset_replaces_placement(self, assignment):
        assignment.reset(3, ["p2", "p4"])
        assert assignment.processors_of(3) == ("p2", "p4")

    def test_reset_empty_rejected(self, assignment):
        with pytest.raises(AllocationError):
            assignment.reset(3, [])

    def test_reset_duplicates_rejected(self, assignment):
        with pytest.raises(AllocationError):
            assignment.reset(3, ["p2", "p2"])

    def test_reset_non_replicable_multi_rejected(self, assignment):
        with pytest.raises(AllocationError):
            assignment.reset(1, ["p1", "p2"])
