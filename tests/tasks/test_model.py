"""Unit tests for the task structural model."""

from __future__ import annotations

import pytest

from repro.bench.ground_truth import LinearServiceModel
from repro.errors import TaskModelError
from repro.tasks.model import MessageSpec, PeriodicTask, Subtask


def subtask(index, name="st", replicable=False):
    return Subtask(
        index=index,
        name=f"{name}{index}",
        replicable=replicable,
        service=LinearServiceModel(1.0),
    )


def chain(n, replicable=()):
    return PeriodicTask(
        name="t",
        period=1.0,
        deadline=0.9,
        subtasks=tuple(
            subtask(i, replicable=i in replicable) for i in range(1, n + 1)
        ),
        messages=tuple(MessageSpec(index=i) for i in range(1, n)),
    )


class TestSubtask:
    def test_bad_index_rejected(self):
        with pytest.raises(TaskModelError):
            subtask(0)

    def test_empty_name_rejected(self):
        with pytest.raises(TaskModelError):
            Subtask(index=1, name="", replicable=False, service=LinearServiceModel(1.0))


class TestMessageSpec:
    def test_payload_scales_with_items(self):
        spec = MessageSpec(index=1, bytes_per_item=80.0)
        assert spec.payload_bytes(100) == 8000.0

    def test_negative_data_rejected(self):
        with pytest.raises(TaskModelError):
            MessageSpec(index=1).payload_bytes(-1)

    def test_negative_bytes_per_item_rejected(self):
        with pytest.raises(TaskModelError):
            MessageSpec(index=1, bytes_per_item=-1.0)

    def test_wire_payload_includes_context(self):
        spec = MessageSpec(index=1, bytes_per_item=80.0, context_bytes_per_item=16.0)
        assert spec.wire_payload_bytes(50, 100) == 80 * 50 + 16 * 100

    def test_wire_payload_share_cannot_exceed_total(self):
        spec = MessageSpec(index=1)
        with pytest.raises(TaskModelError):
            spec.wire_payload_bytes(200, 100)

    def test_wire_payload_without_context_equals_payload(self):
        spec = MessageSpec(index=1, bytes_per_item=80.0)
        assert spec.wire_payload_bytes(50, 100) == spec.payload_bytes(50)

    def test_negative_context_rejected(self):
        with pytest.raises(TaskModelError):
            MessageSpec(index=1, context_bytes_per_item=-1.0)


class TestPeriodicTaskInvariants:
    def test_valid_chain_builds(self):
        task = chain(5, replicable=(3, 5))
        assert task.n_subtasks == 5
        assert task.replicable_indices() == (3, 5)

    def test_bad_period_rejected(self):
        with pytest.raises(TaskModelError):
            PeriodicTask("t", period=0.0, deadline=0.5, subtasks=(subtask(1),))

    def test_bad_deadline_rejected(self):
        with pytest.raises(TaskModelError):
            PeriodicTask("t", period=1.0, deadline=-1.0, subtasks=(subtask(1),))

    def test_empty_chain_rejected(self):
        with pytest.raises(TaskModelError):
            PeriodicTask("t", period=1.0, deadline=0.5, subtasks=())

    def test_out_of_order_subtasks_rejected(self):
        with pytest.raises(TaskModelError):
            PeriodicTask(
                "t",
                period=1.0,
                deadline=0.5,
                subtasks=(subtask(2), subtask(1)),
                messages=(MessageSpec(index=1),),
            )

    def test_wrong_message_count_rejected(self):
        with pytest.raises(TaskModelError):
            PeriodicTask(
                "t",
                period=1.0,
                deadline=0.5,
                subtasks=(subtask(1), subtask(2)),
                messages=(),
            )

    def test_wrong_message_indices_rejected(self):
        with pytest.raises(TaskModelError):
            PeriodicTask(
                "t",
                period=1.0,
                deadline=0.5,
                subtasks=(subtask(1), subtask(2)),
                messages=(MessageSpec(index=2),),
            )

    def test_single_subtask_no_messages(self):
        task = PeriodicTask("t", period=1.0, deadline=0.5, subtasks=(subtask(1),))
        assert task.n_subtasks == 1


class TestAccessors:
    def test_subtask_lookup_is_one_based(self):
        task = chain(3)
        assert task.subtask(1).index == 1
        assert task.subtask(3).index == 3

    def test_subtask_out_of_range(self):
        task = chain(3)
        with pytest.raises(TaskModelError):
            task.subtask(0)
        with pytest.raises(TaskModelError):
            task.subtask(4)

    def test_message_lookup(self):
        task = chain(3)
        assert task.message(2).index == 2
        with pytest.raises(TaskModelError):
            task.message(3)

    def test_no_replicable_indices(self):
        assert chain(3).replicable_indices() == ()
