"""Tests for replicated-experiment statistics."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import BaselineConfig, ExperimentConfig
from repro.experiments.replication import (
    replicate_experiment,
    summarize,
)


class TestSummarize:
    def test_single_value(self):
        s = summarize("m", [0.5])
        assert s.mean == 0.5
        assert s.std == 0.0
        assert s.ci_low == s.ci_high == 0.5

    def test_known_sample(self):
        s = summarize("m", [1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        # t(0.975, df=2) = 4.3027; half-width = 4.3027 / sqrt(3).
        assert s.ci_half_width == pytest.approx(4.3027 / (3 ** 0.5), rel=1e-3)

    def test_interval_contains_mean(self):
        s = summarize("m", [0.2, 0.3, 0.25, 0.22])
        assert s.ci_low <= s.mean <= s.ci_high

    def test_wider_confidence_wider_interval(self):
        values = [0.2, 0.3, 0.25, 0.22]
        narrow = summarize("m", values, confidence=0.8)
        wide = summarize("m", values, confidence=0.99)
        assert wide.ci_half_width > narrow.ci_half_width

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize("m", [])


class TestReplicateExperiment:
    @pytest.fixture(scope="class")
    def replicated(self, fitted_estimator):
        config = ExperimentConfig(
            policy="predictive",
            pattern="triangular",
            max_workload_units=10.0,
            baseline=BaselineConfig(n_periods=10, seed=6),
        )
        return replicate_experiment(config, n_seeds=4, estimator=fitted_estimator)

    def test_runs_all_seeds(self, replicated):
        assert len(replicated.runs) == 4

    def test_all_metrics_summarized(self, replicated):
        assert {"missed", "cpu", "net", "replicas", "combined"} <= set(
            replicated.summaries
        )
        for s in replicated.summaries.values():
            assert s.n == 4

    def test_seeds_produce_variation(self, replicated):
        """Execution noise differs across seeds, so some metric varies."""
        assert any(s.std > 0.0 for s in replicated.summaries.values())

    def test_summary_lookup(self, replicated):
        assert replicated.summary("combined").name == "combined"
        with pytest.raises(ConfigurationError):
            replicated.summary("nope")

    def test_bad_parameters_rejected(self, fitted_estimator):
        config = ExperimentConfig(
            policy="predictive",
            pattern="triangular",
            max_workload_units=5.0,
            baseline=BaselineConfig(n_periods=5),
        )
        with pytest.raises(ConfigurationError):
            replicate_experiment(config, n_seeds=0, estimator=fitted_estimator)
        with pytest.raises(ConfigurationError):
            replicate_experiment(
                config, n_seeds=2, confidence=1.5, estimator=fitted_estimator
            )
