"""Parallel experiment execution: campaigns and serial/parallel parity.

The multi-worker determinism checks are marked ``slow`` (tier-1 skips
them via pyproject's ``addopts``; ``scripts/run_slow.sh`` runs all).
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.campaign import CampaignSpec, run_campaign
from repro.experiments.config import BaselineConfig, ExperimentConfig
from repro.experiments.replication import replicate_experiment
from repro.experiments.runner import sweep_workloads


@pytest.fixture(scope="module")
def small_baseline():
    return BaselineConfig(n_periods=8, seed=41)


@pytest.fixture(scope="module")
def small_spec(small_baseline):
    return CampaignSpec(
        policies=("predictive", "nonpredictive"),
        patterns=("triangular",),
        units=(5.0, 15.0),
        n_seeds=2,
        baseline=small_baseline,
        repetitions=1,
    )


class TestCampaignSpec:
    def test_grid_size_and_order(self, small_spec):
        assert small_spec.n_runs == 8
        cells = small_spec.enumerate()
        assert len(cells) == 8
        # Canonical order: policy, pattern, units, seed offset.
        assert [c[2] for c in cells[:4]] == [
            "predictive/triangular/u5/s0",
            "predictive/triangular/u5/s1",
            "predictive/triangular/u15/s0",
            "predictive/triangular/u15/s1",
        ]

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(policies=())
        with pytest.raises(ConfigurationError):
            CampaignSpec(n_seeds=0)


class TestRunCampaignSerial:
    @pytest.fixture(scope="class")
    def result(self, small_spec, tmp_path_factory):
        return run_campaign(
            small_spec, n_jobs=1, cache_dir=tmp_path_factory.mktemp("cache")
        )

    def test_rows_keep_enumeration_order(self, small_spec, result):
        assert len(result.rows) == small_spec.n_runs
        tags = [
            f"{r.policy}/{r.pattern}/u{r.max_workload_units:g}/s{r.seed_offset}"
            for r in result.rows
        ]
        assert tags == [c[2] for c in small_spec.enumerate()]

    def test_rows_carry_accounting(self, result):
        for row in result.rows:
            assert row.wall_clock_s > 0.0
            assert row.max_rss_kb > 0
            assert row.pid > 0

    def test_series_summarizes_over_seeds(self, result):
        series = result.series("predictive", "triangular", "combined")
        assert sorted(series) == [5.0, 15.0]
        assert all(s.n == 2 for s in series.values())
        with pytest.raises(ConfigurationError):
            result.series("alchemy", "triangular", "combined")

    def test_render_and_json(self, result, tmp_path):
        text = result.render()
        assert "predictive" in text and "campaign" in text
        target = result.write_json(tmp_path / "campaign.json")
        import json

        payload = json.loads(target.read_text())
        assert payload["n_runs"] == 8
        assert len(payload["rows"]) == 8
        assert payload["rows"][0]["metrics"]["combined"] >= 0.0

    def test_progress_reports_every_run(self, small_spec, tmp_path):
        lines = []
        run_campaign(
            small_spec, n_jobs=1, cache_dir=tmp_path, progress=lines.append
        )
        assert len(lines) == small_spec.n_runs
        assert all("combined=" in line for line in lines)


@pytest.mark.slow
class TestParallelMatchesSerial:
    """Bit-identical results regardless of worker count (hard requirement)."""

    def test_replication_identical_n_jobs_4(self, small_baseline, tmp_path):
        config = ExperimentConfig(
            policy="predictive",
            pattern="triangular",
            max_workload_units=15.0,
            baseline=small_baseline,
        )
        kwargs = dict(n_seeds=4, cache_dir=tmp_path)
        serial = replicate_experiment(config, n_jobs=1, **kwargs)
        parallel = replicate_experiment(config, n_jobs=4, **kwargs)
        assert [m.as_dict() for m in serial.runs] == [
            m.as_dict() for m in parallel.runs
        ]
        assert serial.summaries == parallel.summaries

    def test_sweep_identical_n_jobs_2(self, small_baseline, tmp_path):
        kwargs = dict(
            policy="nonpredictive",
            pattern="increasing",
            units=(5.0, 10.0, 20.0),
            baseline=small_baseline,
            cache_dir=tmp_path,
        )
        serial = sweep_workloads(n_jobs=1, **kwargs)
        parallel = sweep_workloads(n_jobs=2, **kwargs)
        assert [r.metrics.as_dict() for r in serial] == [
            r.metrics.as_dict() for r in parallel
        ]
        assert [r.final_placement for r in serial] == [
            r.final_placement for r in parallel
        ]

    def test_campaign_identical_n_jobs_4(self, small_spec, tmp_path):
        serial = run_campaign(small_spec, n_jobs=1, cache_dir=tmp_path)
        parallel = run_campaign(small_spec, n_jobs=4, cache_dir=tmp_path)
        assert [r.metrics.as_dict() for r in serial.rows] == [
            r.metrics.as_dict() for r in parallel.rows
        ]
        # Work actually fanned out to distinct worker processes.
        assert len({r.pid for r in parallel.rows}) > 1
