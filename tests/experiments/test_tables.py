"""Tests for Table 1/2/3 reproduction."""

from __future__ import annotations

import pytest

from repro.experiments.config import BaselineConfig
from repro.experiments.tables import (
    render_table1,
    render_table2,
    render_table3,
    reproduce_table2,
    reproduce_table3,
)


class TestTable1:
    def test_contains_every_published_row(self):
        text = render_table1()
        for fragment in (
            "Number of nodes",
            "6",
            "Ethernet",
            "100 Mbps",
            "80 bytes",
            "990 ms",
            "20%",
        ):
            assert fragment in text


@pytest.fixture(scope="module")
def table2_rows():
    return reproduce_table2(
        baseline=BaselineConfig(noise_sigma=0.0, seed=1), repetitions=1
    )


class TestTable2:
    def test_rows_for_subtasks_3_and_5(self, table2_rows):
        assert [row.subtask_index for row in table2_rows] == [3, 5]

    def test_fitted_surfaces_fit_well(self, table2_rows):
        for row in table2_rows:
            assert row.fitted.r_squared > 0.95

    def test_fitted_d2_curvature_positive(self, table2_rows):
        """Both replicable subtasks have positive d^2 curvature (a3 > 0),
        the structural property shared with the published Table 2."""
        for row in table2_rows:
            assert row.fitted.a[2] > 0.0

    def test_render_shows_fitted_and_paper(self, table2_rows):
        text = render_table2(table2_rows)
        assert "fitted" in text
        assert "paper" in text
        assert "Table 2" in text


class TestTable3:
    def test_fitted_slope_positive(self):
        result = reproduce_table3(BaselineConfig(noise_sigma=0.0))
        assert result.fitted.k_ms_per_track > 0.0
        assert result.published_k == 0.7

    def test_render(self):
        result = reproduce_table3(BaselineConfig(noise_sigma=0.0))
        text = render_table3(result)
        assert "Table 3" in text
        assert "paper" in text
