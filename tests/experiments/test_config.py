"""Unit tests for experiment configuration."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import (
    DEFAULT_SWEEP_UNITS,
    BaselineConfig,
    ExperimentConfig,
)


class TestBaselineConfig:
    def test_table1_defaults(self):
        config = BaselineConfig()
        assert config.n_nodes == 6
        assert config.bandwidth_bps == 100e6
        assert config.track_bytes == 80
        assert config.period == 1.0
        assert config.deadline == pytest.approx(0.990)
        assert config.utilization_threshold == 0.20
        assert config.quantum == pytest.approx(0.001)

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            BaselineConfig(n_nodes=0)
        with pytest.raises(ConfigurationError):
            BaselineConfig(n_periods=0)
        with pytest.raises(ConfigurationError):
            BaselineConfig(deadline=1.5, period=1.0)
        with pytest.raises(ConfigurationError):
            BaselineConfig(min_workload_units=0.0)

    def test_with_overrides(self):
        config = BaselineConfig().with_overrides(n_nodes=8, seed=9)
        assert config.n_nodes == 8
        assert config.seed == 9
        assert config.period == 1.0  # untouched

    def test_as_table_rows_covers_table1(self):
        rows = dict(BaselineConfig().as_table_rows())
        assert rows["Number of nodes"] == "6"
        assert rows["Data item (track) size"] == "80 bytes"
        assert rows["Number of subtasks per task"] == "5"
        assert "20%" in rows["CPU utilization threshold (non-predictive)"]


class TestExperimentConfig:
    def test_track_conversions(self):
        config = ExperimentConfig(
            policy="predictive", pattern="triangular", max_workload_units=35.0
        )
        assert config.max_tracks == 17_500.0
        assert config.min_tracks == 250.0  # 0.5 units default floor

    def test_min_never_exceeds_max(self):
        config = ExperimentConfig(
            policy="predictive", pattern="triangular", max_workload_units=0.25
        )
        assert config.min_tracks == config.max_tracks == 125.0

    def test_invalid_units_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(
                policy="predictive", pattern="triangular", max_workload_units=0.0
            )

    def test_default_sweep_matches_paper_axis(self):
        assert DEFAULT_SWEEP_UNITS[0] >= 1.0
        assert DEFAULT_SWEEP_UNITS[-1] == 35.0
