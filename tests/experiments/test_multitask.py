"""Tests for multi-task experiments."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import BaselineConfig, ExperimentConfig
from repro.experiments.multitask import (
    WorkloadLedger,
    run_multi_task_experiment,
)


@pytest.fixture(scope="module")
def fast_baseline():
    return BaselineConfig(n_periods=12, noise_sigma=0.0, seed=4)


def config(baseline, units=10.0, policy="predictive"):
    return ExperimentConfig(
        policy=policy,
        pattern="triangular",
        max_workload_units=units,
        baseline=baseline,
    )


class TestWorkloadLedger:
    def test_total_sums_tasks(self):
        ledger = WorkloadLedger()
        ledger.publish("a", 100.0)
        ledger.publish("b", 250.0)
        assert ledger.total() == 350.0

    def test_publish_replaces(self):
        ledger = WorkloadLedger()
        ledger.publish("a", 100.0)
        ledger.publish("a", 50.0)
        assert ledger.total() == 50.0

    def test_of_unknown_task_is_zero(self):
        assert WorkloadLedger().of("ghost") == 0.0


class TestMultiTaskExperiment:
    def test_single_task_matches_structure(self, fast_baseline, fitted_estimator):
        result = run_multi_task_experiment(
            config(fast_baseline), n_tasks=1, estimator=fitted_estimator
        )
        assert result.n_tasks == 1
        assert set(result.per_task_metrics) == {"aaw1"}
        assert result.aggregate.periods_released == 12

    def test_two_tasks_share_the_machine(self, fast_baseline, fitted_estimator):
        result = run_multi_task_experiment(
            config(fast_baseline), n_tasks=2, estimator=fitted_estimator
        )
        assert set(result.per_task_metrics) == {"aaw1", "aaw2"}
        assert result.aggregate.periods_released == 24
        # Aggregate replica ceiling scales with task count.
        assert result.aggregate.max_replicas == 6 * 2 * 2

    def test_contention_raises_utilization(self, fast_baseline, fitted_estimator):
        one = run_multi_task_experiment(
            config(fast_baseline), n_tasks=1, estimator=fitted_estimator
        )
        two = run_multi_task_experiment(
            config(fast_baseline), n_tasks=2, estimator=fitted_estimator
        )
        assert two.aggregate.avg_cpu_utilization > one.aggregate.avg_cpu_utilization
        assert (
            two.aggregate.avg_network_utilization
            > one.aggregate.avg_network_utilization
        )

    def test_all_tasks_adapt_under_load(self, fast_baseline, fitted_estimator):
        result = run_multi_task_experiment(
            config(fast_baseline, units=15.0), n_tasks=2, estimator=fitted_estimator
        )
        for metrics in result.per_task_metrics.values():
            assert metrics.rm_actions > 0

    def test_invalid_task_count_rejected(self, fast_baseline, fitted_estimator):
        with pytest.raises(ConfigurationError):
            run_multi_task_experiment(
                config(fast_baseline), n_tasks=0, estimator=fitted_estimator
            )

    def test_deterministic(self, fast_baseline, fitted_estimator):
        a = run_multi_task_experiment(
            config(fast_baseline), n_tasks=2, estimator=fitted_estimator
        )
        b = run_multi_task_experiment(
            config(fast_baseline), n_tasks=2, estimator=fitted_estimator
        )
        assert a.aggregate == b.aggregate
