"""Integration tests for the experiment runner."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import BaselineConfig, ExperimentConfig
from repro.experiments.estimator_cache import get_estimator
from repro.experiments.runner import (
    run_experiment,
    sweep_workloads,
)


@pytest.fixture(scope="module")
def fast_baseline():
    """Short runs, deterministic app, for test speed."""
    return BaselineConfig(n_periods=15, noise_sigma=0.0, seed=3)


def config(policy="predictive", pattern="triangular", units=10.0, baseline=None):
    return ExperimentConfig(
        policy=policy,
        pattern=pattern,
        max_workload_units=units,
        baseline=baseline or BaselineConfig(n_periods=15, noise_sigma=0.0, seed=3),
    )


class TestRunExperiment:
    def test_produces_metrics(self, fast_baseline, fitted_estimator):
        result = run_experiment(
            config(baseline=fast_baseline), estimator=fitted_estimator
        )
        m = result.metrics
        assert m.periods_released == 15
        assert 0.0 <= m.missed_deadline_ratio <= 1.0
        assert 0.0 <= m.avg_cpu_utilization <= 1.0
        assert 0.0 <= m.avg_network_utilization <= 1.0
        assert 2.0 <= m.avg_replicas <= 12.0

    def test_light_load_no_adaptation(self, fast_baseline, fitted_estimator):
        result = run_experiment(
            config(units=1.0, baseline=fast_baseline), estimator=fitted_estimator
        )
        assert result.metrics.missed_deadline_ratio == 0.0
        assert result.metrics.rm_actions == 0
        assert result.metrics.avg_replicas == pytest.approx(2.0)

    def test_heavy_load_adapts(self, fast_baseline, fitted_estimator):
        result = run_experiment(
            config(units=20.0, pattern="constant", baseline=fast_baseline),
            estimator=fitted_estimator,
        )
        assert result.metrics.rm_actions > 0
        assert result.metrics.avg_replicas > 2.0

    def test_final_placement_reported(self, fast_baseline, fitted_estimator):
        result = run_experiment(
            config(units=20.0, pattern="constant", baseline=fast_baseline),
            estimator=fitted_estimator,
        )
        assert set(result.final_placement) == {1, 2, 3, 4, 5}
        assert len(result.final_placement[3]) >= 1

    def test_deterministic_given_seed(self, fast_baseline, fitted_estimator):
        a = run_experiment(config(baseline=fast_baseline), estimator=fitted_estimator)
        b = run_experiment(config(baseline=fast_baseline), estimator=fitted_estimator)
        assert a.metrics == b.metrics

    def test_unknown_policy_rejected(self, fast_baseline, fitted_estimator):
        with pytest.raises(Exception):
            run_experiment(
                config(policy="alchemy", baseline=fast_baseline),
                estimator=fitted_estimator,
            )

    def test_unknown_pattern_rejected(self, fast_baseline, fitted_estimator):
        with pytest.raises(ConfigurationError):
            run_experiment(
                config(pattern="sawtooth", baseline=fast_baseline),
                estimator=fitted_estimator,
            )


class TestSweep:
    def test_sweep_runs_every_point(self, fast_baseline, fitted_estimator):
        results = sweep_workloads(
            "predictive",
            "triangular",
            units=(1.0, 10.0, 20.0),
            baseline=fast_baseline,
            estimator=fitted_estimator,
        )
        assert [r.config.max_workload_units for r in results] == [1.0, 10.0, 20.0]

    def test_combined_metric_grows_with_workload(
        self, fast_baseline, fitted_estimator
    ):
        results = sweep_workloads(
            "predictive",
            "triangular",
            units=(1.0, 20.0),
            baseline=fast_baseline,
            estimator=fitted_estimator,
        )
        assert results[1].metrics.combined > results[0].metrics.combined


class TestEstimatorCache:
    def test_in_process_cache_returns_same_object(self):
        baseline = BaselineConfig(noise_sigma=0.0, seed=99)
        # Use a tiny profiling load via repetitions=1.
        a = get_estimator(baseline, repetitions=1)
        b = get_estimator(baseline, repetitions=1)
        assert a is b

    def test_disk_cache_round_trip(self, tmp_path):
        baseline = BaselineConfig(noise_sigma=0.0, seed=98)
        a = get_estimator(baseline, cache_dir=tmp_path, repetitions=1)
        # Clear the in-process cache to force the disk path.
        from repro.experiments import runner

        runner._ESTIMATOR_CACHE.clear()
        b = get_estimator(baseline, cache_dir=tmp_path, repetitions=1)
        assert a is not b
        assert a.latency_models[3].a == pytest.approx(b.latency_models[3].a)
        assert list(tmp_path.glob("models_*.json"))
