"""Tests for the per-stage latency breakdown."""

from __future__ import annotations

import pytest

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.topology import build_system
from repro.errors import ConfigurationError
from repro.experiments.breakdown import compute_breakdown
from repro.runtime.executor import PeriodicTaskExecutor
from repro.tasks.state import ReplicaAssignment


@pytest.fixture(scope="module")
def run():
    system = build_system(n_processors=6, seed=21)
    task = aaw_task(noise_sigma=0.0)
    assignment = ReplicaAssignment(
        task, default_initial_placement(task, [p.name for p in system.processors])
    )
    assignment.add_replica(3, "p6")
    executor = PeriodicTaskExecutor(
        system, task, assignment, workload=lambda c: 3000.0
    )
    executor.start(6)
    system.engine.run_until(9.0)
    return executor, task


class TestComputeBreakdown:
    def test_all_stages_present(self, run):
        executor, task = run
        breakdown = compute_breakdown(executor)
        assert [s.subtask_index for s in breakdown.stages] == [1, 2, 3, 4, 5]
        assert breakdown.periods_completed == 6

    def test_shares_sum_to_end_to_end(self, run):
        executor, _ = run
        breakdown = compute_breakdown(executor)
        total = sum(s.mean_stage_s for s in breakdown.stages)
        assert total == pytest.approx(breakdown.mean_end_to_end_s, rel=1e-6)

    def test_exec_matches_ground_truth(self, run):
        executor, task = run
        breakdown = compute_breakdown(executor)
        # Subtask 3 runs with 2 replicas on 1500 tracks each.
        expected = task.subtask(3).service.mean_demand_seconds(1500.0)
        assert breakdown.stage(3).mean_exec_s == pytest.approx(expected, rel=1e-6)
        assert breakdown.stage(3).mean_replicas == 2.0

    def test_dominant_stage_is_a_heavy_one(self, run):
        executor, _ = run
        breakdown = compute_breakdown(executor)
        assert breakdown.dominant_stage().subtask_index in (3, 5)

    def test_first_stage_has_no_message_in(self, run):
        executor, _ = run
        breakdown = compute_breakdown(executor)
        assert breakdown.stage(1).mean_message_in_s == 0.0
        assert breakdown.stage(2).mean_message_in_s > 0.0

    def test_period_range_filter(self, run):
        executor, _ = run
        partial = compute_breakdown(executor, first_period=2, last_period=4)
        assert partial.periods_completed == 3

    def test_empty_range_rejected(self, run):
        executor, _ = run
        with pytest.raises(ConfigurationError):
            compute_breakdown(executor, first_period=99)

    def test_unknown_stage_lookup_rejected(self, run):
        executor, _ = run
        breakdown = compute_breakdown(executor)
        with pytest.raises(ConfigurationError):
            breakdown.stage(9)

    def test_render(self, run):
        executor, _ = run
        text = compute_breakdown(executor).render()
        assert "Filter" in text
        assert "end-to-end" in text
        assert "share" in text
