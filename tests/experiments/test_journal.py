"""Unit tests for :mod:`repro.experiments.journal`."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.campaign import CampaignRow, CampaignSpec
from repro.experiments.journal import (
    JOURNAL_SCHEMA_VERSION,
    CampaignJournal,
    spec_fingerprint,
)
from repro.experiments.metrics import ExperimentMetrics

SPEC = CampaignSpec(units=(10.0, 20.0))
OTHER_SPEC = CampaignSpec(units=(10.0, 30.0))


def _row(i: int) -> CampaignRow:
    return CampaignRow(
        policy="predictive",
        pattern="triangular",
        max_workload_units=10.0 * (i + 1),
        seed_offset=0,
        metrics=ExperimentMetrics(
            missed_deadline_ratio=0.1 * i,
            avg_cpu_utilization=0.5,
            avg_network_utilization=0.25,
            avg_replicas=2.5,
            max_replicas=4,
            periods_released=60,
            periods_missed=6 * i,
            periods_aborted=0,
            rm_actions=7,
        ),
        wall_clock_s=1.25,
        max_rss_kb=1000,
        pid=4242,
        decision_digest=f"digest-{i}",
        tag=f"cell-{i}",
    )


class TestFingerprint:
    def test_stable_for_equal_specs(self):
        assert spec_fingerprint(SPEC) == spec_fingerprint(CampaignSpec(units=(10.0, 20.0)))

    def test_differs_across_specs(self):
        assert spec_fingerprint(SPEC) != spec_fingerprint(OTHER_SPEC)


class TestRoundTrip:
    def test_rows_reload_exactly(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.start(SPEC, n_cells=4)
        journal.append_row(0, _row(0))
        journal.append_row(2, _row(2))
        loaded = CampaignJournal(journal.path).load(SPEC)
        assert sorted(loaded) == [0, 2]
        assert loaded[0] == _row(0)
        assert loaded[2] == _row(2)
        # Exact float reconstruction matters for byte-identical merges.
        assert loaded[2].metrics.missed_deadline_ratio == 0.2

    def test_failed_cells_are_not_returned(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.start(SPEC, n_cells=4)
        journal.append_row(0, _row(0))
        journal.append_failure(1, "cell-1", "worker died", attempts=3)
        loaded = journal.load(SPEC)
        assert sorted(loaded) == [0]

    def test_duplicate_index_keeps_last(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.start(SPEC, n_cells=4)
        journal.append_row(0, _row(0))
        journal.append_row(0, _row(1))
        assert journal.load(SPEC)[0] == _row(1)

    def test_torn_tail_is_tolerated(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.start(SPEC, n_cells=4)
        journal.append_row(0, _row(0))
        journal.append_row(1, _row(1))
        text = journal.path.read_text()
        lines = text.splitlines()
        journal.path.write_text(
            "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        )
        assert sorted(journal.load(SPEC)) == [0]

    def test_malformed_interior_line_raises(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.start(SPEC, n_cells=4)
        with journal.path.open("a") as fh:
            fh.write("{broken\n")
        journal.append_row(0, _row(0))
        with pytest.raises(ConfigurationError, match="malformed"):
            journal.load(SPEC)


class TestHeaderChecks:
    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"kind":"row","index":0}\n')
        with pytest.raises(ConfigurationError, match="header"):
            CampaignJournal(path).load(SPEC)

    def test_fingerprint_mismatch_raises(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.start(SPEC, n_cells=4)
        with pytest.raises(ConfigurationError, match="different campaign spec"):
            journal.load(OTHER_SPEC)

    def test_unsupported_schema_version_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        header = {
            "kind": "header",
            "schema_version": JOURNAL_SCHEMA_VERSION + 1,
            "fingerprint": spec_fingerprint(SPEC),
            "n_cells": 4,
        }
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(ConfigurationError, match="schema version"):
            CampaignJournal(path).load(SPEC)

    def test_start_truncates_previous_journal(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.start(SPEC, n_cells=4)
        journal.append_row(0, _row(0))
        journal.start(SPEC, n_cells=4)
        assert journal.load(SPEC) == {}


class TestCompact:
    def test_compact_drops_tail_and_failures(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.start(SPEC, n_cells=4)
        journal.append_row(0, _row(0))
        journal.append_failure(1, "cell-1", "boom", attempts=2)
        with journal.path.open("a") as fh:
            fh.write('{"kind":"row","ind')  # torn tail
        rows = journal.load(SPEC)
        journal.compact(SPEC, n_cells=4, rows=rows)
        text = journal.path.read_text()
        assert text.endswith("\n")
        assert '"kind":"failed"' not in text
        assert journal.load(SPEC) == rows
        # Appending after compaction yields clean lines again.
        journal.append_row(3, _row(3))
        assert sorted(journal.load(SPEC)) == [0, 3]
