"""The shared indexed pass must equal the full rescans it replaced."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.topology import build_system
from repro.core.manager import AdaptiveResourceManager, RMConfig
from repro.core.predictive import PredictivePolicy
from repro.experiments.config import BaselineConfig
from repro.experiments.export import rm_history_to_csv
from repro.experiments.forecast_eval import calibration_from_run
from repro.experiments.history_index import RunHistoryIndex, decision_event_key
from repro.experiments.metrics import compute_metrics
from repro.experiments.timeline import extract_timeline
from repro.runtime.executor import ExecutorConfig, PeriodicTaskExecutor
from repro.tasks.state import ReplicaAssignment
from repro.workloads.patterns import make_pattern

BASELINE = BaselineConfig(n_periods=25, seed=5)


@pytest.fixture(scope="module")
def finished_run(fitted_estimator):
    """A finished predictive run heavy enough to replicate/shut down."""
    baseline = BASELINE
    system = build_system(
        n_processors=baseline.n_nodes,
        bandwidth_bps=baseline.bandwidth_bps,
        seed=baseline.seed,
    )
    task = aaw_task(
        period=baseline.period,
        deadline=baseline.deadline,
        noise_sigma=baseline.noise_sigma,
    )
    assignment = ReplicaAssignment(
        task, default_initial_placement(task, [p.name for p in system.processors])
    )
    pattern = make_pattern(
        "triangular",
        min_tracks=500.0,
        max_tracks=7500.0,
        n_periods=baseline.n_periods,
    )
    executor = PeriodicTaskExecutor(
        system,
        task,
        assignment,
        workload=pattern,
        config=ExecutorConfig(drop_factor=baseline.drop_factor),
    )
    manager = AdaptiveResourceManager(
        system,
        executor,
        fitted_estimator,
        policy=PredictivePolicy(slack_fraction=baseline.slack_fraction),
        config=RMConfig(initial_d_tracks=500.0),
    )
    manager.start(baseline.n_periods)
    executor.start(baseline.n_periods)
    horizon = baseline.n_periods * baseline.period
    system.engine.run_until(
        horizon + (baseline.drop_factor + 1.0) * baseline.period
    )
    return system, task, executor, manager, horizon


@pytest.fixture()
def index(finished_run):
    _, _, executor, manager, _ = finished_run
    return RunHistoryIndex(executor, manager).update()


def legacy_action_rows(manager):
    """The pre-index full-history scan (verbatim from the old export)."""
    rows = []
    for event in manager.history:
        for outcome in event.outcomes:
            if outcome.changed:
                rows.append(
                    (
                        event.time,
                        "replicate",
                        outcome.subtask_index,
                        "+".join(outcome.added_processors),
                        event.total_replicas,
                    )
                )
        for subtask_index, processor in event.shutdowns:
            rows.append(
                (
                    event.time,
                    "shutdown",
                    subtask_index,
                    processor,
                    event.total_replicas,
                )
            )
        for subtask_index, dead, target in event.recoveries:
            rows.append(
                (
                    event.time,
                    "recovery",
                    subtask_index,
                    f"{dead}->{target or 'evicted'}",
                    event.total_replicas,
                )
            )
    return rows


class TestViewEquality:
    def test_run_has_decisions_to_index(self, finished_run, index):
        # Guard: an empty history would make every equality vacuous.
        assert len(index.action_rows()) > 0
        assert index.actions_taken() > 0

    def test_action_rows_match_legacy_scan(self, finished_run, index):
        _, _, _, manager, _ = finished_run
        assert index.action_rows() == legacy_action_rows(manager)

    def test_replica_samples_match_manager(self, finished_run, index):
        _, _, _, manager, _ = finished_run
        assert index.replica_samples() == manager.replica_samples()

    def test_actions_taken_match_manager(self, finished_run, index):
        _, _, _, manager, _ = finished_run
        assert index.actions_taken() == manager.actions_taken()

    @pytest.mark.parametrize("window", [(0.0, 1e9), (1.0, 3.0), (2.5, 2.6)])
    def test_windowed_replica_mean_is_exact(self, finished_run, index, window):
        _, _, _, manager, _ = finished_run
        t_start, t_end = window
        samples = [
            count
            for time, count in manager.replica_samples()
            if t_start <= time < t_end
        ]
        expected = sum(samples) / len(samples) if samples else None
        assert index.windowed_replica_mean(t_start, t_end) == expected

    @pytest.mark.parametrize("t_end_factor", [0.5, 1.0, 10.0])
    def test_period_counts_match_legacy_filter(
        self, finished_run, index, t_end_factor
    ):
        _, _, executor, _, horizon = finished_run
        t_end = horizon * t_end_factor
        records = [r for r in executor.records if r.release_time < t_end]
        released = len(records)
        missed = sum(
            1
            for r in records
            if r.missed or (not r.completed and not r.aborted)
        )
        aborted = sum(1 for r in records if r.aborted)
        assert index.period_counts(t_end) == (released, missed, aborted)

    def test_record_of_period(self, finished_run, index):
        _, _, executor, _, _ = finished_run
        for record in executor.records:
            assert index.record_of_period(record.period_index) is record
        assert index.record_of_period(10_000) is None


class TestConsumerEquality:
    def test_metrics_with_and_without_index_equal(self, finished_run, index):
        system, _, executor, manager, horizon = finished_run
        legacy = compute_metrics(system, executor, manager, 0.0, horizon)
        indexed = compute_metrics(
            system, executor, manager, 0.0, horizon, index=index
        )
        assert indexed == legacy

    def test_csv_with_and_without_index_byte_identical(
        self, finished_run, index, tmp_path
    ):
        _, _, _, manager, _ = finished_run
        adhoc = rm_history_to_csv(manager, tmp_path / "adhoc.csv")
        shared = rm_history_to_csv(
            manager, tmp_path / "shared.csv", index=index
        )
        assert shared.read_bytes() == adhoc.read_bytes()
        assert adhoc.read_text().count("\n") > 1  # header + real rows

    def test_timeline_with_and_without_index_equal(self, finished_run, index):
        _, _, executor, manager, _ = finished_run
        legacy = extract_timeline(executor, manager)
        indexed = extract_timeline(executor, manager, index=index)
        for name in (
            "periods",
            "workload_tracks",
            "latency_s",
            "missed",
            "total_replicas",
            "rm_acted",
        ):
            a, b = getattr(legacy, name), getattr(indexed, name)
            assert np.array_equal(a, b, equal_nan=a.dtype.kind == "f"), name

    def test_calibration_with_and_without_index_equal(
        self, finished_run, index
    ):
        _, task, executor, manager, _ = finished_run
        legacy = calibration_from_run(
            task, executor, manager, BASELINE.n_periods
        )
        indexed = calibration_from_run(
            task, executor, manager, BASELINE.n_periods, index=index
        )
        assert indexed == legacy


class TestDigest:
    def test_update_is_idempotent(self, finished_run, index):
        digest = index.decision_digest
        index.update()
        index.update()
        assert index.decision_digest == digest

    def test_fresh_index_agrees(self, finished_run, index):
        _, _, executor, manager, _ = finished_run
        fresh = RunHistoryIndex(executor, manager).update()
        assert fresh.decision_digest == index.decision_digest

    def test_digest_covers_the_whole_history(self, finished_run, index):
        import hashlib

        _, _, _, manager, _ = finished_run
        expected = hashlib.sha256()
        for event in manager.history:
            expected.update(repr(decision_event_key(event)).encode())
        assert index.decision_digest == expected.hexdigest()

    def test_decision_event_key_is_stable_and_hashable(self, finished_run):
        _, _, _, manager, _ = finished_run
        keys = [decision_event_key(e) for e in manager.history]
        assert len(set(keys)) == len(keys)  # distinct steps, distinct keys
