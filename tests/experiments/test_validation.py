"""Tests for the paper-claims validation module."""

from __future__ import annotations

import pytest

from repro.experiments.config import BaselineConfig
from repro.experiments.validation import render_checks, validate_reproduction


@pytest.fixture(scope="module")
def checks(fitted_estimator):
    return validate_reproduction(
        baseline=BaselineConfig(n_periods=20, seed=8),
        estimator=fitted_estimator,
        units=(1.0, 10.0, 20.0),
    )


class TestValidation:
    def test_all_claims_checked(self, checks):
        assert len(checks) == 6
        claims = [c.claim for c in checks]
        assert any("identical at small workloads" in c for c in claims)
        assert any("combined metric" in c for c in claims)

    def test_core_claims_pass(self, checks):
        """The reproduction's headline claims hold on the reduced sweep."""
        by_claim = {c.claim: c for c in checks}
        assert by_claim[
            "policies identical at small workloads (no replication)"
        ].passed
        assert by_claim["non-predictive uses more subtask replicas"].passed

    def test_majority_of_claims_pass(self, checks):
        assert sum(1 for c in checks if c.passed) >= 5

    def test_details_populated(self, checks):
        for check in checks:
            assert check.detail

    def test_render(self, checks):
        text = render_checks(checks)
        assert "verdict" in text
        assert "PASS" in text
