"""Unit tests for text rendering."""

from __future__ import annotations

from repro.experiments.report import (
    format_series_table,
    format_sparkline,
    format_table,
    paper_vs_measured,
)


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"], [["x", 1.0], ["longer", 2.5]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456], [12345.6], [0.0]])
        assert "0.123" in text
        assert "1.235e+04" in text

    def test_zero_renders_compactly(self):
        assert "0" in format_table(["v"], [[0.0]])


class TestSeriesTable:
    def test_columns_per_series(self):
        text = format_series_table(
            "x", [1.0, 2.0], {"a": [0.1, 0.2], "b": [0.3, 0.4]}
        )
        header = text.splitlines()[0]
        assert "x" in header and "a" in header and "b" in header


class TestSparkline:
    def test_length_bounded(self):
        assert len(format_sparkline(list(range(100)), width=40)) <= 40

    def test_empty(self):
        assert format_sparkline([]) == ""

    def test_flat_series(self):
        line = format_sparkline([1.0, 1.0, 1.0])
        assert len(set(line)) == 1


class TestPaperVsMeasured:
    def test_headers(self):
        text = paper_vs_measured([("MD ordering", "nonpred lower", "equal")])
        assert "aspect" in text
        assert "paper" in text
        assert "measured" in text
