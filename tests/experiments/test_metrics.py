"""Unit tests for the §5.2 metric set."""

from __future__ import annotations

import pytest

from repro.experiments.metrics import ExperimentMetrics


def metrics(**kwargs):
    defaults = dict(
        missed_deadline_ratio=0.1,
        avg_cpu_utilization=0.2,
        avg_network_utilization=0.3,
        avg_replicas=6.0,
        max_replicas=12,
    )
    defaults.update(kwargs)
    return ExperimentMetrics(**defaults)


class TestCombinedMetric:
    def test_combined_is_sum_of_four_terms(self):
        m = metrics()
        assert m.replica_ratio == pytest.approx(0.5)
        assert m.combined == pytest.approx(0.1 + 0.2 + 0.3 + 0.5)

    def test_zero_max_replicas_guarded(self):
        m = metrics(max_replicas=0)
        assert m.replica_ratio == 0.0

    def test_lower_is_better_ordering(self):
        good = metrics(missed_deadline_ratio=0.0, avg_replicas=2.0)
        bad = metrics(missed_deadline_ratio=0.5, avg_replicas=12.0)
        assert good.combined < bad.combined

    def test_as_dict_keys(self):
        assert set(metrics().as_dict()) == {
            "missed", "cpu", "net", "replicas", "replica_ratio", "combined",
        }
