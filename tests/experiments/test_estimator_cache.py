"""Tests for the two-level (memory + disk) estimator cache."""

from __future__ import annotations

import pytest

from repro.bench.app import aaw_task
from repro.experiments import estimator_cache
from repro.experiments.config import BaselineConfig
from repro.regression.buffer_model import BufferDelayModel
from repro.regression.comm import CommunicationDelayModel
from repro.regression.estimator import TimingEstimator
from repro.regression.latency_model import ExecutionLatencyModel
from repro.regression.transmission import TransmissionModel


def _stub_estimator(baseline: BaselineConfig) -> TimingEstimator:
    """A cheap handcrafted estimator (no profiling campaign)."""
    task = aaw_task(
        period=baseline.period,
        deadline=baseline.deadline,
        noise_sigma=baseline.noise_sigma,
    )
    models = {
        subtask.index: ExecutionLatencyModel(
            subtask_name=subtask.name,
            a=(0.1, 0.05, 0.2 + subtask.index),
            b=(1.0, 0.5, 2.0),
        )
        for subtask in task.subtasks
    }
    comm = CommunicationDelayModel(
        buffer=BufferDelayModel(k_ms_per_track=0.01),
        transmission=TransmissionModel(
            bandwidth_bps=baseline.bandwidth_bps,
            overhead_bytes=baseline.message_overhead_bytes,
        ),
    )
    return TimingEstimator(task=task, latency_models=models, comm_model=comm)


@pytest.fixture()
def isolated_cache(monkeypatch):
    """Snapshot/restore the process-wide memory cache and stats."""
    saved = dict(estimator_cache._MEMORY_CACHE)
    estimator_cache._MEMORY_CACHE.clear()
    estimator_cache.STATS.reset()
    yield
    estimator_cache._MEMORY_CACHE.clear()
    estimator_cache._MEMORY_CACHE.update(saved)
    estimator_cache.STATS.reset()


@pytest.fixture()
def counted_builds(monkeypatch):
    """Replace the profiling campaign with a counted stub fit."""
    calls = {"n": 0}

    def fake_build(task, **kwargs):
        calls["n"] += 1
        return _stub_estimator(BaselineConfig())

    monkeypatch.setattr(estimator_cache, "build_estimator", fake_build)
    return calls


class TestGetEstimator:
    def test_memory_hit_returns_same_object(self, isolated_cache, counted_builds):
        baseline = BaselineConfig(seed=301)
        a = estimator_cache.get_estimator(baseline)
        b = estimator_cache.get_estimator(baseline)
        assert a is b
        assert counted_builds["n"] == 1
        assert estimator_cache.STATS.memory_hits == 1
        assert estimator_cache.STATS.fits == 1

    def test_disk_hit_skips_refit(self, isolated_cache, counted_builds, tmp_path):
        """The second load (fresh memory cache) must not re-profile."""
        baseline = BaselineConfig(seed=302)
        first = estimator_cache.get_estimator(baseline, cache_dir=tmp_path)
        assert counted_builds["n"] == 1
        assert estimator_cache.cache_path(
            tmp_path, estimator_cache.cache_key(baseline)
        ).exists()

        estimator_cache.clear_memory_cache()
        second = estimator_cache.get_estimator(baseline, cache_dir=tmp_path)
        assert counted_builds["n"] == 1, "disk hit must not refit"
        assert estimator_cache.STATS.disk_hits == 1
        assert second is not first
        for index, model in first.latency_models.items():
            assert second.latency_models[index].a == pytest.approx(model.a)
            assert second.latency_models[index].b == pytest.approx(model.b)

    def test_distinct_baselines_get_distinct_fits(
        self, isolated_cache, counted_builds
    ):
        estimator_cache.get_estimator(BaselineConfig(seed=303))
        estimator_cache.get_estimator(BaselineConfig(seed=304))
        assert counted_builds["n"] == 2

    def test_repetitions_part_of_key(self, isolated_cache, counted_builds):
        baseline = BaselineConfig(seed=305)
        estimator_cache.get_estimator(baseline, repetitions=1)
        estimator_cache.get_estimator(baseline, repetitions=2)
        assert counted_builds["n"] == 2


class TestWarm:
    def test_explicit_estimator_persisted_exactly(self, isolated_cache, tmp_path):
        baseline = BaselineConfig(seed=306)
        supplied = _stub_estimator(baseline)
        path = estimator_cache.warm(baseline, tmp_path, estimator=supplied)
        assert path.exists()

        estimator_cache.clear_memory_cache()
        loaded = estimator_cache.get_estimator(baseline, cache_dir=tmp_path)
        for index, model in supplied.latency_models.items():
            # JSON float round-trips are exact: bit-identical coefficients.
            assert loaded.latency_models[index].a == model.a
            assert loaded.latency_models[index].b == model.b
        assert (
            loaded.comm_model.buffer.k_ms_per_track
            == supplied.comm_model.buffer.k_ms_per_track
        )

    def test_memory_hit_still_writes_disk_file(
        self, isolated_cache, counted_builds, tmp_path
    ):
        """Warming after an in-memory fit must still produce the file."""
        baseline = BaselineConfig(seed=307)
        estimator_cache.get_estimator(baseline)  # memory only, no cache_dir
        path = estimator_cache.warm(baseline, tmp_path)
        assert path.exists()
        assert counted_builds["n"] == 1
