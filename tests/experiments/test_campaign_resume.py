"""Resumable campaigns: journal, crash, resume, byte-identical merge.

The acceptance gate: a campaign killed mid-flight (including by
``SIGKILL``, which runs no cleanup handlers) and resumed with
``--resume`` produces a :meth:`CampaignResult.deterministic_json`
byte-identical to an uninterrupted run of the same spec.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.errors import ConfigurationError
from repro.experiments.campaign import CampaignSpec, run_campaign
from repro.experiments.config import BaselineConfig
from repro.experiments.journal import CampaignJournal

SPEC = CampaignSpec(
    policies=("predictive", "nonpredictive"),
    units=(10.0, 20.0),
    baseline=BaselineConfig(n_periods=8, seed=3),
    repetitions=1,
)


@pytest.fixture(scope="module")
def reference_json(tmp_path_factory):
    cache = tmp_path_factory.mktemp("estimators")
    result = run_campaign(SPEC, n_jobs=1, cache_dir=cache)
    return result.deterministic_json(), cache


class TestJournaledRuns:
    def test_journal_records_every_cell(self, reference_json, tmp_path):
        ref, cache = reference_json
        journal = tmp_path / "j.jsonl"
        result = run_campaign(SPEC, n_jobs=1, cache_dir=cache, journal=journal)
        assert result.deterministic_json() == ref
        loaded = CampaignJournal(journal).load(SPEC)
        assert sorted(loaded) == list(range(SPEC.n_runs))

    def test_resume_after_torn_crash_is_byte_identical(
        self, reference_json, tmp_path
    ):
        ref, cache = reference_json
        journal = tmp_path / "j.jsonl"
        run_campaign(SPEC, n_jobs=1, cache_dir=cache, journal=journal)
        lines = journal.read_text().splitlines()
        # Keep the header + one complete row, tear the second row.
        journal.write_text(
            "\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2]
        )
        resumed = run_campaign(
            SPEC, n_jobs=1, cache_dir=cache, journal=journal, resume=True
        )
        assert resumed.deterministic_json() == ref
        assert sorted(CampaignJournal(journal).load(SPEC)) == list(
            range(SPEC.n_runs)
        )

    def test_resume_with_complete_journal_runs_nothing(
        self, reference_json, tmp_path
    ):
        ref, cache = reference_json
        journal = tmp_path / "j.jsonl"
        run_campaign(SPEC, n_jobs=1, cache_dir=cache, journal=journal)
        progress_lines: list[str] = []
        resumed = run_campaign(
            SPEC,
            n_jobs=1,
            cache_dir=cache,
            journal=journal,
            resume=True,
            progress=progress_lines.append,
        )
        assert resumed.deterministic_json() == ref
        # Only the resume banner — no per-cell progress lines.
        assert len(progress_lines) == 1
        assert progress_lines[0].startswith("resuming:")

    def test_resume_requires_journal(self):
        with pytest.raises(ConfigurationError, match="requires a journal"):
            run_campaign(SPEC, resume=True)

    def test_resume_rejects_foreign_journal(self, reference_json, tmp_path):
        _, cache = reference_json
        journal = tmp_path / "j.jsonl"
        run_campaign(SPEC, n_jobs=1, cache_dir=cache, journal=journal)
        other = CampaignSpec(
            policies=("predictive",),
            units=(10.0,),
            baseline=BaselineConfig(n_periods=8, seed=3),
            repetitions=1,
        )
        with pytest.raises(ConfigurationError, match="different campaign spec"):
            run_campaign(
                other, n_jobs=1, cache_dir=cache, journal=journal, resume=True
            )


class TestSigkillResume:
    def test_sigkilled_campaign_resumes_byte_identically(
        self, reference_json, tmp_path
    ):
        """Kill the campaign process with SIGKILL after two journaled
        cells, resume, and require a byte-identical merged result."""
        ref, cache = reference_json
        journal = tmp_path / "j.jsonl"
        script = textwrap.dedent(
            f"""
            import os, signal
            from repro.experiments.campaign import CampaignSpec, run_campaign
            from repro.experiments.config import BaselineConfig

            spec = CampaignSpec(
                policies=("predictive", "nonpredictive"),
                units=(10.0, 20.0),
                baseline=BaselineConfig(n_periods=8, seed=3),
                repetitions=1,
            )
            count = 0
            def progress(line):
                global count
                count += 1
                # The journal append for this cell already happened:
                # SIGKILL here models dying between cells with no
                # cleanup (atexit, finally) running at all.
                if count == 2:
                    os.kill(os.getpid(), signal.SIGKILL)
            run_campaign(
                spec, n_jobs=1, cache_dir={str(cache)!r},
                journal={str(journal)!r}, progress=progress,
            )
            """
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
        journaled = CampaignJournal(journal).load(SPEC)
        assert sorted(journaled) == [0, 1]

        resumed = run_campaign(
            SPEC, n_jobs=1, cache_dir=cache, journal=journal, resume=True
        )
        assert resumed.deterministic_json() == ref
        assert resumed.failed == ()
