"""Tests for CSV/JSON export."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.export import (
    SCHEMA_VERSION,
    check_schema_version,
    figure_from_csv,
    figure_to_csv,
    metrics_from_json,
    metrics_to_json,
)
from repro.experiments.figures import FigureData
from repro.experiments.metrics import ExperimentMetrics


def sample_figure():
    return FigureData(
        figure_id="F",
        title="t",
        x_label="x",
        x_values=[1.0, 2.0, 3.0],
        series={"a": [0.1, 0.2, 0.3], "b": [1.0, 2.0, 3.0]},
    )


def sample_metrics():
    return ExperimentMetrics(
        missed_deadline_ratio=0.1,
        avg_cpu_utilization=0.2,
        avg_network_utilization=0.3,
        avg_replicas=4.0,
        max_replicas=12,
        periods_released=60,
        periods_missed=6,
        rm_actions=9,
    )


class TestFigureCsv:
    def test_round_trip(self, tmp_path):
        path = figure_to_csv(sample_figure(), tmp_path / "fig.csv")
        x_label, x_values, series = figure_from_csv(path)
        assert x_label == "x"
        assert x_values == [1.0, 2.0, 3.0]
        assert series == {"a": [0.1, 0.2, 0.3], "b": [1.0, 2.0, 3.0]}

    def test_header_row_written(self, tmp_path):
        path = figure_to_csv(sample_figure(), tmp_path / "fig.csv")
        first = path.read_text().splitlines()[0]
        assert first == "x,a,b"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ConfigurationError):
            figure_from_csv(path)

    def test_headerless_file_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("justone\n1\n")
        with pytest.raises(ConfigurationError):
            figure_from_csv(path)


class TestRmHistoryCsv:
    def test_decision_log_round_trip(self, tmp_path):
        from repro.bench.app import aaw_task, default_initial_placement
        from repro.cluster.topology import build_system
        from repro.core.manager import AdaptiveResourceManager, RMConfig
        from repro.core.predictive import PredictivePolicy
        from repro.experiments.export import rm_history_to_csv
        from repro.runtime.executor import PeriodicTaskExecutor
        from repro.tasks.state import ReplicaAssignment

        from tests.conftest import exact_estimator

        system = build_system(n_processors=6, seed=2)
        task = aaw_task(noise_sigma=0.0)
        assignment = ReplicaAssignment(
            task,
            default_initial_placement(task, [p.name for p in system.processors]),
        )
        executor = PeriodicTaskExecutor(
            system, task, assignment,
            workload=lambda c: 6000.0 if c < 8 else 300.0,
        )
        manager = AdaptiveResourceManager(
            system, executor, exact_estimator(task),
            policy=PredictivePolicy(), config=RMConfig(initial_d_tracks=300.0),
        )
        manager.start(16)
        executor.start(16)
        system.engine.run_until(18.0)

        path = rm_history_to_csv(manager, tmp_path / "rm.csv")
        lines = path.read_text().splitlines()
        assert lines[0] == "time,kind,subtask,processors,total_replicas"
        kinds = {line.split(",")[1] for line in lines[1:]}
        # Load step up then down: both action kinds appear.
        assert "replicate" in kinds
        assert "shutdown" in kinds
        # One row per action taken.
        actions = sum(
            sum(1 for o in ev.outcomes if o.changed) + len(ev.shutdowns)
            + len(ev.recoveries)
            for ev in manager.history
        )
        assert len(lines) - 1 == actions


class TestMetricsJson:
    def test_round_trip(self, tmp_path):
        path = metrics_to_json(sample_metrics(), tmp_path / "m.json")
        data = metrics_from_json(path)
        assert data["missed"] == 0.1
        assert data["combined"] == pytest.approx(0.1 + 0.2 + 0.3 + 4 / 12)
        assert data["rm_actions"] == 9
        assert data["periods_released"] == 60

    def test_extra_fields(self, tmp_path):
        path = metrics_to_json(
            sample_metrics(), tmp_path / "m.json", extra={"policy": "predictive"}
        )
        assert metrics_from_json(path)["policy"] == "predictive"

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            metrics_from_json(tmp_path / "ghost.json")


class TestSchemaVersion:
    def test_exports_are_stamped(self, tmp_path):
        path = metrics_to_json(sample_metrics(), tmp_path / "m.json")
        data = metrics_from_json(path)
        assert data["schema_version"] == SCHEMA_VERSION == 2

    def test_extra_cannot_unstamp(self, tmp_path):
        path = metrics_to_json(
            sample_metrics(), tmp_path / "m.json", extra={"schema_version": 99}
        )
        assert metrics_from_json(path)["schema_version"] == SCHEMA_VERSION

    def test_v1_payload_loads_with_warning(self, tmp_path):
        # A pre-v2 export: same fields, no schema_version stamp.
        path = metrics_to_json(sample_metrics(), tmp_path / "m.json")
        import json

        payload = json.loads(path.read_text())
        del payload["schema_version"]
        path.write_text(json.dumps(payload))
        with pytest.warns(UserWarning, match="schema version 1"):
            data = metrics_from_json(path)
        assert data["missed"] == 0.1  # v1 round-trips fully

    def test_newer_schema_rejected(self, tmp_path):
        path = metrics_to_json(sample_metrics(), tmp_path / "m.json")
        import json

        payload = json.loads(path.read_text())
        payload["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError):
            metrics_from_json(path)

    def test_bad_stamp_rejected(self):
        with pytest.raises(ConfigurationError):
            check_schema_version({"schema_version": "two"})
