"""Tests for in-vivo forecast calibration."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import BaselineConfig, ExperimentConfig
from repro.experiments.forecast_eval import (
    CalibrationReport,
    ForecastSample,
    evaluate_forecasts,
)


class TestForecastSample:
    def test_signed_error(self):
        sample = ForecastSample(
            time=1.0, subtask_index=3, replica_count=2,
            forecast_s=0.3, observed_s=0.2,
        )
        assert sample.error_s == pytest.approx(0.1)
        assert sample.absolute_percentage_error == pytest.approx(0.5)


class TestCalibrationReport:
    def make(self, errors):
        samples = tuple(
            ForecastSample(
                time=float(i), subtask_index=3, replica_count=2,
                forecast_s=0.2 + e, observed_s=0.2,
            )
            for i, e in enumerate(errors)
        )
        return CalibrationReport(samples=samples)

    def test_empty_report(self):
        report = CalibrationReport(samples=())
        assert report.n == 0
        assert report.mape == 0.0
        assert report.pessimism_rate == 0.0

    def test_statistics(self):
        report = self.make([0.1, -0.1, 0.0, 0.2])
        assert report.n == 4
        assert report.mean_error_s == pytest.approx(0.05)
        assert report.pessimism_rate == pytest.approx(0.75)
        assert report.mape == pytest.approx((0.5 + 0.5 + 0.0 + 1.0) / 4)


class TestEvaluateForecasts:
    @pytest.fixture(scope="class")
    def report(self, fitted_estimator):
        config = ExperimentConfig(
            policy="predictive",
            pattern="triangular",
            max_workload_units=15.0,
            baseline=BaselineConfig(n_periods=25, noise_sigma=0.0, seed=2),
        )
        return evaluate_forecasts(config, estimator=fitted_estimator)

    def test_decisions_are_audited(self, report):
        assert report.n > 0
        for sample in report.samples:
            assert sample.subtask_index in (3, 5)
            assert sample.forecast_s > 0.0
            assert sample.observed_s > 0.0

    def test_forecasts_are_usably_accurate(self, report):
        """The regression forecasts land within the right ballpark —
        the property the whole predictive approach rests on."""
        assert report.mape < 1.0  # within 2x on average

    def test_requires_predictive_policy(self, fitted_estimator):
        config = ExperimentConfig(
            policy="nonpredictive",
            pattern="triangular",
            max_workload_units=10.0,
            baseline=BaselineConfig(n_periods=10),
        )
        with pytest.raises(ConfigurationError):
            evaluate_forecasts(config, estimator=fitted_estimator)
