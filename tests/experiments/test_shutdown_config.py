"""Runner plumbing for the shutdown-strategy configuration."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import BaselineConfig, ExperimentConfig
from repro.experiments.runner import run_experiment


def test_invalid_shutdown_strategy_rejected():
    with pytest.raises(ConfigurationError):
        BaselineConfig(shutdown_strategy="random")


@pytest.mark.parametrize("strategy", ["lifo", "forecast_aware"])
def test_both_strategies_run(strategy, fitted_estimator):
    config = ExperimentConfig(
        policy="predictive",
        pattern="triangular",
        max_workload_units=10.0,
        baseline=BaselineConfig(
            n_periods=12, noise_sigma=0.0, seed=2, shutdown_strategy=strategy
        ),
    )
    result = run_experiment(config, estimator=fitted_estimator)
    assert result.metrics.periods_released == 12


def test_forecast_aware_never_shuts_down_into_infeasibility(fitted_estimator):
    """With the forecast-aware strategy, the periods *after* a shutdown
    never miss because of that shutdown (the veto guarantees the model
    deems the smaller set sufficient)."""
    config = ExperimentConfig(
        policy="predictive",
        pattern="triangular",
        max_workload_units=15.0,
        baseline=BaselineConfig(
            n_periods=25, noise_sigma=0.0, seed=2,
            shutdown_strategy="forecast_aware",
        ),
    )
    result = run_experiment(config, estimator=fitted_estimator)
    assert result.metrics.missed_deadline_ratio <= 0.25
