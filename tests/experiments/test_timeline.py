"""Tests for timeline extraction and rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.topology import build_system
from repro.core.manager import AdaptiveResourceManager, RMConfig
from repro.core.predictive import PredictivePolicy
from repro.errors import ConfigurationError
from repro.experiments.timeline import Timeline, extract_timeline, render_timeline
from repro.runtime.executor import PeriodicTaskExecutor
from repro.tasks.state import ReplicaAssignment

from tests.conftest import exact_estimator


@pytest.fixture(scope="module")
def finished_run():
    system = build_system(n_processors=6, seed=13)
    task = aaw_task(noise_sigma=0.0)
    assignment = ReplicaAssignment(
        task, default_initial_placement(task, [p.name for p in system.processors])
    )
    executor = PeriodicTaskExecutor(
        system, task, assignment, workload=lambda c: 6000.0 if c >= 5 else 400.0
    )
    manager = AdaptiveResourceManager(
        system, executor, exact_estimator(task),
        policy=PredictivePolicy(), config=RMConfig(initial_d_tracks=400.0),
    )
    manager.start(20)
    executor.start(20)
    system.engine.run_until(23.0)
    return executor, manager, task


class TestExtractTimeline:
    def test_aligned_lengths(self, finished_run):
        executor, manager, _ = finished_run
        timeline = extract_timeline(executor, manager)
        assert len(timeline) == 20
        for array in (
            timeline.workload_tracks,
            timeline.latency_s,
            timeline.missed,
            timeline.total_replicas,
            timeline.rm_acted,
        ):
            assert array.shape == (20,)

    def test_workload_matches_pattern(self, finished_run):
        executor, manager, _ = finished_run
        timeline = extract_timeline(executor, manager)
        assert timeline.workload_tracks[0] == 400.0
        assert timeline.workload_tracks[10] == 6000.0

    def test_replicas_forward_filled(self, finished_run):
        executor, manager, _ = finished_run
        timeline = extract_timeline(executor, manager)
        assert np.isfinite(timeline.total_replicas[1:]).all()

    def test_adaptation_points_match_history(self, finished_run):
        executor, manager, _ = finished_run
        timeline = extract_timeline(executor, manager)
        adapted = timeline.adaptation_periods()
        assert adapted  # the workload step forces adaptation
        acted_times = {
            int(round(ev.time)) for ev in manager.history if ev.acted
        }
        assert set(adapted) == acted_times

    def test_miss_ratio_matches_records(self, finished_run):
        executor, manager, _ = finished_run
        timeline = extract_timeline(executor, manager)
        expected = sum(1 for r in executor.records if r.missed) / 20
        assert timeline.miss_ratio() == pytest.approx(expected)

    def test_empty_run_rejected(self):
        system = build_system(n_processors=2, seed=1)
        task = aaw_task(noise_sigma=0.0)
        assignment = ReplicaAssignment(
            task, default_initial_placement(task, ["p1", "p2"])
        )
        executor = PeriodicTaskExecutor(
            system, task, assignment, workload=lambda c: 100.0
        )
        manager = AdaptiveResourceManager(
            system, executor, exact_estimator(task), policy=PredictivePolicy()
        )
        with pytest.raises(ConfigurationError):
            extract_timeline(executor, manager)


class TestRenderTimeline:
    def test_contains_all_strips(self, finished_run):
        executor, manager, task = finished_run
        text = render_timeline(
            extract_timeline(executor, manager), deadline_s=task.deadline
        )
        for label in ("workload", "latency", "replicas", "misses", "adapted"):
            assert label in text
        assert "990 ms" in text

    def test_strip_width_matches_periods(self, finished_run):
        executor, manager, _ = finished_run
        text = render_timeline(extract_timeline(executor, manager))
        miss_line = next(l for l in text.splitlines() if l.startswith("misses"))
        assert miss_line.count(".") + miss_line.count("!") == 20

    def test_shed_periods_marked(self):
        timeline = Timeline(
            periods=np.arange(3),
            workload_tracks=np.array([1.0, 2.0, 3.0]),
            latency_s=np.array([0.1, np.nan, 0.2]),
            missed=np.array([False, True, False]),
            total_replicas=np.array([2.0, 2.0, 2.0]),
            rm_acted=np.array([False, False, True]),
        )
        text = render_timeline(timeline)
        latency_line = next(
            l for l in text.splitlines() if l.startswith("latency")
        )
        assert "x" in latency_line
