"""Tests for the figure-series generators (reduced sweeps for speed)."""

from __future__ import annotations

import pytest

from repro.experiments.config import BaselineConfig
from repro.experiments.figures import (
    PANEL_METRICS,
    ablation_deadline_strategy,
    ablation_slack_fraction,
    ablation_utilization_threshold,
    combined_figure,
    extended_threshold_sweep,
    fig8_workload_patterns,
    metric_panels,
)

UNITS = (1.0, 10.0, 20.0)


@pytest.fixture(scope="module")
def fast_baseline():
    return BaselineConfig(n_periods=12, noise_sigma=0.0, seed=5)


class TestFig8:
    def test_three_patterns_generated(self):
        data = fig8_workload_patterns(max_workload_units=10.0, n_periods=20)
        assert set(data.series) == {"increasing", "decreasing", "triangular"}
        assert len(data.x_values) == 20

    def test_series_respect_bounds(self):
        data = fig8_workload_patterns(max_workload_units=10.0, n_periods=20)
        for series in data.series.values():
            assert max(series) <= 5000.0
            assert min(series) >= 0.0

    def test_render_contains_title(self):
        text = fig8_workload_patterns(n_periods=5).render()
        assert "Figure 8" in text


class TestMetricPanels:
    def test_four_panels_two_series_each(self, fast_baseline, fitted_estimator):
        panels = metric_panels(
            "Figure 9",
            "triangular",
            units=UNITS,
            baseline=fast_baseline,
            estimator=fitted_estimator,
        )
        assert set(panels) == set(PANEL_METRICS)
        for panel in panels.values():
            assert set(panel.series) == {"predictive", "nonpredictive"}
            assert all(len(s) == len(UNITS) for s in panel.series.values())

    def test_replica_panel_shows_overallocation(
        self, fast_baseline, fitted_estimator
    ):
        panels = metric_panels(
            "Figure 9",
            "triangular",
            units=(20.0,),
            baseline=fast_baseline,
            estimator=fitted_estimator,
        )
        replicas = panels["d"].series
        assert replicas["nonpredictive"][0] >= replicas["predictive"][0]


class TestCombinedFigure:
    def test_combined_series_shape(self, fast_baseline, fitted_estimator):
        data = combined_figure(
            "Figure 10",
            "triangular",
            units=UNITS,
            baseline=fast_baseline,
            estimator=fitted_estimator,
        )
        assert set(data.series) == {"predictive", "nonpredictive"}
        assert len(data.x_values) == 3

    def test_identical_at_tiny_workload(self, fast_baseline, fitted_estimator):
        """Paper: both algorithms perform the same when no replication is
        needed."""
        data = combined_figure(
            "Figure 10",
            "triangular",
            units=(1.0,),
            baseline=fast_baseline,
            estimator=fitted_estimator,
        )
        assert data.series["predictive"][0] == pytest.approx(
            data.series["nonpredictive"][0], rel=0.05
        )


class TestExtensionStudies:
    def test_extended_sweep_axis(self, fast_baseline, fitted_estimator):
        data = extended_threshold_sweep(
            units=(25.0, 30.0),
            baseline=fast_baseline,
            estimator=fitted_estimator,
        )
        assert data.x_values == [25.0, 30.0]

    def test_slack_ablation(self, fast_baseline, fitted_estimator):
        data = ablation_slack_fraction(
            fractions=(0.1, 0.3),
            max_workload_units=10.0,
            baseline=fast_baseline,
            estimator=fitted_estimator,
        )
        assert set(data.series) == {"missed", "replica_ratio", "combined"}
        assert len(data.series["combined"]) == 2

    def test_threshold_ablation(self, fast_baseline, fitted_estimator):
        data = ablation_utilization_threshold(
            thresholds=(0.2, 0.6),
            max_workload_units=10.0,
            baseline=fast_baseline,
            estimator=fitted_estimator,
        )
        assert len(data.series["replica_ratio"]) == 2

    def test_deadline_strategy_ablation(self, fast_baseline, fitted_estimator):
        data = ablation_deadline_strategy(
            strategies=("sequential_eqf", "proportional"),
            max_workload_units=10.0,
            baseline=fast_baseline,
            estimator=fitted_estimator,
        )
        assert data.strategy_names == ["sequential_eqf", "proportional"]
        assert len(data.series["combined"]) == 2
