"""Tests for the one-shot reproduction report."""

from __future__ import annotations

import pytest

from repro.experiments.config import BaselineConfig
from repro.experiments.paper_report import PaperReport, generate_report


@pytest.fixture(scope="module")
def small_report(fitted_estimator):
    return generate_report(
        baseline=BaselineConfig(n_periods=10, noise_sigma=0.0, seed=3),
        units=(1.0, 10.0),
        estimator=fitted_estimator,
        include_tables=False,  # table 2/3 re-profile; keep the test fast
    )


class TestGenerateReport:
    def test_sections_present(self, small_report):
        titles = [s.title for s in small_report.sections]
        assert any("Figure 8" in t for t in titles)
        assert any("Figure 10" in t for t in titles)
        assert any("Figure 13" in t for t in titles)
        assert any("validation" in t for t in titles)

    def test_elapsed_recorded(self, small_report):
        assert small_report.elapsed_s > 0.0

    def test_markdown_structure(self, small_report):
        text = small_report.to_markdown()
        assert text.startswith("# Reproduction report")
        assert text.count("## ") == len(small_report.sections)
        assert "predictive" in text

    def test_write(self, small_report, tmp_path):
        path = small_report.write(tmp_path / "report.md")
        assert path.exists()
        assert path.read_text() == small_report.to_markdown()

    def test_section_toggles(self, fitted_estimator):
        report = generate_report(
            baseline=BaselineConfig(n_periods=6, noise_sigma=0.0, seed=3),
            units=(1.0,),
            estimator=fitted_estimator,
            include_tables=False,
            include_figures=False,
            include_validation=False,
        )
        assert report.sections == []


class TestPaperReportContainer:
    def test_add_and_render(self):
        report = PaperReport()
        report.add("A", "body-a")
        report.add("B", "body-b")
        text = report.to_markdown()
        assert "## A" in text and "body-a" in text
        assert text.index("## A") < text.index("## B")
