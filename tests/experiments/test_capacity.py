"""Tests for offline capacity planning."""

from __future__ import annotations

import pytest

from repro.bench.app import aaw_task
from repro.errors import ConfigurationError
from repro.experiments.capacity import plan_capacity

from tests.conftest import exact_estimator

GRID = (500.0, 2000.0, 5000.0, 10000.0, 17500.0)


@pytest.fixture(scope="module")
def plan():
    task = aaw_task(noise_sigma=0.0)
    return plan_capacity(exact_estimator(task), GRID, utilization=0.0)


class TestPlanCapacity:
    def test_one_point_per_workload(self, plan):
        assert [p.d_tracks for p in plan.points] == list(GRID)

    def test_replicas_cover_replicable_subtasks(self, plan):
        for point in plan.points:
            assert set(point.replicas) == {3, 5}
            for k in point.replicas.values():
                assert 1 <= k <= plan.n_processors

    def test_replica_demand_monotone_in_workload(self, plan):
        totals = [p.total_replicas for p in plan.points]
        assert totals == sorted(totals)

    def test_small_workload_needs_no_replication(self, plan):
        assert plan.points[0].replicas == {3: 1, 5: 1}
        assert plan.points[0].feasible

    def test_large_workload_needs_heavy_replication(self, plan):
        heavy = plan.points[-1]
        assert heavy.replicas[3] >= 4

    def test_forecast_consistent_with_feasibility(self, plan):
        task = aaw_task(noise_sigma=0.0)
        for point in plan.points:
            if point.feasible:
                assert point.forecast_end_to_end_s <= task.deadline + 1e-9

    def test_higher_assumed_utilization_plans_more_replicas(self):
        task = aaw_task(noise_sigma=0.0)
        estimator = exact_estimator(task)
        # The analytic estimator ignores u, so use the fitted one's
        # behaviour indirectly: shrink the machine instead.
        small = plan_capacity(estimator, (10000.0,), n_processors=3)
        large = plan_capacity(estimator, (10000.0,), n_processors=6)
        assert small.points[0].replicas[3] <= large.points[0].replicas[3] or (
            not small.points[0].feasible
        )

    def test_fitted_estimator_utilization_sensitivity(self, fitted_estimator):
        relaxed = plan_capacity(fitted_estimator, (8000.0,), utilization=0.0)
        stressed = plan_capacity(fitted_estimator, (8000.0,), utilization=0.6)
        assert (
            stressed.points[0].total_replicas
            >= relaxed.points[0].total_replicas
        )

    def test_saturation_detection(self):
        task = aaw_task(noise_sigma=0.0)
        plan = plan_capacity(
            exact_estimator(task),
            (500.0, 30000.0, 60000.0),
            n_processors=6,
            utilization=0.0,
        )
        saturation = plan.saturation_tracks()
        assert saturation is not None
        assert saturation >= 30000.0

    def test_render(self, plan):
        text = plan.render()
        assert "k(st3)" in text
        assert "feasible" in text


class TestValidation:
    def test_empty_grid_rejected(self):
        task = aaw_task(noise_sigma=0.0)
        with pytest.raises(ConfigurationError):
            plan_capacity(exact_estimator(task), ())

    def test_descending_grid_rejected(self):
        task = aaw_task(noise_sigma=0.0)
        with pytest.raises(ConfigurationError):
            plan_capacity(exact_estimator(task), (2000.0, 500.0))

    def test_nonpositive_workload_rejected(self):
        task = aaw_task(noise_sigma=0.0)
        with pytest.raises(ConfigurationError):
            plan_capacity(exact_estimator(task), (0.0, 500.0))
