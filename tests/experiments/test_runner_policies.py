"""Runner integration with registry-resolved (extension) policies."""

from __future__ import annotations

import pytest

from repro.experiments.config import BaselineConfig, ExperimentConfig
from repro.experiments.runner import run_experiment


@pytest.fixture(scope="module")
def fast_baseline():
    return BaselineConfig(n_periods=10, noise_sigma=0.0, seed=12)


@pytest.mark.parametrize("policy", ["noadapt", "staticmax", "hybrid"])
def test_extension_policies_run_via_config(policy, fast_baseline, fitted_estimator):
    config = ExperimentConfig(
        policy=policy,
        pattern="triangular",
        max_workload_units=10.0,
        baseline=fast_baseline,
    )
    result = run_experiment(config, estimator=fitted_estimator)
    assert result.metrics.periods_released == 10


def test_noadapt_never_replicates(fast_baseline, fitted_estimator):
    config = ExperimentConfig(
        policy="noadapt",
        pattern="constant",
        max_workload_units=20.0,
        baseline=fast_baseline,
    )
    result = run_experiment(config, estimator=fitted_estimator)
    assert result.metrics.avg_replicas == pytest.approx(2.0)
    assert result.metrics.missed_deadline_ratio > 0.5


def test_staticmax_ordering(fast_baseline, fitted_estimator):
    metrics = {}
    for policy in ("noadapt", "predictive", "staticmax"):
        config = ExperimentConfig(
            policy=policy,
            pattern="constant",
            max_workload_units=15.0,
            baseline=fast_baseline,
        )
        metrics[policy] = run_experiment(config, estimator=fitted_estimator).metrics
    assert (
        metrics["noadapt"].avg_replicas
        <= metrics["predictive"].avg_replicas
        <= metrics["staticmax"].avg_replicas
    )
    assert metrics["staticmax"].missed_deadline_ratio <= (
        metrics["noadapt"].missed_deadline_ratio
    )


def test_tracer_categories_cover_a_full_run():
    """Every event category shows up during an adaptive run with tracing."""
    from repro.bench.app import aaw_task, default_initial_placement
    from repro.cluster.topology import build_system
    from repro.core.manager import AdaptiveResourceManager, RMConfig
    from repro.core.predictive import PredictivePolicy
    from repro.runtime.executor import PeriodicTaskExecutor
    from repro.sim.trace import Tracer
    from repro.tasks.state import ReplicaAssignment

    from tests.conftest import exact_estimator

    tracer = Tracer(categories=["job", "message", "period", "rm", "failure"])
    system = build_system(n_processors=6, seed=1, tracer=tracer)
    task = aaw_task(noise_sigma=0.0)
    assignment = ReplicaAssignment(
        task, default_initial_placement(task, [p.name for p in system.processors])
    )
    executor = PeriodicTaskExecutor(
        system, task, assignment, workload=lambda c: 6000.0
    )
    manager = AdaptiveResourceManager(
        system, executor, exact_estimator(task),
        policy=PredictivePolicy(), config=RMConfig(initial_d_tracks=1000.0),
    )
    manager.start(6)
    executor.start(6)
    system.processor("p6").fail()
    system.engine.run_until(8.0)

    categories = {record.category for record in tracer.records}
    assert {"job", "message", "period", "rm", "failure"} <= categories
