"""Unit tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.SimulationError,
            errors.SchedulingError,
            errors.ClusterError,
            errors.PlacementError,
            errors.TaskModelError,
            errors.RegressionError,
            errors.InsufficientDataError,
            errors.ProfilingError,
            errors.AllocationError,
            errors.ConfigurationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_scheduling_is_simulation_error(self):
        assert issubclass(errors.SchedulingError, errors.SimulationError)

    def test_insufficient_data_is_regression_error(self):
        assert issubclass(errors.InsufficientDataError, errors.RegressionError)

    def test_placement_is_cluster_error(self):
        assert issubclass(errors.PlacementError, errors.ClusterError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.AllocationError("nope")
