"""Unit tests for track-stream generation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.units import TRACK_BYTES
from repro.workloads.patterns import ConstantPattern, IncreasingRamp
from repro.workloads.sensors import Track, TrackStreamGenerator


def generator(pattern=None, seed=0):
    pattern = pattern or ConstantPattern(min_tracks=0.0, max_tracks=10.0, n_periods=5)
    return TrackStreamGenerator(pattern, seed=seed)


class TestTrack:
    def test_size_is_table1_value(self):
        track = Track(track_id=1, x=0, y=0, vx=0, vy=0, threat=0.5)
        assert track.size_bytes == TRACK_BYTES == 80


class TestGenerator:
    def test_batch_size_follows_pattern(self):
        pattern = IncreasingRamp(min_tracks=2.0, max_tracks=10.0, n_periods=5)
        gen = generator(pattern)
        assert len(gen.batch(0)) == 2
        assert len(gen.batch(4)) == 10

    def test_identities_persist_across_periods(self):
        gen = generator()
        first = {t.track_id for t in gen.batch(0)}
        second = {t.track_id for t in gen.batch(1)}
        assert first == second

    def test_shrinking_picture_drops_newest(self):
        pattern = IncreasingRamp(min_tracks=5.0, max_tracks=5.0, n_periods=3)
        gen = generator(pattern)
        gen.batch(0)
        # Force shrink by switching to a smaller pattern value via a new
        # generator with a decreasing shape.
        from repro.workloads.patterns import DecreasingRamp

        pattern = DecreasingRamp(min_tracks=2.0, max_tracks=6.0, n_periods=3)
        gen = TrackStreamGenerator(pattern, seed=0)
        big = {t.track_id for t in gen.batch(0)}
        small = {t.track_id for t in gen.batch(2)}
        assert small < big  # survivors are the oldest tracks

    def test_tracks_move_between_periods(self):
        gen = generator()
        before = {t.track_id: (t.x, t.y) for t in gen.batch(0)}
        after = {t.track_id: (t.x, t.y) for t in gen.batch(1)}
        moved = [
            tid for tid in before
            if before[tid] != after[tid]
        ]
        assert moved  # at least some tracks have non-zero velocity

    def test_threat_stays_in_unit_interval(self):
        gen = generator()
        for period in range(5):
            for track in gen.batch(period):
                assert 0.0 <= track.threat <= 1.0

    def test_reproducible_given_seed(self):
        a = generator(seed=3).batch(0)
        b = generator(seed=3).batch(0)
        assert [(t.track_id, t.x) for t in a] == [(t.track_id, t.x) for t in b]

    def test_negative_period_rejected(self):
        with pytest.raises(ConfigurationError):
            generator().batch(-1)

    def test_total_bytes(self):
        pattern = ConstantPattern(min_tracks=0.0, max_tracks=10.0, n_periods=2)
        gen = generator(pattern)
        assert gen.total_bytes(0) == 10 * TRACK_BYTES
