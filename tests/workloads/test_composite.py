"""Tests for composite patterns and mission profiles."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.workloads.patterns import (
    CompositePattern,
    ConstantPattern,
    DecreasingRamp,
    IncreasingRamp,
    mission_profile,
)


class TestCompositePattern:
    def test_segments_play_in_sequence(self):
        composite = CompositePattern.of(
            ConstantPattern(0.0, 100.0, 3),
            ConstantPattern(0.0, 900.0, 2),
        )
        assert [composite(i) for i in range(5)] == [100, 100, 100, 900, 900]

    def test_local_indices_restart_per_segment(self):
        composite = CompositePattern.of(
            ConstantPattern(0.0, 100.0, 2),
            IncreasingRamp(0.0, 1000.0, 11),
        )
        assert composite(2) == 0.0       # ramp period 0
        assert composite(12) == 1000.0   # ramp period 10

    def test_last_segment_continues_beyond_end(self):
        composite = CompositePattern.of(
            ConstantPattern(0.0, 100.0, 2),
            DecreasingRamp(50.0, 500.0, 5),
        )
        assert composite(100) == 50.0  # ramp clamps at its minimum

    def test_total_length_is_sum(self):
        composite = CompositePattern.of(
            ConstantPattern(0.0, 1.0, 3), ConstantPattern(0.0, 2.0, 4)
        )
        assert composite.n_periods == 7

    def test_bounds_derived_from_segments(self):
        composite = CompositePattern.of(
            ConstantPattern(10.0, 100.0, 2),
            ConstantPattern(5.0, 900.0, 2),
        )
        assert composite.min_tracks == 5.0
        assert composite.max_tracks == 900.0

    def test_empty_composite_rejected(self):
        with pytest.raises(ConfigurationError):
            CompositePattern.of()
        with pytest.raises(ConfigurationError):
            CompositePattern(
                min_tracks=0.0, max_tracks=1.0, n_periods=1, segments=()
            )


class TestMissionProfiles:
    @pytest.mark.parametrize("name", ["raid", "escort", "skirmishes"])
    def test_profiles_build_and_stay_bounded(self, name):
        profile = mission_profile(name, max_tracks=8000.0, quiet_tracks=400.0)
        series = profile.series()
        assert len(series) == profile.n_periods
        assert series.min() >= 400.0
        assert series.max() <= 8000.0

    def test_raid_shape(self):
        profile = mission_profile("raid", max_tracks=8000.0, quiet_tracks=400.0)
        assert profile(0) == 400.0        # patrol
        assert profile(12) == 8000.0      # raid plateau
        assert profile(profile.n_periods - 1) < 8000.0  # clearing

    def test_skirmishes_alternate(self):
        profile = mission_profile("skirmishes", max_tracks=8000.0)
        series = profile.series()
        assert (series == 500.0).sum() >= 12  # quiet stretches
        assert series.max() > 4000.0          # engagements

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            mission_profile("armageddon")
