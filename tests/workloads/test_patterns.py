"""Unit tests for workload patterns (Figure 8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.patterns import (
    PATTERN_NAMES,
    BurstyPattern,
    ConstantPattern,
    DecreasingRamp,
    IncreasingRamp,
    SinusoidPattern,
    StepPattern,
    TriangularPattern,
    make_pattern,
)


class TestValidation:
    def test_negative_min_rejected(self):
        with pytest.raises(ConfigurationError):
            IncreasingRamp(min_tracks=-1.0, max_tracks=10.0, n_periods=10)

    def test_max_below_min_rejected(self):
        with pytest.raises(ConfigurationError):
            IncreasingRamp(min_tracks=10.0, max_tracks=5.0, n_periods=10)

    def test_zero_periods_rejected(self):
        with pytest.raises(ConfigurationError):
            IncreasingRamp(min_tracks=0.0, max_tracks=10.0, n_periods=0)

    def test_negative_period_index_rejected(self):
        pattern = IncreasingRamp(min_tracks=0.0, max_tracks=10.0, n_periods=10)
        with pytest.raises(ConfigurationError):
            pattern(-1)


class TestIncreasingRamp:
    def test_endpoints(self):
        pattern = IncreasingRamp(min_tracks=100.0, max_tracks=1000.0, n_periods=10)
        assert pattern(0) == 100.0
        assert pattern(9) == 1000.0

    def test_monotone_nondecreasing(self):
        pattern = IncreasingRamp(min_tracks=100.0, max_tracks=1000.0, n_periods=20)
        series = pattern.series()
        assert np.all(np.diff(series) >= 0)

    def test_clamped_beyond_run(self):
        pattern = IncreasingRamp(min_tracks=100.0, max_tracks=1000.0, n_periods=10)
        assert pattern(100) == 1000.0


class TestDecreasingRamp:
    def test_endpoints(self):
        pattern = DecreasingRamp(min_tracks=100.0, max_tracks=1000.0, n_periods=10)
        assert pattern(0) == 1000.0
        assert pattern(9) == 100.0

    def test_mirror_of_increasing(self):
        inc = IncreasingRamp(min_tracks=100.0, max_tracks=1000.0, n_periods=10)
        dec = DecreasingRamp(min_tracks=100.0, max_tracks=1000.0, n_periods=10)
        for i in range(10):
            assert inc(i) + dec(i) == pytest.approx(1100.0)


class TestTriangular:
    def test_starts_at_min(self):
        pattern = TriangularPattern(
            min_tracks=100.0, max_tracks=1000.0, n_periods=40, cycle_periods=20
        )
        assert pattern(0) == 100.0

    def test_peaks_at_half_cycle(self):
        pattern = TriangularPattern(
            min_tracks=100.0, max_tracks=1000.0, n_periods=40, cycle_periods=20
        )
        assert pattern(10) == pytest.approx(1000.0)

    def test_periodicity(self):
        pattern = TriangularPattern(
            min_tracks=100.0, max_tracks=1000.0, n_periods=100, cycle_periods=20
        )
        for i in range(20):
            assert pattern(i) == pytest.approx(pattern(i + 20))

    def test_stays_within_bounds(self):
        pattern = TriangularPattern(
            min_tracks=100.0, max_tracks=1000.0, n_periods=60
        )
        series = pattern.series()
        assert series.min() >= 100.0
        assert series.max() <= 1000.0

    def test_alternates_up_and_down(self):
        pattern = TriangularPattern(
            min_tracks=0.0, max_tracks=100.0, n_periods=40, cycle_periods=20
        )
        diffs = np.diff(pattern.series(20))
        assert (diffs[:9] > 0).all()
        assert (diffs[11:19] < 0).all()

    def test_default_cycle_gives_two_cycles(self):
        pattern = TriangularPattern(min_tracks=0.0, max_tracks=100.0, n_periods=60)
        assert pattern._cycle() == 30


class TestOtherPatterns:
    def test_constant(self):
        pattern = ConstantPattern(min_tracks=0.0, max_tracks=500.0, n_periods=10)
        assert set(pattern.series()) == {500.0}

    def test_step(self):
        pattern = StepPattern(
            min_tracks=100.0, max_tracks=900.0, n_periods=10, step_period=5
        )
        assert pattern(4) == 100.0
        assert pattern(5) == 900.0

    def test_step_default_midpoint(self):
        pattern = StepPattern(min_tracks=1.0, max_tracks=2.0, n_periods=10)
        assert pattern(4) == 1.0
        assert pattern(5) == 2.0

    def test_sinusoid_bounds_and_start(self):
        pattern = SinusoidPattern(
            min_tracks=100.0, max_tracks=900.0, n_periods=40, cycle_periods=20
        )
        series = pattern.series()
        assert series.min() >= 100.0 - 1e-9
        assert series.max() <= 900.0 + 1e-9
        assert pattern(0) == pytest.approx(100.0)

    def test_bursty_reproducible(self):
        a = BurstyPattern(min_tracks=100.0, max_tracks=900.0, n_periods=30, seed=5)
        b = BurstyPattern(min_tracks=100.0, max_tracks=900.0, n_periods=30, seed=5)
        assert list(a.series()) == list(b.series())

    def test_bursty_respects_bounds(self):
        pattern = BurstyPattern(
            min_tracks=100.0, max_tracks=900.0, n_periods=50, seed=1
        )
        series = pattern.series()
        assert series.min() >= 100.0
        assert series.max() <= 900.0

    def test_bursty_probability_extremes(self):
        never = BurstyPattern(
            min_tracks=1.0, max_tracks=2.0, n_periods=20, burst_probability=0.0
        )
        assert set(never.series()) == {1.0}

    def test_bursty_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            BurstyPattern(
                min_tracks=1.0, max_tracks=2.0, n_periods=5, burst_probability=1.5
            )


class TestFactory:
    @pytest.mark.parametrize("name", PATTERN_NAMES)
    def test_all_names_construct(self, name):
        pattern = make_pattern(name, 100.0, 1000.0, 20)
        series = pattern.series()
        assert len(series) == 20
        assert (series >= 0).all()

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_pattern("sawtooth", 0.0, 1.0, 10)
