"""Fuzz battery: the whole RM stack under random configurations.

Short random experiments (any policy, any pattern, random workload
scale, optional failure) must never raise and must always leave the
placement invariants intact — the catch-all net under every feature
interaction.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.topology import build_system
from repro.core.allocation import get_policy
from repro.core.manager import AdaptiveResourceManager, RMConfig
from repro.core.shutdown import ForecastAwareShutdown, LifoShutdown
from repro.runtime.executor import ExecutorConfig, PeriodicTaskExecutor
from repro.tasks.state import ReplicaAssignment
from repro.workloads.patterns import make_pattern

from tests.conftest import exact_estimator

configurations = st.fixed_dictionaries(
    {
        "policy": st.sampled_from(
            ["predictive", "nonpredictive", "staticmax", "noadapt", "hybrid",
             "market", "fairshare", "oracle"]
        ),
        "pattern": st.sampled_from(
            ["increasing", "decreasing", "triangular", "constant", "step",
             "bursty"]
        ),
        "max_tracks": st.floats(min_value=100.0, max_value=18_000.0,
                                allow_nan=False),
        "n_processors": st.integers(min_value=2, max_value=8),
        "seed": st.integers(min_value=0, max_value=50),
        "forecast_shutdown": st.booleans(),
        "fail_node": st.booleans(),
        "node_clocks": st.booleans(),
    }
)

N_PERIODS = 6


class TestFuzzedRuns:
    @settings(max_examples=60, deadline=None)
    @given(config=configurations)
    def test_random_runs_preserve_invariants(self, config):
        system = build_system(
            n_processors=config["n_processors"], seed=config["seed"]
        )
        task = aaw_task(noise_sigma=0.05)
        names = [p.name for p in system.processors]
        assignment = ReplicaAssignment(
            task, default_initial_placement(task, names)
        )
        pattern = make_pattern(
            config["pattern"],
            min_tracks=min(100.0, config["max_tracks"]),
            max_tracks=config["max_tracks"],
            n_periods=N_PERIODS,
        )
        executor = PeriodicTaskExecutor(
            system, task, assignment, workload=pattern,
            config=ExecutorConfig(use_node_clocks=config["node_clocks"]),
        )
        manager = AdaptiveResourceManager(
            system,
            executor,
            exact_estimator(task),
            policy=get_policy(config["policy"]),
            config=RMConfig(initial_d_tracks=100.0),
            shutdown_strategy=(
                ForecastAwareShutdown()
                if config["forecast_shutdown"]
                else LifoShutdown()
            ),
        )
        manager.start(N_PERIODS)
        executor.start(N_PERIODS)
        if config["fail_node"]:
            system.engine.schedule_at(
                2.5, system.processors[config["seed"] % len(names)].fail
            )
        system.engine.run_until(N_PERIODS + 3.0)

        # Every period terminated.
        assert len(executor.records) == N_PERIODS
        for record in executor.records:
            assert record.completed or record.aborted
        # Placement invariants held.
        failed = system.failed_processor_names()
        for subtask in task.subtasks:
            processors = assignment.processors_of(subtask.index)
            assert 1 <= len(processors) <= config["n_processors"]
            assert len(set(processors)) == len(processors)
            if not subtask.replicable:
                assert len(processors) == 1
        # The manager stepped every period.
        assert len(manager.history) == N_PERIODS
        # Replica totals stayed in range at every step.
        for event in manager.history:
            assert 2 <= event.total_replicas <= 2 * config["n_processors"]
