"""Property-based tests for the utilization meter."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.metering import UtilizationMeter

# Alternating busy/idle span lengths.
spans = st.lists(
    st.floats(min_value=1e-4, max_value=5.0, allow_nan=False),
    min_size=1,
    max_size=40,
)


def build_meter(spans, start_busy=True):
    meter = UtilizationMeter(max_window=1000.0)
    t = 0.0
    busy = start_busy
    intervals = []
    for span in spans:
        meter.set_busy(t, busy)
        if busy:
            intervals.append((t, t + span))
        t += span
    meter.set_busy(t, False)
    return meter, intervals, t


def exact_busy(intervals, a, b):
    total = 0.0
    for lo, hi in intervals:
        total += max(0.0, min(hi, b) - max(lo, a))
    return total


class TestMeterMatchesExactIntegral:
    @settings(max_examples=60)
    @given(spans=spans, start_busy=st.booleans())
    def test_busy_between_matches_interval_arithmetic(self, spans, start_busy):
        meter, intervals, end = build_meter(spans, start_busy)
        # Probe a handful of windows.
        probes = [
            (0.0, end),
            (0.0, end / 2),
            (end / 3, end),
            (end / 4, 3 * end / 4),
        ]
        for a, b in probes:
            if b < a:
                continue
            assert abs(meter.busy_between(a, b) - exact_busy(intervals, a, b)) < 1e-9

    @settings(max_examples=60)
    @given(spans=spans)
    def test_utilization_bounded(self, spans):
        meter, _, end = build_meter(spans)
        if end > 0:
            u = meter.utilization(end, min(end, 999.0) or 1.0)
            assert 0.0 <= u <= 1.0

    @settings(max_examples=60)
    @given(spans=spans)
    def test_busy_between_is_additive(self, spans):
        meter, _, end = build_meter(spans)
        mid = end / 2
        whole = meter.busy_between(0.0, end)
        parts = meter.busy_between(0.0, mid) + meter.busy_between(mid, end)
        assert abs(whole - parts) < 1e-9

    @settings(max_examples=60)
    @given(spans=spans)
    def test_busy_between_monotone_in_right_endpoint(self, spans):
        meter, _, end = build_meter(spans)
        previous = 0.0
        steps = 10
        for i in range(1, steps + 1):
            value = meter.busy_between(0.0, end * i / steps)
            assert value >= previous - 1e-12
            previous = value
