"""Property tests for the allocator zoo's hardening contracts.

Two invariants every cycle-scoped allocator must uphold regardless of
workload, budget, or cluster size:

* **exclusion safety** — a processor in
  ``AllocationContext.excluded_processors`` never receives a replica;
* **capacity-floor compatibility** — exclusion sets produced by
  :class:`~repro.core.hardening.PlacementGuard` honor the
  ``guard_min_available`` floor, and under any such set the allocators
  still place only on admissible processors while at least the floor's
  worth of the live cluster stays schedulable.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.topology import build_system
from repro.core.allocation import AllocationContext
from repro.core.deadlines import DeadlineAssignment
from repro.core.hardening import (
    HardeningConfig,
    PlacementGuard,
    sanitize_reading,
)
from repro.core.zoo import FairShareAllocator, MarketAllocator, OracleAllocator
from repro.tasks.state import ReplicaAssignment

from tests.conftest import exact_estimator

ZOO = (MarketAllocator, FairShareAllocator, OracleAllocator)

scenarios = st.fixed_dictionaries(
    {
        "allocator": st.sampled_from(range(len(ZOO))),
        "n_processors": st.integers(min_value=2, max_value=8),
        "d_tracks": st.floats(
            min_value=100.0, max_value=20_000.0, allow_nan=False
        ),
        "budget": st.floats(min_value=0.02, max_value=1.0, allow_nan=False),
        "excluded_mask": st.integers(min_value=0, max_value=255),
        "seed": st.integers(min_value=0, max_value=20),
    }
)


def _make_context(n_processors, d_tracks, budget, excluded, seed):
    """A single-cycle context over the benchmark task."""
    system = build_system(n_processors=n_processors, seed=seed)
    task = aaw_task(noise_sigma=0.0)
    placement = default_initial_placement(
        task, [p.name for p in system.processors]
    )
    assignment = ReplicaAssignment(task, placement)
    deadlines = DeadlineAssignment(
        subtask_deadlines={s.index: budget for s in task.subtasks},
        message_deadlines={m.index: 0.0 for m in task.messages},
        strategy="test",
    )
    return AllocationContext(
        task=task,
        assignment=assignment,
        system=system,
        estimator=exact_estimator(task),
        deadlines=deadlines,
        d_tracks=d_tracks,
        total_periodic_tracks=d_tracks,
        candidates=(3, 5),
        excluded_processors=excluded,
    )


class TestExclusionSafety:
    @settings(max_examples=80, deadline=None)
    @given(config=scenarios)
    def test_excluded_processors_never_receive_replicas(self, config):
        names = [f"p{i + 1}" for i in range(config["n_processors"])]
        excluded = frozenset(
            name
            for bit, name in enumerate(names)
            if config["excluded_mask"] >> bit & 1
        )
        context = _make_context(
            config["n_processors"],
            config["d_tracks"],
            config["budget"],
            excluded,
            config["seed"],
        )
        allocator = ZOO[config["allocator"]]()
        before = {
            s.index: set(context.assignment.processors_of(s.index))
            for s in context.task.subtasks
        }
        plan = allocator.allocate(context)
        for outcome in plan.outcomes:
            assert not set(outcome.added_processors) & excluded
        # The full placement diff agrees with the reported outcomes.
        for subtask in context.task.subtasks:
            grown = (
                set(context.assignment.processors_of(subtask.index))
                - before[subtask.index]
            )
            assert not grown & excluded


class TestCapacityFloor:
    @settings(max_examples=40, deadline=None)
    @given(
        n_processors=st.integers(min_value=2, max_value=8),
        floor=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        corrupt_mask=st.integers(min_value=0, max_value=255),
        allocator_index=st.sampled_from(range(len(ZOO))),
    )
    def test_guard_exclusions_leave_floor_and_stay_respected(
        self, n_processors, floor, corrupt_mask, allocator_index
    ):
        system = build_system(n_processors=n_processors, seed=0)
        config = HardeningConfig(guard_min_available=floor)
        guard = PlacementGuard(system, config)
        # Corrupt a random subset of utilization readings so the guard
        # has something to exclude (NaN can never be a busy fraction).
        corrupted = set()
        for bit, processor in enumerate(system.processors):
            if corrupt_mask >> bit & 1:
                processor.reading_fault = lambda reading: float("nan")
                corrupted.add(processor.name)
        guard.observe(1.0)
        excluded = guard.excluded(1.0)

        live = {p.name for p in system.processors if not p.failed}
        min_available = math.ceil(len(live) * floor)
        assert len(live - excluded) >= min_available
        # Everything the guard *did* exclude was genuinely corrupted.
        assert excluded <= corrupted
        # Under the floor's budget the guard sheds worst-first until it
        # would starve placement.
        assert len(excluded) == min(len(corrupted & live), len(live) - min_available)

        context = _make_context(
            n_processors, 5000.0, 0.1, excluded, seed=1
        )
        for processor in context.system.processors:
            if processor.name in corrupted:
                processor.reading_fault = lambda reading: float("nan")
        context = AllocationContext(
            task=context.task,
            assignment=context.assignment,
            system=context.system,
            estimator=context.estimator,
            deadlines=context.deadlines,
            d_tracks=context.d_tracks,
            total_periodic_tracks=context.total_periodic_tracks,
            candidates=context.candidates,
            excluded_processors=excluded,
            reading_guard=lambda reading: sanitize_reading(reading, 1.0),
        )
        plan = ZOO[allocator_index]().allocate(context)
        for outcome in plan.outcomes:
            assert not set(outcome.added_processors) & excluded
