"""Property-based tests for workload patterns."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.patterns import PATTERN_NAMES, make_pattern

bounds = st.tuples(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
).map(lambda pair: (min(pair), max(pair)))


class TestPatternInvariants:
    @settings(max_examples=60)
    @given(
        name=st.sampled_from(PATTERN_NAMES),
        bounds=bounds,
        n_periods=st.integers(min_value=1, max_value=120),
        probe=st.integers(min_value=0, max_value=500),
    )
    def test_values_always_within_bounds(self, name, bounds, n_periods, probe):
        lo, hi = bounds
        pattern = make_pattern(name, lo, hi, n_periods)
        value = pattern(probe)
        if name == "constant":
            assert value == hi
        else:
            assert lo - 1e-9 <= value <= hi + 1e-9

    @settings(max_examples=60)
    @given(
        name=st.sampled_from(PATTERN_NAMES),
        bounds=bounds,
        n_periods=st.integers(min_value=1, max_value=120),
    )
    def test_series_matches_pointwise_evaluation(self, name, bounds, n_periods):
        lo, hi = bounds
        pattern = make_pattern(name, lo, hi, n_periods)
        series = pattern.series()
        assert len(series) == n_periods
        for i, value in enumerate(series):
            assert value == pattern(i)

    @settings(max_examples=60)
    @given(bounds=bounds, n_periods=st.integers(min_value=2, max_value=120))
    def test_increasing_ramp_monotone(self, bounds, n_periods):
        lo, hi = bounds
        pattern = make_pattern("increasing", lo, hi, n_periods)
        series = pattern.series()
        assert all(a <= b + 1e-9 for a, b in zip(series, series[1:]))

    @settings(max_examples=60)
    @given(bounds=bounds, n_periods=st.integers(min_value=2, max_value=120))
    def test_ramps_are_mirrors(self, bounds, n_periods):
        lo, hi = bounds
        inc = make_pattern("increasing", lo, hi, n_periods)
        dec = make_pattern("decreasing", lo, hi, n_periods)
        for i in range(n_periods):
            assert inc(i) + dec(i) == max(
                lo + hi, 0.0
            ) or abs(inc(i) + dec(i) - (lo + hi)) < 1e-6

    @settings(max_examples=60)
    @given(
        bounds=bounds,
        cycle=st.integers(min_value=2, max_value=40),
        k=st.integers(min_value=0, max_value=5),
        i=st.integers(min_value=0, max_value=39),
    )
    def test_triangular_periodicity(self, bounds, cycle, k, i):
        lo, hi = bounds
        pattern = make_pattern(
            "triangular", lo, hi, 200, cycle_periods=cycle
        )
        if i < cycle:
            assert pattern(i) == pattern(i + k * cycle)
