"""Property-based tests for the load-shedding degradation layer."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.degradation import DataShedder

offers = st.lists(
    st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    min_size=1,
    max_size=50,
)

#: One control action: tighten by a factor in (0, 1) at a reference
#: load, or relax by a factor > 1 toward an offered load.
actions = st.lists(
    st.tuples(
        st.sampled_from(["tighten", "relax"]),
        st.floats(min_value=0.05, max_value=0.95, allow_nan=False),
        st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
    ),
    max_size=40,
)


def apply_action(shedder: DataShedder, action) -> None:
    kind, fraction, reference = action
    if kind == "tighten":
        shedder.tighten(fraction, reference)
    else:
        shedder.relax(1.0 + fraction, reference)


class TestShedderInvariants:
    @settings(max_examples=80)
    @given(
        min_cap=st.floats(min_value=1.0, max_value=1e3, allow_nan=False),
        script=actions,
    )
    def test_cap_never_below_mandatory_floor(self, min_cap, script):
        shedder = DataShedder(offered=lambda c: 100.0, min_cap_tracks=min_cap)
        for action in script:
            apply_action(shedder, action)
            assert shedder.cap_tracks >= min_cap

    @settings(max_examples=80)
    @given(
        factor=st.floats(min_value=1.0001, max_value=4.0, allow_nan=False),
        offered=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        start_cap=st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
    )
    def test_recovery_is_monotone(self, factor, offered, start_cap):
        shedder = DataShedder(offered=lambda c: offered)
        shedder.cap_tracks = start_cap
        before = shedder.cap_tracks
        shedder.relax(factor, offered)
        assert shedder.cap_tracks >= before

    @settings(max_examples=80)
    @given(
        factor=st.floats(min_value=1.1, max_value=4.0, allow_nan=False),
        offered=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    )
    def test_recovery_reaches_release(self, factor, offered):
        """Repeated relaxation always ends in 'process everything'."""
        shedder = DataShedder(offered=lambda c: offered)
        shedder.cap_tracks = 1.0
        for _ in range(200):
            if shedder.cap_tracks == float("inf"):
                break
            shedder.relax(factor, offered)
        assert shedder.cap_tracks == float("inf")

    @settings(max_examples=80)
    @given(offered=offers, script=actions)
    def test_shed_fraction_within_unit_interval(self, offered, script):
        shedder = DataShedder(offered=lambda c: offered[c])
        for period, action in zip(range(len(offered)), script):
            shedder(period)
            apply_action(shedder, action)
        for period in range(len(offered)):
            shedder(period)
        assert 0.0 <= shedder.shed_fraction <= 1.0

    @settings(max_examples=80)
    @given(
        offered=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
        cap=st.floats(min_value=1.0, max_value=1e5, allow_nan=False),
    )
    def test_processed_is_capped_minimum(self, offered, cap):
        shedder = DataShedder(offered=lambda c: offered)
        shedder.cap_tracks = cap
        processed = shedder(0)
        assert processed == min(offered, cap)
        assert math.isfinite(processed)
