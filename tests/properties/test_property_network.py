"""Property-based tests of the shared-medium queueing discipline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.network import Network
from repro.sim.engine import Engine

sends = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),   # time
        st.floats(min_value=1.0, max_value=500_000.0, allow_nan=False),  # bytes
    ),
    min_size=1,
    max_size=20,
)


def run(send_specs, mode="shared"):
    engine = Engine()
    network = Network(
        engine, bandwidth_bps=100e6, default_overhead_bytes=100.0, mode=mode
    )
    messages = []
    for at, payload in send_specs:
        engine.schedule_at(
            at, lambda p=payload: messages.append(network.send_bytes(p))
        )
    engine.run()
    return network, messages


class TestSharedMediumInvariants:
    @settings(max_examples=50, deadline=None)
    @given(specs=sends)
    def test_all_messages_delivered(self, specs):
        network, messages = run(specs)
        assert network.delivered_count == len(specs)
        assert all(m.delivery_time is not None for m in messages)

    @settings(max_examples=50, deadline=None)
    @given(specs=sends)
    def test_fifo_delivery_order(self, specs):
        _, messages = run(specs)
        ordered = sorted(messages, key=lambda m: (m.enqueue_time, m.message_id))
        deliveries = [m.delivery_time for m in ordered]
        assert deliveries == sorted(deliveries)

    @settings(max_examples=50, deadline=None)
    @given(specs=sends)
    def test_no_overlapping_transmissions(self, specs):
        _, messages = run(specs)
        spans = sorted(
            (m.start_time, m.delivery_time) for m in messages
        )
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert s2 >= e1 - 1e-12

    @settings(max_examples=50, deadline=None)
    @given(specs=sends)
    def test_busy_time_equals_total_wire_time(self, specs):
        network, messages = run(specs)
        engine_end = max(m.delivery_time for m in messages) + 1.0
        wire = sum(
            network.transmission_delay(m.wire_bytes) for m in messages
        )
        busy = network.meter.busy_between(0.0, engine_end)
        assert busy == pytest.approx(wire, rel=1e-9, abs=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(specs=sends)
    def test_total_delay_decomposes(self, specs):
        network, messages = run(specs)
        for m in messages:
            assert m.total_delay == pytest.approx(
                m.buffer_delay + network.transmission_delay(m.wire_bytes),
                rel=1e-9,
            )

    @settings(max_examples=40, deadline=None)
    @given(specs=sends)
    def test_switched_never_slower_per_message(self, specs):
        _, shared = run(specs, mode="shared")
        _, switched = run(specs, mode="switched")
        shared_by_id = sorted(shared, key=lambda m: m.enqueue_time)
        switched_by_id = sorted(switched, key=lambda m: m.enqueue_time)
        for a, b in zip(shared_by_id, switched_by_id):
            assert b.total_delay <= a.total_delay + 1e-12
