"""Property-based tests for the run-time monitor's classification."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.app import aaw_task, default_initial_placement
from repro.core.deadlines import DeadlineAssignment
from repro.core.monitoring import MonitorAction, RuntimeMonitor
from repro.runtime.records import PeriodRecord, StageRecord
from repro.tasks.state import ReplicaAssignment

TASK = aaw_task(noise_sigma=0.0)
PROCESSORS = [f"p{i}" for i in range(1, 7)]

latencies = st.dictionaries(
    keys=st.sampled_from([3, 5]),
    values=st.floats(min_value=1e-4, max_value=1.0, allow_nan=False),
    min_size=2,
    max_size=2,
)
budget_values = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)
replica_counts = st.integers(min_value=1, max_value=6)


def make_record(stage_latencies):
    record = PeriodRecord(
        period_index=0, release_time=0.0, d_tracks=1000.0, deadline=0.99
    )
    t = 0.0
    for subtask in TASK.subtasks:
        latency = stage_latencies.get(subtask.index, 0.005)
        record.stages.append(
            StageRecord(
                subtask_index=subtask.index,
                replica_count=1,
                start_time=t,
                exec_finish_time=t + latency,
            )
        )
        t += latency
    record.completion_time = t
    return record


def make_budgets(value):
    return DeadlineAssignment(
        subtask_deadlines={s.index: value for s in TASK.subtasks},
        message_deadlines={m.index: 0.0 for m in TASK.messages},
        strategy="test",
    )


class TestClassificationProperties:
    @settings(max_examples=100)
    @given(stage_latencies=latencies, budget=budget_values, k=replica_counts)
    def test_verdict_matches_threshold_arithmetic(
        self, stage_latencies, budget, k
    ):
        assignment = ReplicaAssignment(
            TASK, default_initial_placement(TASK, PROCESSORS)
        )
        home = assignment.processors_of(3)[0]
        for name in PROCESSORS:
            if assignment.replica_count(3) >= k:
                break
            if name != home:
                assignment.add_replica(3, name)
        monitor = RuntimeMonitor(
            TASK, slack_fraction=0.2, shutdown_slack_fraction=0.6, window=1
        )
        report = monitor.classify(
            1.0, [make_record(stage_latencies)], make_budgets(budget), assignment
        )
        verdict = {v.subtask_index: v for v in report.verdicts}[3]
        latency = stage_latencies[3]
        slack = budget - latency
        if slack < 0.2 * budget:
            assert verdict.action is MonitorAction.REPLICATE
        elif slack > 0.6 * budget and assignment.replica_count(3) > 1:
            assert verdict.action is MonitorAction.SHUTDOWN
        else:
            assert verdict.action is MonitorAction.OK

    @settings(max_examples=100)
    @given(stage_latencies=latencies, budget=budget_values)
    def test_single_replica_never_gets_shutdown(self, stage_latencies, budget):
        assignment = ReplicaAssignment(
            TASK, default_initial_placement(TASK, PROCESSORS)
        )
        monitor = RuntimeMonitor(TASK, window=1)
        report = monitor.classify(
            1.0, [make_record(stage_latencies)], make_budgets(budget), assignment
        )
        assert not report.candidates(MonitorAction.SHUTDOWN)

    @settings(max_examples=100)
    @given(stage_latencies=latencies, budget=budget_values)
    def test_overdue_always_yields_replicate(self, stage_latencies, budget):
        assignment = ReplicaAssignment(
            TASK, default_initial_placement(TASK, PROCESSORS)
        )
        monitor = RuntimeMonitor(TASK, window=1)
        report = monitor.classify(
            1.0,
            [make_record(stage_latencies)],
            make_budgets(budget),
            assignment,
            overdue_subtasks={3, 5},
        )
        for verdict in report.verdicts:
            assert verdict.action is MonitorAction.REPLICATE

    @settings(max_examples=60)
    @given(stage_latencies=latencies, budget=budget_values)
    def test_verdicts_cover_exactly_the_replicable_subtasks(
        self, stage_latencies, budget
    ):
        assignment = ReplicaAssignment(
            TASK, default_initial_placement(TASK, PROCESSORS)
        )
        monitor = RuntimeMonitor(TASK, window=1)
        report = monitor.classify(
            1.0, [make_record(stage_latencies)], make_budgets(budget), assignment
        )
        assert {v.subtask_index for v in report.verdicts} == {3, 5}
