"""Property-based tests for the DES engine."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine

delays = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=50,
)


class TestEventOrdering:
    @given(delays=delays)
    def test_events_execute_in_nondecreasing_time(self, delays):
        engine = Engine()
        fired: list[float] = []
        for delay in delays:
            engine.schedule(delay, lambda: fired.append(engine.now))
        engine.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(delays=delays)
    def test_clock_never_goes_backwards(self, delays):
        engine = Engine()
        observed: list[float] = []
        for delay in delays:
            engine.schedule(delay, lambda: observed.append(engine.now))
        last = -1.0
        while engine.step():
            assert engine.now >= last
            last = engine.now

    @given(delays=delays, cancel_mask=st.lists(st.booleans(), min_size=50, max_size=50))
    def test_cancelled_events_never_fire(self, delays, cancel_mask):
        engine = Engine()
        fired: list[int] = []
        events = []
        for i, delay in enumerate(delays):
            events.append(engine.schedule(delay, fired.append, i))
        expected = set(range(len(delays)))
        for i, event in enumerate(events):
            if cancel_mask[i % len(cancel_mask)]:
                event.cancel()
                expected.discard(i)
        engine.run()
        assert set(fired) == expected

    @given(
        delays=delays,
        boundary=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    )
    def test_run_until_executes_exactly_prefix(self, delays, boundary):
        engine = Engine()
        fired: list[float] = []
        for delay in delays:
            engine.schedule(delay, lambda d=delay: fired.append(d))
        engine.run_until(boundary)
        assert all(d <= boundary for d in fired)
        assert sorted(fired) == sorted(d for d in delays if d <= boundary)

    @settings(max_examples=25)
    @given(
        same_time=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        count=st.integers(min_value=1, max_value=20),
    )
    def test_fifo_among_simultaneous_events(self, same_time, count):
        engine = Engine()
        fired: list[int] = []
        for i in range(count):
            engine.schedule(same_time, fired.append, i)
        engine.run()
        assert fired == list(range(count))
