"""Property-based tests for the capacity planner."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.app import aaw_task
from repro.experiments.capacity import plan_capacity

from tests.conftest import exact_estimator

TASK = aaw_task(noise_sigma=0.0)
ESTIMATOR = exact_estimator(TASK)

grids = st.lists(
    st.floats(min_value=100.0, max_value=25_000.0, allow_nan=False),
    min_size=1,
    max_size=8,
    unique=True,
).map(lambda values: tuple(sorted(values)))


class TestPlannerInvariants:
    @settings(max_examples=60, deadline=None)
    @given(grid=grids, n_processors=st.integers(min_value=1, max_value=8))
    def test_replica_counts_within_machine(self, grid, n_processors):
        plan = plan_capacity(
            ESTIMATOR, grid, n_processors=n_processors, utilization=0.0
        )
        for point in plan.points:
            for k in point.replicas.values():
                assert 1 <= k <= n_processors

    @settings(max_examples=60, deadline=None)
    @given(grid=grids)
    def test_total_replicas_monotone_in_workload(self, grid):
        plan = plan_capacity(ESTIMATOR, grid, utilization=0.0)
        totals = [p.total_replicas for p in plan.points]
        assert totals == sorted(totals)

    @settings(max_examples=60, deadline=None)
    @given(
        workload=st.floats(min_value=500.0, max_value=20_000.0, allow_nan=False),
        small=st.integers(min_value=1, max_value=4),
        extra=st.integers(min_value=1, max_value=4),
    )
    def test_more_processors_never_reduce_feasibility(self, workload, small, extra):
        plan_small = plan_capacity(
            ESTIMATOR, (workload,), n_processors=small, utilization=0.0
        )
        plan_large = plan_capacity(
            ESTIMATOR, (workload,), n_processors=small + extra, utilization=0.0
        )
        if plan_small.points[0].feasible:
            assert plan_large.points[0].feasible

    @settings(max_examples=60, deadline=None)
    @given(grid=grids, n_processors=st.integers(min_value=1, max_value=8))
    def test_saturation_is_a_suffix_once_allocation_maxed(
        self, grid, n_processors
    ):
        """Past the point where every replicable subtask already holds
        the whole machine, infeasibility is final.  (Within the stepping
        region Figure 5's greedy per-stage choice can flicker at budget
        boundaries — see the module docstring — so the suffix property
        is asserted only for saturated allocations.)"""
        plan = plan_capacity(
            ESTIMATOR, grid, n_processors=n_processors, utilization=0.0
        )
        seen_saturated_infeasible = False
        for point in plan.points:
            saturated = all(
                k == n_processors for k in point.replicas.values()
            )
            if seen_saturated_infeasible:
                assert not point.feasible, (
                    f"feasible point {point.d_tracks} after a saturated "
                    "infeasible one"
                )
            if saturated and not point.feasible:
                seen_saturated_infeasible = True

    @settings(max_examples=60, deadline=None)
    @given(grid=grids)
    def test_forecast_monotone_in_workload_at_fixed_allocation(self, grid):
        """The end-to-end forecast itself is monotone whenever the
        planned allocation does not change between two workloads."""
        plan = plan_capacity(ESTIMATOR, grid, utilization=0.0)
        for a, b in zip(plan.points, plan.points[1:]):
            if a.replicas == b.replicas:
                assert b.forecast_end_to_end_s >= a.forecast_end_to_end_s - 1e-9
