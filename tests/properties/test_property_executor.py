"""Property-based tests of executor record invariants.

Random workload sequences and random static replica placements must
always produce structurally consistent timing records.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.topology import build_system
from repro.runtime.executor import ExecutorConfig, PeriodicTaskExecutor
from repro.tasks.state import ReplicaAssignment

workloads = st.lists(
    st.floats(min_value=0.0, max_value=6000.0, allow_nan=False),
    min_size=1,
    max_size=8,
)
replica_counts = st.tuples(
    st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6)
)


def run(workload_values, k3=1, k5=1, drop_factor=3.0):
    system = build_system(n_processors=6, seed=3)
    task = aaw_task(noise_sigma=0.0)
    names = [p.name for p in system.processors]
    assignment = ReplicaAssignment(task, default_initial_placement(task, names))
    home3 = assignment.processors_of(3)[0]
    for name in names:
        if len(assignment.processors_of(3)) >= k3:
            break
        if name != home3:
            assignment.add_replica(3, name)
    home5 = assignment.processors_of(5)[0]
    for name in names:
        if len(assignment.processors_of(5)) >= k5:
            break
        if name != home5:
            assignment.add_replica(5, name)
    executor = PeriodicTaskExecutor(
        system,
        task,
        assignment,
        workload=lambda c: workload_values[c],
        config=ExecutorConfig(drop_factor=drop_factor),
    )
    executor.start(len(workload_values))
    system.engine.run_until(len(workload_values) + drop_factor + 1.0)
    return executor, task


class TestRecordInvariants:
    @settings(max_examples=40, deadline=None)
    @given(values=workloads, counts=replica_counts)
    def test_every_period_terminates(self, values, counts):
        executor, _ = run(values, *counts)
        assert len(executor.records) == len(values)
        for record in executor.records:
            assert record.completed or record.aborted

    @settings(max_examples=40, deadline=None)
    @given(values=workloads, counts=replica_counts)
    def test_stage_times_are_ordered(self, values, counts):
        executor, task = run(values, *counts)
        for record in executor.records:
            previous_finish = record.release_time
            for stage in record.stages:
                assert stage.start_time >= previous_finish - 1e-9
                if stage.exec_finish_time is not None:
                    assert stage.exec_finish_time >= stage.start_time
                    previous_finish = stage.exec_finish_time
            if record.completed and record.d_tracks > 0.0:
                assert len(record.stages) == task.n_subtasks
                assert record.completion_time == pytest.approx(
                    record.stages[-1].exec_finish_time
                )
            elif record.completed:  # zero workload: trivially complete
                assert record.stages == []

    @settings(max_examples=40, deadline=None)
    @given(values=workloads, counts=replica_counts)
    def test_latency_nonnegative_and_consistent(self, values, counts):
        executor, _ = run(values, *counts)
        for record in executor.records:
            if record.latency is not None:
                assert record.latency >= 0.0
                stage_sum = sum(
                    s.stage_latency for s in record.stages
                    if s.stage_latency is not None
                )
                assert record.latency == pytest.approx(stage_sum, rel=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(values=workloads, counts=replica_counts)
    def test_stage_replica_counts_match_placement(self, values, counts):
        executor, _ = run(values, *counts)
        k3, k5 = counts
        for record in executor.records:
            stage3 = record.stage(3)
            stage5 = record.stage(5)
            if stage3 is not None:
                assert stage3.replica_count == k3
            if stage5 is not None:
                assert stage5.replica_count == k5

    @settings(max_examples=30, deadline=None)
    @given(values=workloads)
    def test_zero_workload_periods_never_miss(self, values):
        zeroed = [0.0 if i % 2 == 0 else v for i, v in enumerate(values)]
        executor, _ = run(zeroed)
        for record in executor.records:
            if record.d_tracks == 0.0:
                assert record.completed
                assert not record.missed
                assert record.latency == 0.0
