"""Property-based tests for the regression substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regression.buffer_model import BufferDelayModel
from repro.regression.latency_model import ExecutionLatencyModel

coefficients = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)
positive = st.floats(min_value=1e-3, max_value=2.0, allow_nan=False)


@st.composite
def surfaces(draw):
    """Random eq. 3 surfaces that stay positive over the profiled region."""
    a3 = draw(positive)
    b3 = draw(positive)
    a = (draw(positive), draw(positive), a3)
    b = (draw(positive), draw(positive), b3)
    return a, b


class TestLatencySurfaceRecovery:
    @settings(max_examples=40, deadline=None)
    @given(surface=surfaces())
    def test_two_stage_fit_recovers_exact_surface(self, surface):
        a, b = surface
        u_levels = np.array([0.0, 0.2, 0.4, 0.6, 0.8])
        d_values = np.array([1.0, 2.0, 5.0, 10.0, 20.0])
        d_all, u_all, y_all = [], [], []
        for u in u_levels:
            a_u = a[0] * u * u + a[1] * u + a[2]
            b_u = b[0] * u * u + b[1] * u + b[2]
            for d in d_values:
                d_all.append(d)
                u_all.append(u)
                y_all.append(a_u * d * d + b_u * d)
        model = ExecutionLatencyModel.fit_two_stage(
            "s", np.array(d_all), np.array(u_all), np.array(y_all)
        )
        assert model.a == pytest.approx(a, rel=1e-5, abs=1e-7)
        assert model.b == pytest.approx(b, rel=1e-5, abs=1e-7)

    @settings(max_examples=40, deadline=None)
    @given(surface=surfaces(),
           d=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
           u=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_predictions_never_negative(self, surface, d, u):
        a, b = surface
        model = ExecutionLatencyModel("s", a=a, b=b)
        assert model.predict_ms(d, u) >= 0.0

    @settings(max_examples=40, deadline=None)
    @given(surface=surfaces(), u=st.floats(min_value=0.0, max_value=1.0))
    def test_monotone_in_data_size_for_positive_surfaces(self, surface, u):
        a, b = surface
        model = ExecutionLatencyModel("s", a=a, b=b)
        values = [model.predict_ms(d, u) for d in (0.0, 1.0, 5.0, 10.0, 30.0)]
        assert all(x <= y + 1e-12 for x, y in zip(values, values[1:]))


class TestBufferModelRecovery:
    @settings(max_examples=40, deadline=None)
    @given(k=st.floats(min_value=1e-5, max_value=1.0, allow_nan=False))
    def test_fit_recovers_slope_exactly(self, k):
        loads = np.array([100.0, 1000.0, 5000.0, 10000.0])
        model = BufferDelayModel.fit(loads, k * loads)
        assert model.k_ms_per_track == pytest.approx(k, rel=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        k=st.floats(min_value=1e-5, max_value=1.0, allow_nan=False),
        load=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    )
    def test_prediction_linear_homogeneous(self, k, load):
        model = BufferDelayModel(k_ms_per_track=k)
        assert model.predict_ms(2 * load) == pytest.approx(
            2 * model.predict_ms(load), rel=1e-9, abs=1e-12
        )
