"""Property-based tests for the online-corrected estimator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.app import aaw_task
from repro.regression.online import OnlineCorrectedEstimator

from tests.conftest import exact_estimator

TASK = aaw_task(noise_sigma=0.0)

observations = st.lists(
    st.tuples(
        st.sampled_from([3, 5]),
        st.floats(min_value=100.0, max_value=10_000.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=0.8, allow_nan=False),
        st.floats(min_value=0.01, max_value=100.0, allow_nan=False),  # ratio
    ),
    max_size=40,
)


class TestOnlineEstimatorProperties:
    @settings(max_examples=60, deadline=None)
    @given(obs=observations, alpha=st.floats(min_value=0.0, max_value=1.0))
    def test_corrections_always_clamped(self, obs, alpha):
        online = OnlineCorrectedEstimator(
            base=exact_estimator(TASK), alpha=alpha, clamp=5.0
        )
        for subtask_index, d, u, ratio in obs:
            predicted = online.base.eex_seconds(subtask_index, d, u)
            online.observe_stage(subtask_index, d, u, ratio * predicted)
        for subtask in TASK.subtasks:
            c = online.correction(subtask.index)
            assert 1.0 / 5.0 <= c <= 5.0

    @settings(max_examples=60, deadline=None)
    @given(obs=observations)
    def test_corrected_forecast_scales_with_correction(self, obs):
        online = OnlineCorrectedEstimator(base=exact_estimator(TASK), alpha=0.4)
        for subtask_index, d, u, ratio in obs:
            predicted = online.base.eex_seconds(subtask_index, d, u)
            online.observe_stage(subtask_index, d, u, ratio * predicted)
        for subtask_index in (3, 5):
            base = online.base.eex_seconds(subtask_index, 2000.0, 0.3)
            corrected = online.eex_seconds(subtask_index, 2000.0, 0.3)
            assert corrected == pytest.approx(
                base * online.correction(subtask_index), rel=1e-9
            )

    @settings(max_examples=40, deadline=None)
    @given(
        ratio=st.floats(min_value=0.3, max_value=3.0, allow_nan=False),
        n=st.integers(min_value=5, max_value=60),
    )
    def test_constant_ratio_converges_to_it(self, ratio, n):
        online = OnlineCorrectedEstimator(base=exact_estimator(TASK), alpha=0.3)
        predicted = online.base.eex_seconds(3, 1000.0, 0.2)
        for _ in range(n):
            online.observe_stage(3, 1000.0, 0.2, ratio * predicted)
        expected = 1.0 + (ratio - 1.0) * (1.0 - (1.0 - 0.3) ** n)
        assert online.correction(3) == pytest.approx(expected, rel=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(obs=observations)
    def test_zero_alpha_never_learns(self, obs):
        online = OnlineCorrectedEstimator(base=exact_estimator(TASK), alpha=0.0)
        for subtask_index, d, u, ratio in obs:
            predicted = online.base.eex_seconds(subtask_index, d, u)
            online.observe_stage(subtask_index, d, u, ratio * predicted)
        for subtask in TASK.subtasks:
            assert online.correction(subtask.index) == 1.0
