"""Property-based tests for deadline assignment invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.ground_truth import LinearServiceModel
from repro.core.deadlines import STRATEGIES, assign_deadlines
from repro.tasks.builder import TaskBuilder

estimates = st.floats(min_value=1e-4, max_value=1.0, allow_nan=False)


@st.composite
def chains(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    deadline = draw(st.floats(min_value=0.05, max_value=2.0, allow_nan=False))
    builder = TaskBuilder("t", period_s=max(deadline, 2.0), deadline_s=deadline)
    for i in range(n):
        builder.subtask(f"s{i}", LinearServiceModel(1.0))
        if i < n - 1:
            builder.message()
    task = builder.build()
    exec_est = [draw(estimates) for _ in range(n)]
    comm_est = [draw(estimates) for _ in range(n - 1)]
    return task, exec_est, comm_est


class TestInvariants:
    @settings(max_examples=80)
    @given(data=chains(), strategy=st.sampled_from(STRATEGIES))
    def test_budgets_positive_and_complete(self, data, strategy):
        task, exec_est, comm_est = data
        result = assign_deadlines(task, exec_est, comm_est, strategy=strategy)
        assert set(result.subtask_deadlines) == set(
            s.index for s in task.subtasks
        )
        assert set(result.message_deadlines) == set(
            m.index for m in task.messages
        )
        assert all(v > 0 for v in result.subtask_deadlines.values())
        assert all(v > 0 for v in result.message_deadlines.values())

    @settings(max_examples=80)
    @given(data=chains())
    def test_sequential_eqf_sums_to_deadline_when_feasible(self, data):
        task, exec_est, comm_est = data
        total = sum(exec_est) + sum(comm_est)
        if total > task.deadline:
            return  # overload path floors budgets; sum may exceed D
        result = assign_deadlines(
            task, exec_est, comm_est, strategy="sequential_eqf"
        )
        assert result.total_budget() == pytest.approx(task.deadline, rel=1e-9)

    @settings(max_examples=80)
    @given(data=chains())
    def test_proportional_sums_to_deadline_always(self, data):
        task, exec_est, comm_est = data
        result = assign_deadlines(task, exec_est, comm_est, strategy="proportional")
        assert result.total_budget() == pytest.approx(task.deadline, rel=1e-9)

    @settings(max_examples=80)
    @given(data=chains(), strategy=st.sampled_from(STRATEGIES))
    def test_scaling_estimates_preserves_budget_ratios(self, data, strategy):
        """Deadline decomposition is scale-invariant in the estimates."""
        task, exec_est, comm_est = data
        one = assign_deadlines(task, exec_est, comm_est, strategy=strategy)
        scaled = assign_deadlines(
            task,
            [3.0 * e for e in exec_est],
            [3.0 * c for c in comm_est],
            strategy=strategy,
        )
        # Guard: the sequential overload floor breaks scale invariance.
        if strategy == "sequential_eqf":
            total = sum(exec_est) + sum(comm_est)
            if 3.0 * total > task.deadline:
                return
        for index in one.subtask_deadlines:
            ratio = one.subtask_deadlines[index] / one.stage_budget(index)
            ratio_scaled = scaled.subtask_deadlines[index] / scaled.stage_budget(
                index
            )
            assert ratio == pytest.approx(ratio_scaled, rel=1e-6)

    @settings(max_examples=80)
    @given(data=chains(), strategy=st.sampled_from(STRATEGIES))
    def test_stage_budget_decomposition(self, data, strategy):
        task, exec_est, comm_est = data
        result = assign_deadlines(task, exec_est, comm_est, strategy=strategy)
        for subtask in task.subtasks:
            budget = result.stage_budget(subtask.index)
            expected = result.subtask_deadlines[subtask.index]
            if subtask.index > 1:
                expected += result.message_deadlines[subtask.index - 1]
            assert budget == pytest.approx(expected)
