"""Property-based tests for replica-assignment invariants under random
operation sequences (stateful-style)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.app import aaw_task, default_initial_placement
from repro.errors import AllocationError
from repro.tasks.state import ReplicaAssignment

PROCESSORS = [f"p{i}" for i in range(1, 7)]

operations = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.sampled_from([3, 5]),            # replicable subtasks
        st.sampled_from(PROCESSORS),
    ),
    max_size=60,
)


class TestAssignmentInvariants:
    @settings(max_examples=100)
    @given(ops=operations)
    def test_invariants_hold_under_any_sequence(self, ops):
        task = aaw_task(noise_sigma=0.0)
        assignment = ReplicaAssignment(
            task, default_initial_placement(task, PROCESSORS)
        )
        for op, subtask_index, processor in ops:
            if op == "add":
                try:
                    assignment.add_replica(subtask_index, processor)
                except AllocationError:
                    pass  # duplicate placement attempts are rejected
            else:
                assignment.remove_last_replica(subtask_index)
            # Invariant 1: at least one replica everywhere.
            for subtask in task.subtasks:
                assert assignment.replica_count(subtask.index) >= 1
            # Invariant 2: replicas on distinct processors.
            for subtask in task.subtasks:
                processors = assignment.processors_of(subtask.index)
                assert len(set(processors)) == len(processors)
            # Invariant 3: replica count bounded by the machine size.
            for index in (3, 5):
                assert assignment.replica_count(index) <= len(PROCESSORS)
            # Invariant 4: non-replicable subtasks stay single.
            for index in (1, 2, 4):
                assert assignment.replica_count(index) == 1

    @settings(max_examples=100)
    @given(ops=operations)
    def test_total_replicas_matches_sum(self, ops):
        task = aaw_task(noise_sigma=0.0)
        assignment = ReplicaAssignment(
            task, default_initial_placement(task, PROCESSORS)
        )
        for op, subtask_index, processor in ops:
            try:
                if op == "add":
                    assignment.add_replica(subtask_index, processor)
                else:
                    assignment.remove_last_replica(subtask_index)
            except AllocationError:
                pass
        expected = sum(
            assignment.replica_count(i) for i in task.replicable_indices()
        )
        assert assignment.total_replicas() == expected

    @settings(max_examples=50)
    @given(ops=operations)
    def test_remove_is_lifo_inverse_of_add(self, ops):
        """After any adds, repeatedly removing returns to the original."""
        task = aaw_task(noise_sigma=0.0)
        assignment = ReplicaAssignment(
            task, default_initial_placement(task, PROCESSORS)
        )
        original = assignment.snapshot()
        for op, subtask_index, processor in ops:
            if op == "add":
                try:
                    assignment.add_replica(subtask_index, processor)
                except AllocationError:
                    pass
        for index in (3, 5):
            while assignment.remove_last_replica(index) is not None:
                pass
        assert assignment.snapshot() == original
