"""Property-based tests for the processor-sharing queue."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.processor import Discipline, Processor
from repro.sim.engine import Engine

job_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False),  # arrival
        st.floats(min_value=1e-3, max_value=1.0, allow_nan=False),  # demand
    ),
    min_size=1,
    max_size=12,
)


def run_ps(specs):
    engine = Engine()
    proc = Processor(engine, "p")
    jobs = []
    for arrival, demand in specs:
        engine.schedule_at(
            arrival, lambda d=demand: jobs.append(proc.run_for(d))
        )
    engine.run()
    return proc, jobs, engine


class TestWorkConservation:
    @settings(max_examples=60, deadline=None)
    @given(specs=job_specs)
    def test_all_jobs_complete(self, specs):
        proc, jobs, _ = run_ps(specs)
        assert proc.completed_jobs == len(specs)
        assert all(job.completion_time is not None for job in jobs)

    @settings(max_examples=60, deadline=None)
    @given(specs=job_specs)
    def test_total_busy_time_equals_total_demand(self, specs):
        """PS is work conserving: busy time == sum of demands (no gaps
        if jobs overlap; with gaps, busy time still equals total work)."""
        proc, jobs, engine = run_ps(specs)
        total_demand = sum(d for _, d in specs)
        busy = proc.meter.busy_between(0.0, engine.now + 1.0)
        assert busy == pytest.approx(total_demand, rel=1e-6, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(specs=job_specs)
    def test_latency_at_least_demand(self, specs):
        """Sojourn time can never beat a dedicated processor."""
        _, jobs, _ = run_ps(specs)
        for job in jobs:
            assert job.latency >= job.demand - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(specs=job_specs)
    def test_completion_no_earlier_than_analytic_lower_bound(self, specs):
        """Completion >= arrival + demand for every job."""
        _, jobs, _ = run_ps(specs)
        for job in jobs:
            assert job.completion_time >= job.arrival_time + 1e-9 / 2

    @settings(max_examples=30, deadline=None)
    @given(specs=job_specs)
    def test_ps_and_rr_agree_on_total_busy_time(self, specs):
        engine_rr = Engine()
        rr = Processor(engine_rr, "p", discipline=Discipline.ROUND_ROBIN,
                       quantum=0.001)
        for arrival, demand in specs:
            engine_rr.schedule_at(arrival, lambda d=demand: rr.run_for(d))
        engine_rr.run()
        proc_ps, _, engine_ps = run_ps(specs)
        busy_rr = rr.meter.busy_between(0.0, engine_rr.now + 1.0)
        busy_ps = proc_ps.meter.busy_between(0.0, engine_ps.now + 1.0)
        assert busy_rr == pytest.approx(busy_ps, rel=1e-6, abs=1e-9)
