"""Property-based tests for snapshot round-trips (:mod:`repro.recovery`).

Three layers, three invariants:

* an rng stream pickled mid-sequence continues with exactly the draws
  the original would have produced (common-random-numbers survive a
  checkpoint);
* an engine calendar pickled mid-run fires the remaining events in
  exactly the original order, whatever mix of times/priorities it holds;
* a whole run world snapshotted at an arbitrary point replays to the
  reference decision digest and metrics.
"""

from __future__ import annotations

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

seeds = st.integers(min_value=0, max_value=2**31 - 1)
draw_counts = st.integers(min_value=0, max_value=64)
stream_names = st.sampled_from(["noise", "background", "jitter", "workload"])


class _Recorder:
    """Module-level callable class: picklable calendar callback."""

    def __init__(self, engine: Engine, log: list) -> None:
        self.engine = engine
        self.log = log

    def __call__(self, tag: int) -> None:
        self.log.append((self.engine.now, tag))


class TestRngStreamRoundTrip:
    @given(seed=seeds, name=stream_names, before=draw_counts, after=draw_counts)
    @settings(max_examples=40, deadline=None)
    def test_pickled_stream_continues_identically(self, seed, name, before, after):
        registry = RngRegistry(seed)
        stream = registry.stream(name)
        stream.random(before)  # advance to an arbitrary mid-point
        clone = pickle.loads(pickle.dumps(registry)).stream(name)
        assert stream.random(after).tolist() == clone.random(after).tolist()

    @given(seed=seeds, before=draw_counts)
    @settings(max_examples=20, deadline=None)
    def test_round_trip_preserves_bit_generator_state(self, seed, before):
        stream = RngRegistry(seed).stream("noise")
        stream.random(before)
        clone = pickle.loads(pickle.dumps(stream))
        assert (
            clone.bit_generator.state == stream.bit_generator.state
        )


events = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        st.integers(min_value=-10, max_value=100),
    ),
    min_size=1,
    max_size=40,
)


class TestEngineCalendarRoundTrip:
    @given(events=events, cut=st.floats(min_value=0.0, max_value=50.0))
    @settings(max_examples=40, deadline=None)
    def test_pickled_calendar_fires_remaining_events_in_order(self, events, cut):
        engine = Engine()
        log: list = []
        recorder = _Recorder(engine, log)
        for tag, (time, priority) in enumerate(events):
            engine.schedule(time, recorder, tag, priority=priority)
        engine.run_until(cut)
        prefix = list(log)

        clone = pickle.loads(pickle.dumps(engine))
        engine.run_until(60.0)
        # The clone's recorder logs into the *cloned* list; find it by
        # firing the remaining events and comparing orders.
        clone_log = None
        for event in clone._heap:
            if not event.cancelled:
                clone_log = event.callback.log
                break
        clone.run_until(60.0)
        if clone_log is None:
            clone_log = prefix  # nothing was pending at the cut
        assert clone_log == log
        assert clone_log[: len(prefix)] == prefix


class TestWorldSnapshotRoundTrip:
    @given(
        units=st.sampled_from([8.0, 15.0, 25.0]),
        snap_at=st.floats(min_value=0.5, max_value=8.0),
        policy=st.sampled_from(["predictive", "nonpredictive"]),
    )
    @settings(max_examples=6, deadline=None)
    def test_resume_matches_reference(self, units, snap_at, policy, fitted_estimator):
        from repro.experiments.config import BaselineConfig, ExperimentConfig
        from repro.experiments.runner import build_world, run_experiment
        from repro.recovery import resume_experiment, take_snapshot

        config = ExperimentConfig(
            policy=policy,
            pattern="triangular",
            max_workload_units=units,
            baseline=BaselineConfig(n_periods=8, seed=3),
        )
        reference = run_experiment(config, estimator=fitted_estimator)
        world = build_world(config, estimator=fitted_estimator)
        world.system.engine.run_until(snap_at)
        resumed = resume_experiment(take_snapshot(world))
        assert resumed.decision_digest == reference.decision_digest
        assert resumed.metrics.as_dict() == reference.metrics.as_dict()
