"""Unit tests for unit conversions."""

from __future__ import annotations

import pytest

from repro import units


class TestTimeConversions:
    def test_ms_round_trip(self):
        assert units.s_to_ms(units.ms_to_s(990.0)) == pytest.approx(990.0)

    def test_constants(self):
        assert units.MS == 1e-3
        assert units.US == 1e-6


class TestDataConversions:
    def test_tracks_to_bytes_table1(self):
        assert units.tracks_to_bytes(1) == 80
        assert units.tracks_to_bytes(500) == 40_000

    def test_regression_units(self):
        assert units.tracks_to_regression_units(500) == 5.0
        assert units.regression_units_to_tracks(5.0) == 500.0

    def test_workload_units(self):
        assert units.workload_units_to_tracks(35) == 17_500


class TestBandwidth:
    def test_mbps(self):
        assert units.mbps_to_bps(100) == 100e6
        assert units.ETHERNET_100_MBPS == 100e6

    def test_transmission_time_eq6(self):
        # 1.25 MB at 100 Mbit/s = 0.1 s.
        assert units.transmission_time(1_250_000, 100e6) == pytest.approx(0.1)

    def test_transmission_validation(self):
        with pytest.raises(ValueError):
            units.transmission_time(10.0, 0.0)
        with pytest.raises(ValueError):
            units.transmission_time(-1.0, 1.0)


class TestUtilization:
    def test_percent_round_trip(self):
        assert units.percent_to_fraction(units.fraction_to_percent(0.35)) == (
            pytest.approx(0.35)
        )
