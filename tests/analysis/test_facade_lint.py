"""API-* rules: deprecated shims and facade-snapshot drift."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import build_project, parse_contract, parse_source
from repro.analysis.facade_lint import check, check_project

CONTRACT = parse_contract(
    """
[allowed]
sim = []

[facade]
snapshot = "tests/public_api_snapshot.txt"

[deprecated]
names = ["repro.build_estimator", "repro.bench.build_estimator"]
""",
    origin="<test>",
)


class TestDeprecated:
    def run_check(self, source: str, module: str = "repro.sim.mod"):
        info = parse_source(source, module=module)
        return [v.rule_id for v in check(info, CONTRACT)]

    def test_from_import_of_shim_flagged(self):
        src = "from repro import build_estimator\n"
        assert self.run_check(src) == ["API-DEPRECATED"]

    def test_attribute_use_of_shim_flagged(self):
        src = "import repro\n\ndef f():\n    return repro.build_estimator\n"
        assert self.run_check(src) == ["API-DEPRECATED"]

    def test_aliased_from_import_flagged(self):
        src = "from repro.bench import build_estimator as be\n\nbe()\n"
        assert "API-DEPRECATED" in self.run_check(src)

    def test_replacement_name_clean(self):
        src = "from repro.api import fit_models\n"
        assert self.run_check(src) == []

    def test_external_style_module_exempt(self):
        # Examples/scripts mimic external callers; only repro.* modules
        # are held to the internal no-shim rule.
        src = "from repro import build_estimator\n"
        assert self.run_check(src, module="demo_example") == []


def make_api_tree(tmp_path: Path, all_names: list[str], snapshot: list[str] | None):
    """Lay out <root>/repro/api.py plus the snapshot file on disk."""
    api_dir = tmp_path / "repro"
    api_dir.mkdir()
    names = "".join(f'    "{n}",\n' for n in all_names)
    api_path = api_dir / "api.py"
    api_path.write_text(f"__all__ = [\n{names}]\n")
    if snapshot is not None:
        snap = tmp_path / "tests" / "public_api_snapshot.txt"
        snap.parent.mkdir()
        snap.write_text("".join(f"{n}\n" for n in snapshot))
    info = parse_source(
        api_path.read_text(), module="repro.api", path=str(api_path)
    )
    return build_project([info])


class TestSnapshot:
    def test_matching_snapshot_clean(self, tmp_path):
        project = make_api_tree(tmp_path, ["a", "b"], ["a", "b"])
        assert check_project(project, CONTRACT) == []

    def test_unreviewed_addition_flagged(self, tmp_path):
        project = make_api_tree(tmp_path, ["a", "b", "new"], ["a", "b"])
        violations = check_project(project, CONTRACT)
        assert [v.rule_id for v in violations] == ["API-SNAPSHOT"]
        assert "new" in violations[0].message

    def test_silent_removal_flagged(self, tmp_path):
        project = make_api_tree(tmp_path, ["a"], ["a", "gone"])
        violations = check_project(project, CONTRACT)
        assert [v.rule_id for v in violations] == ["API-SNAPSHOT"]
        assert "gone" in violations[0].message

    def test_missing_snapshot_file_skips(self, tmp_path):
        project = make_api_tree(tmp_path, ["a"], None)
        assert check_project(project, CONTRACT) == []

    def test_dynamic_all_flagged(self, tmp_path):
        api_dir = tmp_path / "repro"
        api_dir.mkdir()
        api_path = api_dir / "api.py"
        api_path.write_text("__all__ = sorted(globals())\n")
        snap = tmp_path / "tests" / "public_api_snapshot.txt"
        snap.parent.mkdir()
        snap.write_text("a\n")
        info = parse_source(
            api_path.read_text(), module="repro.api", path=str(api_path)
        )
        violations = check_project(build_project([info]), CONTRACT)
        assert [v.rule_id for v in violations] == ["API-SNAPSHOT"]
        assert "static" in violations[0].message
