"""Unit-safety lint: suffix mixing, magic conversions, parameter naming."""

from __future__ import annotations

from repro.analysis import parse_source
from repro.analysis.units_lint import check


def rule_ids(source: str, module: str = "repro.regression.fake") -> list[str]:
    return [v.rule_id for v in check(parse_source(source, module=module))]


class TestUnitMix:
    def test_adding_s_to_ms_flagged(self):
        assert rule_ids("total = latency_ms + deadline_s\n") == ["UNIT-MIX"]

    def test_comparing_s_to_ms_flagged(self):
        assert rule_ids("late = latency_ms > deadline_s\n") == ["UNIT-MIX"]

    def test_attribute_suffixes_seen(self):
        src = "late = rec.latency_ms - cfg.deadline_s\n"
        assert rule_ids(src) == ["UNIT-MIX"]

    def test_same_unit_allowed(self):
        assert rule_ids("total = latency_s + overhead_s\n") == []

    def test_unsuffixed_names_not_guessed(self):
        # Without both suffixes the rule stays silent: no false positives
        # on names the convention does not cover.
        assert rule_ids("total = latency + deadline_s\n") == []

    def test_bytes_vs_seconds_flagged(self):
        assert rule_ids("x = payload_bytes + delay_s\n") == ["UNIT-MIX"]

    def test_multiplication_is_not_mixing(self):
        # Rates are legitimate products of different units.
        assert rule_ids("t_s = size_bytes * per_byte_s\n") == []


class TestUnitConv:
    def test_times_1e3_flagged(self):
        assert rule_ids("ms = value_s * 1e3\n") == ["UNIT-CONV"]

    def test_div_1000_flagged(self):
        assert rule_ids("s = value_ms / 1000.0\n") == ["UNIT-CONV"]

    def test_times_1e_minus_3_flagged(self):
        assert rule_ids("s = value_ms * 1e-3\n") == ["UNIT-CONV"]

    def test_units_module_is_allowed_to_convert(self):
        assert rule_ids("MS = 1e-3\nms = v * 1e3\n", module="repro.units") == []

    def test_comparison_thresholds_not_flagged(self):
        # A display threshold is not a conversion.
        assert rule_ids("big = abs(v) >= 1000.0\n") == []

    def test_other_constants_not_flagged(self):
        assert rule_ids("x = seed * 1_000_003\n") == []


class TestUnitName:
    def test_bare_deadline_param_flagged_in_scoped_package(self):
        src = "def assign(deadline):\n    return deadline\n"
        assert rule_ids(src, module="repro.tasks.fake") == ["UNIT-NAME"]

    def test_suffixed_param_allowed(self):
        src = "def assign(deadline_s):\n    return deadline_s\n"
        assert rule_ids(src, module="repro.tasks.fake") == []

    def test_composite_names_not_flagged(self):
        src = "def assign(sync_interval, deadline_policy):\n    pass\n"
        assert rule_ids(src, module="repro.tasks.fake") == []

    def test_out_of_scope_package_not_flagged(self):
        # experiments is presentation-layer; the naming rule targets the
        # timing-math packages.
        src = "def assign(deadline):\n    return deadline\n"
        assert rule_ids(src, module="repro.experiments.fake") == []

    def test_keyword_only_params_checked(self):
        src = "def assign(*, period):\n    return period\n"
        assert rule_ids(src, module="repro.sim.fake") == ["UNIT-NAME"]
