"""ProjectModel: indexing, import graph, bounded name resolution."""

from __future__ import annotations

from repro.analysis import build_project, parse_source
from repro.analysis.project import MAX_REEXPORT_HOPS


def make_project(sources: dict[str, str]):
    """Build a ProjectModel from ``dotted module -> source`` pairs."""
    infos = [
        parse_source(src, module=mod, path=mod.replace(".", "/") + ".py")
        for mod, src in sources.items()
    ]
    return build_project(infos)


class TestIndexing:
    def test_functions_classes_methods(self):
        project = make_project({
            "repro.sim.mod": (
                "def top():\n    pass\n"
                "class Engine:\n"
                "    def __init__(self):\n        pass\n"
                "    def run(self):\n        pass\n"
            ),
        })
        assert "repro.sim.mod.top" in project.functions
        assert "repro.sim.mod.Engine" in project.classes
        assert "repro.sim.mod.Engine.run" in project.functions
        assert project.functions["repro.sim.mod.Engine.run"].is_method
        names = [m.qname for m in project.methods_by_name["run"]]
        assert names == ["repro.sim.mod.Engine.run"]

    def test_module_globals_include_annotated_and_tuple_targets(self):
        project = make_project({
            "repro.sim.mod": (
                "CACHE: dict = {}\n"
                "A, B = 1, 2\n"
                "C = 3\n"
                "def f():\n    local = 1\n"
            ),
        })
        assert project.module_globals["repro.sim.mod"] == {
            "CACHE", "A", "B", "C",
        }

    def test_non_repro_modules_ignored(self):
        project = make_project({"demo": "def f():\n    pass\n"})
        assert project.modules == {}

    def test_import_graph_sees_lazy_imports(self):
        project = make_project({
            "repro.parallel.jobs": (
                "def run_job():\n"
                "    from repro.experiments.runner import run_experiment\n"
                "    return run_experiment\n"
            ),
            "repro.experiments.runner": "def run_experiment():\n    pass\n",
        })
        assert (
            "repro.experiments.runner"
            in project.import_graph["repro.parallel.jobs"]
        )


class TestResolve:
    def test_same_module_bare_name(self):
        project = make_project({
            "repro.sim.mod": "def f():\n    pass\n",
        })
        assert project.resolve("repro.sim.mod", "f") == "repro.sim.mod.f"

    def test_from_import_reexport_single_hop(self):
        project = make_project({
            "repro.core.base": "def impl():\n    pass\n",
            "repro.core.facade": "from repro.core.base import impl\n",
        })
        assert (
            project.resolve("repro.core.facade", "repro.core.facade.impl")
            == "repro.core.base.impl"
        )

    def test_diamond_reexports_converge(self):
        # base.f re-exported through two branches; both resolve to the
        # single definition, so the call graph never forks on a diamond.
        project = make_project({
            "repro.core.base": "def f():\n    pass\n",
            "repro.core.left": "from repro.core.base import f\n",
            "repro.core.right": "from repro.core.base import f\n",
            "repro.core.top": (
                "from repro.core.left import f as lf\n"
                "from repro.core.right import f as rf\n"
            ),
        })
        left = project.resolve("repro.core.top", "repro.core.left.f")
        right = project.resolve("repro.core.top", "repro.core.right.f")
        assert left == right == "repro.core.base.f"

    def test_reexport_chain_beyond_bound_unresolved(self):
        chain = {"repro.c.m0": "def f():\n    pass\n"}
        for i in range(1, MAX_REEXPORT_HOPS + 2):
            chain[f"repro.c.m{i}"] = f"from repro.c.m{i - 1} import f\n"
        project = make_project(chain)
        deep = f"repro.c.m{MAX_REEXPORT_HOPS + 1}.f"
        assert project.resolve("repro.c.user", deep) is None

    def test_unknown_name_unresolved(self):
        project = make_project({"repro.sim.mod": "X = 1\n"})
        assert project.resolve("repro.sim.mod", "repro.sim.mod.nope") is None

    def test_entry_points_skip_missing(self):
        project = make_project({
            "repro.parallel.jobs": "def run_job():\n    pass\n",
        })
        roots = project.resolve_entry_points(
            ("repro.parallel.jobs.run_job", "repro.parallel.shards.run_shard")
        )
        assert [r.qname for r in roots] == ["repro.parallel.jobs.run_job"]
