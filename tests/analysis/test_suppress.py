"""Suppression comments: ``# repro: noqa RULE-ID`` semantics."""

from __future__ import annotations

from repro.analysis import lint_module, parse_source
from repro.analysis.suppress import suppressed_rules


class TestParsing:
    def test_no_comment(self):
        assert suppressed_rules("x = 1") is None

    def test_bare_noqa_suppresses_everything(self):
        assert suppressed_rules("x = 1  # repro: noqa") == frozenset()

    def test_single_rule(self):
        line = "t = time.time()  # repro: noqa DET-TIME"
        assert suppressed_rules(line) == {"DET-TIME"}

    def test_multiple_rules_comma_separated(self):
        line = "x = 1  # repro: noqa DET-TIME,UNIT-MIX"
        assert suppressed_rules(line) == {"DET-TIME", "UNIT-MIX"}

    def test_plain_noqa_is_not_ours(self):
        # Standard flake8-style noqa must not silence repro rules.
        assert suppressed_rules("x = 1  # noqa") is None


class TestFiltering:
    def test_suppressed_violation_dropped(self):
        info = parse_source(
            "import time\nt = time.time()  # repro: noqa DET-TIME\n",
            module="repro.sim.fake",
        )
        assert lint_module(info) == []

    def test_wrong_rule_id_does_not_suppress(self):
        info = parse_source(
            "import time\nt = time.time()  # repro: noqa UNIT-MIX\n",
            module="repro.sim.fake",
        )
        assert [v.rule_id for v in lint_module(info)] == ["DET-TIME"]

    def test_bare_noqa_suppresses_any_rule(self):
        info = parse_source(
            "import time\nt = time.time()  # repro: noqa\n",
            module="repro.sim.fake",
        )
        assert lint_module(info) == []

    def test_suppression_is_line_scoped(self):
        info = parse_source(
            "import time\n"
            "a = time.time()  # repro: noqa DET-TIME\n"
            "b = time.time()\n",
            module="repro.sim.fake",
        )
        violations = lint_module(info)
        assert [v.line for v in violations] == [3]
