"""Suppression comments: ``# repro: noqa RULE-ID`` semantics."""

from __future__ import annotations

from repro.analysis import lint_module, parse_source
from repro.analysis.model import Violation
from repro.analysis.suppress import (
    iter_noqa_comments,
    suppressed_rules,
    unused_noqa,
)


class TestParsing:
    def test_no_comment(self):
        assert suppressed_rules("x = 1") is None

    def test_bare_noqa_suppresses_everything(self):
        assert suppressed_rules("x = 1  # repro: noqa") == frozenset()

    def test_single_rule(self):
        line = "t = time.time()  # repro: noqa DET-TIME"
        assert suppressed_rules(line) == {"DET-TIME"}

    def test_multiple_rules_comma_separated(self):
        line = "x = 1  # repro: noqa DET-TIME,UNIT-MIX"
        assert suppressed_rules(line) == {"DET-TIME", "UNIT-MIX"}

    def test_plain_noqa_is_not_ours(self):
        # Standard flake8-style noqa must not silence repro rules.
        assert suppressed_rules("x = 1  # noqa") is None


class TestFiltering:
    def test_suppressed_violation_dropped(self):
        info = parse_source(
            "import time\nt = time.time()  # repro: noqa DET-TIME\n",
            module="repro.sim.fake",
        )
        assert lint_module(info) == []

    def test_wrong_rule_id_does_not_suppress(self):
        info = parse_source(
            "import time\nt = time.time()  # repro: noqa UNIT-MIX\n",
            module="repro.sim.fake",
        )
        assert [v.rule_id for v in lint_module(info)] == ["DET-TIME"]

    def test_bare_noqa_suppresses_any_rule(self):
        info = parse_source(
            "import time\nt = time.time()  # repro: noqa\n",
            module="repro.sim.fake",
        )
        assert lint_module(info) == []

    def test_suppression_is_line_scoped(self):
        info = parse_source(
            "import time\n"
            "a = time.time()  # repro: noqa DET-TIME\n"
            "b = time.time()\n",
            module="repro.sim.fake",
        )
        violations = lint_module(info)
        assert [v.line for v in violations] == [3]

    def test_multiple_rule_ids_on_one_line(self):
        info = parse_source(
            "import time\n"
            "t = time.time()  # repro: noqa DET-TIME, UNIT-MIX\n",
            module="repro.sim.fake",
        )
        assert lint_module(info) == []

    def test_continuation_line_comment_does_not_suppress(self):
        # The violation anchors to the statement's first physical line;
        # a comment on a later continuation line is out of scope.
        info = parse_source(
            "import time\n"
            "t = time.time(\n"
            ")  # repro: noqa DET-TIME\n",
            module="repro.sim.fake",
        )
        assert [v.rule_id for v in lint_module(info)] == ["DET-TIME"]

    def test_unknown_rule_id_suppresses_nothing(self):
        info = parse_source(
            "import time\n"
            "t = time.time()  # repro: noqa NOT-A-RULE\n",
            module="repro.sim.fake",
        )
        assert [v.rule_id for v in lint_module(info)] == ["DET-TIME"]


class TestNoqaComments:
    def test_real_comments_found_with_positions(self):
        comments = iter_noqa_comments(
            "x = 1  # repro: noqa DET-TIME\n"
            "y = 2\n"
            "z = 3  # repro: noqa\n"
        )
        assert [(c.line, c.rules) for c in comments] == [
            (1, ("DET-TIME",)),
            (3, ()),
        ]

    def test_docstring_mention_ignored(self):
        source = '"""Mentions # repro: noqa DET-TIME in prose."""\nx = 1\n'
        assert iter_noqa_comments(source) == []

    def test_untokenizable_source_yields_nothing(self):
        assert iter_noqa_comments("x = (\n") == []


def _violation(rule_id: str, line: int) -> Violation:
    return Violation(rule_id, "f.py", line, 0, "msg")


class TestUnusedNoqa:
    KNOWN = frozenset({"DET-TIME", "UNIT-MIX"})

    def test_matching_comment_is_used(self):
        comments = iter_noqa_comments("t = 1  # repro: noqa DET-TIME\n")
        assert unused_noqa(comments, [_violation("DET-TIME", 1)], self.KNOWN) == []

    def test_unmatched_comment_is_stale(self):
        comments = iter_noqa_comments("t = 1  # repro: noqa DET-TIME\n")
        stale = unused_noqa(comments, [], self.KNOWN)
        assert len(stale) == 1
        assert "raises nothing" in stale[0][1]

    def test_unknown_rule_id_is_stale(self):
        comments = iter_noqa_comments("t = 1  # repro: noqa DET-TYPO\n")
        stale = unused_noqa(comments, [_violation("DET-TIME", 1)], self.KNOWN)
        assert len(stale) == 1
        assert "unknown rule id" in stale[0][1]

    def test_bare_noqa_used_when_line_has_findings(self):
        comments = iter_noqa_comments("t = 1  # repro: noqa\n")
        assert unused_noqa(comments, [_violation("UNIT-MIX", 1)], self.KNOWN) == []

    def test_bare_noqa_stale_on_clean_line(self):
        comments = iter_noqa_comments("t = 1  # repro: noqa\n")
        stale = unused_noqa(comments, [], self.KNOWN)
        assert len(stale) == 1
        assert "bare noqa" in stale[0][1]

    def test_partial_match_counts_as_used(self):
        # One of the two named rules fires on the line: not stale.
        comments = iter_noqa_comments("t = 1  # repro: noqa DET-TIME, UNIT-MIX\n")
        assert unused_noqa(comments, [_violation("DET-TIME", 1)], self.KNOWN) == []
