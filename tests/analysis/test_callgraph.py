"""CallGraph: edge strategies, reachability, documented limits."""

from __future__ import annotations

from repro.analysis import CallGraph, build_project, format_path, parse_source


def make_graph(sources: dict[str, str]) -> CallGraph:
    infos = [
        parse_source(src, module=mod, path=mod.replace(".", "/") + ".py")
        for mod, src in sources.items()
    ]
    return CallGraph(build_project(infos))


class TestEdges:
    def test_direct_call_same_module(self):
        graph = make_graph({
            "repro.a.m": "def f():\n    g()\n\ndef g():\n    pass\n",
        })
        assert "repro.a.m.g" in graph.edges["repro.a.m.f"]

    def test_lazy_function_level_import_resolves(self):
        graph = make_graph({
            "repro.a.m": (
                "def f():\n"
                "    from repro.b.n import g\n"
                "    g()\n"
            ),
            "repro.b.n": "def g():\n    pass\n",
        })
        assert "repro.b.n.g" in graph.edges["repro.a.m.f"]

    def test_callback_reference_counts_as_edge(self):
        # Passing a function (the engine schedules callbacks) reaches it.
        graph = make_graph({
            "repro.a.m": (
                "def f(schedule):\n    schedule(g)\n\ndef g():\n    pass\n"
            ),
        })
        assert "repro.a.m.g" in graph.edges["repro.a.m.f"]

    def test_constructor_edges_into_init_and_post_init(self):
        graph = make_graph({
            "repro.a.m": (
                "class A:\n"
                "    def __init__(self):\n        pass\n"
                "class B:\n"
                "    def __post_init__(self):\n        pass\n"
                "def f():\n    A()\n    B()\n"
            ),
        })
        assert "repro.a.m.A.__init__" in graph.edges["repro.a.m.f"]
        assert "repro.a.m.B.__post_init__" in graph.edges["repro.a.m.f"]

    def test_untyped_method_call_matches_every_name(self):
        # Strategy 3 over-approximates: obj.step() edges into every
        # project method named `step` — the documented method-vs-function
        # limit (a bare function named `step` is NOT linked this way).
        graph = make_graph({
            "repro.a.m": "def f(obj):\n    obj.step()\n",
            "repro.b.n": (
                "class X:\n"
                "    def step(self):\n        pass\n"
                "class Y:\n"
                "    def step(self):\n        pass\n"
                "def step():\n    pass\n"
            ),
        })
        edges = graph.edges["repro.a.m.f"]
        assert "repro.b.n.X.step" in edges
        assert "repro.b.n.Y.step" in edges
        assert "repro.b.n.step" not in edges

    def test_builtin_method_names_skipped(self):
        # `.update(...)` on an untyped receiver is almost always a dict;
        # linking it to every project method named `update` would connect
        # everything to everything.
        graph = make_graph({
            "repro.a.m": "def f(d):\n    d.update({})\n",
            "repro.b.n": (
                "class Policy:\n"
                "    def update(self):\n        pass\n"
            ),
        })
        assert "repro.b.n.Policy.update" not in graph.edges["repro.a.m.f"]


class TestReachability:
    DIAMOND = {
        "repro.parallel.jobs": (
            "from repro.x.left import lf\n"
            "from repro.x.right import rf\n"
            "def run_job():\n    lf()\n    rf()\n"
        ),
        "repro.x.left": (
            "from repro.x.base import shared\n"
            "def lf():\n    shared()\n"
        ),
        "repro.x.right": (
            "from repro.x.base import shared\n"
            "def rf():\n    shared()\n"
        ),
        "repro.x.base": "def shared():\n    pass\n\ndef orphan():\n    pass\n",
    }

    def test_diamond_import_reached_once_with_shortest_path(self):
        graph = make_graph(self.DIAMOND)
        reachable = graph.reachable_from(("repro.parallel.jobs.run_job",))
        assert "repro.x.base.shared" in reachable
        path = reachable["repro.x.base.shared"]
        assert path[0] == "repro.parallel.jobs.run_job"
        assert len(path) == 3  # entry -> lf|rf -> shared, not longer

    def test_unreachable_function_absent(self):
        graph = make_graph(self.DIAMOND)
        reachable = graph.reachable_from(("repro.parallel.jobs.run_job",))
        assert "repro.x.base.orphan" not in reachable

    def test_lazy_import_chain_reachable(self):
        graph = make_graph({
            "repro.parallel.jobs": (
                "def run_job():\n"
                "    from repro.e.runner import run\n"
                "    run()\n"
            ),
            "repro.e.runner": "def run():\n    helper()\n\ndef helper():\n    pass\n",
        })
        reachable = graph.reachable_from(("repro.parallel.jobs.run_job",))
        assert "repro.e.runner.helper" in reachable

    def test_missing_entry_point_yields_empty(self):
        graph = make_graph({"repro.a.m": "def f():\n    pass\n"})
        assert graph.reachable_from(("repro.parallel.jobs.run_job",)) == {}


class TestFormatPath:
    def test_short_path_verbatim(self):
        assert format_path(("a", "b")) == "a -> b"

    def test_long_path_elided(self):
        path = ("a", "b", "c", "d", "e", "f")
        assert format_path(path) == "a -> b -> c -> ... -> f"
