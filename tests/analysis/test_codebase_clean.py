"""Tier-1 gate: the shipped source tree must lint clean.

This is the enforcement point for the whole analysis subsystem: if a
wall-clock call, an unseeded RNG, a magic unit conversion or a layering
breach lands anywhere in ``src/repro``, this test fails with the full
lint report in the assertion message.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import repro
from repro.analysis import lint_paths, render_text

SRC_ROOT = Path(repro.__file__).resolve().parent
REPO_ROOT = SRC_ROOT.parent.parent


def test_source_tree_lints_clean():
    violations, n_files = lint_paths([SRC_ROOT])
    report = render_text(violations, n_files)
    assert not violations, f"static-analysis violations in src/repro:\n{report}"
    # Sanity: the walk actually visited the package, not an empty dir.
    assert n_files > 50


def test_examples_lint_clean():
    """Shipped examples stay on the repro.api facade (LAY-FACADE)."""
    trees = [REPO_ROOT / "examples", REPO_ROOT / "scripts"]
    violations, n_files = lint_paths([p for p in trees if p.is_dir()])
    report = render_text(violations, n_files)
    assert not violations, f"static-analysis violations in examples:\n{report}"
    assert n_files >= 8


def test_project_passes_actually_ran():
    """The clean run above must include the flow-aware passes.

    Guards against the project passes silently short-circuiting (e.g. a
    renamed entry point resolving to nothing): the real tree must yield
    a non-trivial worker-reachable set containing the known hot path
    into the estimator cache.
    """
    from repro.analysis import CallGraph, build_project, load_contract
    from repro.analysis.engine import iter_python_files
    from repro.analysis.model import load_module

    contract = load_contract()
    infos = [load_module(p) for p in iter_python_files([SRC_ROOT])]
    project = build_project(infos)
    graph = CallGraph(project)
    reachable = graph.reachable_from(contract.entry_points)
    assert "repro.parallel.jobs.run_job" in reachable
    assert "repro.parallel.shards.run_shard" in reachable
    assert "repro.experiments.estimator_cache.get_estimator" in reachable
    assert len(reachable) > 50


def test_gate_catches_injected_conc_violation(tmp_path):
    """A seeded worker-reachable mutation must fail the gate end to end."""
    staged = tmp_path / "repro" / "parallel"
    staged.mkdir(parents=True)
    (staged / "jobs.py").write_text(
        "LEAK = {}\n"
        "def run_job(spec):\n"
        "    LEAK[spec] = 1\n"
    )
    violations, _ = lint_paths([tmp_path / "repro"])
    assert any(v.rule_id == "CONC-GLOBAL-MUT" for v in violations)


def test_gate_catches_injected_violation(tmp_path):
    """The gate must fail if a determinism breach is seeded into sim code.

    We copy one real sim module aside, inject a ``time.time()`` call, and
    check the same driver the gate uses reports it — proof the clean run
    above is meaningful and not vacuous.
    """
    staged = tmp_path / "repro" / "sim"
    staged.mkdir(parents=True)
    shutil.copy(SRC_ROOT / "sim" / "engine.py", staged / "engine.py")
    source = (staged / "engine.py").read_text()
    assert "time.time()" not in source
    (staged / "engine.py").write_text(
        "import time\n_T0 = time.time()\n" + source
    )
    violations, _ = lint_paths([tmp_path / "repro"])
    assert any(v.rule_id == "DET-TIME" for v in violations)
