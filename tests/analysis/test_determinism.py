"""Determinism lint: wall-clock, global RNG, seeding and set-iteration rules."""

from __future__ import annotations

from repro.analysis import parse_source
from repro.analysis.determinism import check


def lint(source: str, module: str = "repro.sim.fake") -> list:
    return check(parse_source(source, module=module))


def rule_ids(source: str, module: str = "repro.sim.fake") -> list[str]:
    return [v.rule_id for v in lint(source, module)]


class TestScope:
    def test_out_of_scope_package_is_ignored(self):
        src = "import time\nt = time.time()\n"
        assert rule_ids(src, module="repro.experiments.fake") == []

    def test_rng_module_itself_is_whitelisted(self):
        src = "import numpy as np\ng = np.random.default_rng()\n"
        assert rule_ids(src, module="repro.sim.rng") == []

    def test_non_repro_module_is_ignored(self):
        assert rule_ids("import time\ntime.time()\n", module="other.mod") == []


class TestWallClock:
    def test_time_time_flagged(self):
        assert rule_ids("import time\nt = time.time()\n") == ["DET-TIME"]

    def test_perf_counter_flagged_through_alias(self):
        src = "from time import perf_counter as pc\nt = pc()\n"
        assert rule_ids(src) == ["DET-TIME"]

    def test_datetime_now_flagged(self):
        src = "from datetime import datetime\nd = datetime.now()\n"
        assert rule_ids(src) == ["DET-TIME"]

    def test_violation_carries_position_and_hint(self):
        (v,) = lint("import time\n\nt = time.monotonic()\n")
        assert v.line == 3
        assert "engine.now" in v.hint

    def test_engine_now_is_fine(self):
        assert rule_ids("def f(engine):\n    return engine.now\n") == []


class TestGlobalRng:
    def test_stdlib_random_import_flagged(self):
        assert "DET-RNG-GLOBAL" in rule_ids("import random\n")

    def test_stdlib_random_call_flagged(self):
        src = "import random\nx = random.gauss(0, 1)\n"
        assert rule_ids(src) == ["DET-RNG-GLOBAL", "DET-RNG-GLOBAL"]

    def test_legacy_numpy_global_flagged(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert rule_ids(src) == ["DET-RNG-GLOBAL"]

    def test_numpy_seed_flagged(self):
        src = "import numpy as np\nnp.random.seed(0)\n"
        assert rule_ids(src) == ["DET-RNG-GLOBAL"]

    def test_generator_draws_are_fine(self):
        src = "def f(rng):\n    return rng.uniform(0.0, 1.0)\n"
        assert rule_ids(src) == []


class TestDefaultRngSeeding:
    def test_unseeded_default_rng_flagged(self):
        src = "import numpy as np\ng = np.random.default_rng()\n"
        assert rule_ids(src) == ["DET-RNG-SEED"]

    def test_literal_seed_flagged(self):
        src = "import numpy as np\ng = np.random.default_rng(0)\n"
        assert rule_ids(src) == ["DET-RNG-SEED"]

    def test_parameter_seed_allowed(self):
        src = (
            "import numpy as np\n"
            "def make(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        assert rule_ids(src) == []

    def test_attribute_seed_allowed(self):
        src = (
            "import numpy as np\n"
            "class P:\n"
            "    def roll(self):\n"
            "        return np.random.default_rng(self.seed)\n"
        )
        assert rule_ids(src) == []


class TestSetIteration:
    def test_for_over_set_literal_flagged(self):
        assert rule_ids("for x in {1, 2, 3}:\n    pass\n") == ["DET-SET-ITER"]

    def test_for_over_set_call_flagged(self):
        assert rule_ids("for x in set(items):\n    pass\n") == ["DET-SET-ITER"]

    def test_list_of_set_flagged(self):
        assert rule_ids("for x in list(set(items)):\n    pass\n") == [
            "DET-SET-ITER"
        ]

    def test_comprehension_over_set_flagged(self):
        assert rule_ids("ys = [f(x) for x in set(items)]\n") == ["DET-SET-ITER"]

    def test_sorted_set_allowed(self):
        assert rule_ids("for x in sorted(set(items)):\n    pass\n") == []

    def test_membership_test_allowed(self):
        assert rule_ids("ok = x in {1, 2, 3}\n") == []
