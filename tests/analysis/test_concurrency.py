"""CONC-* rules: worker-reachable state, RNG discipline, pool payloads."""

from __future__ import annotations

from repro.analysis import CallGraph, build_project, parse_contract, parse_source
from repro.analysis.concurrency import check_project

CONTRACT = parse_contract(
    """
[allowed]
sim = []
parallel = ["sim"]

[concurrency]
entry_points = ["repro.parallel.jobs.run_job"]
rng_factories = ["repro.sim.rng"]
streams = ["chaos.", "noise"]
unpicklable = ["Engine"]
""",
    origin="<test>",
)


def run_check(sources: dict[str, str]):
    infos = [
        parse_source(src, module=mod, path=mod.replace(".", "/") + ".py")
        for mod, src in sources.items()
    ]
    project = build_project(infos)
    return check_project(project, CallGraph(project), CONTRACT)


class TestGlobalMut:
    WORKER = (
        "from repro.sim.state import record\n"
        "def run_job():\n    record(1)\n"
    )

    def test_reachable_mutation_flagged(self):
        # True positive: run_job -> record, record mutates a module
        # global, so the mutation happens inside worker processes.
        violations = run_check({
            "repro.parallel.jobs": self.WORKER,
            "repro.sim.state": (
                "CACHE = {}\n"
                "def record(x):\n    CACHE[x] = x\n"
            ),
        })
        assert [v.rule_id for v in violations] == ["CONC-GLOBAL-MUT"]
        assert "CACHE" in violations[0].message
        assert "run_job" in violations[0].message  # call path shown

    def test_unreachable_mutation_not_flagged(self):
        # True negative: the same mutation in a function no worker path
        # reaches stays unflagged — the rule is flow-aware, not textual.
        violations = run_check({
            "repro.parallel.jobs": self.WORKER,
            "repro.sim.state": (
                "CACHE = {}\n"
                "def record(x):\n    return CACHE.get(x)\n"
                "def parent_only(x):\n    CACHE[x] = x\n"
            ),
        })
        assert violations == []

    def test_global_rebinding_flagged(self):
        violations = run_check({
            "repro.parallel.jobs": (
                "COUNT = 0\n"
                "def run_job():\n"
                "    global COUNT\n"
                "    COUNT = COUNT + 1\n"
            ),
        })
        assert [v.rule_id for v in violations] == ["CONC-GLOBAL-MUT"]

    def test_mutating_method_on_global_flagged(self):
        violations = run_check({
            "repro.parallel.jobs": (
                "SEEN = []\n"
                "def run_job():\n    SEEN.append(1)\n"
            ),
        })
        assert [v.rule_id for v in violations] == ["CONC-GLOBAL-MUT"]

    def test_local_shadowing_not_flagged(self):
        violations = run_check({
            "repro.parallel.jobs": (
                "CACHE = {}\n"
                "def run_job():\n"
                "    CACHE = {}\n"
                "    CACHE[1] = 2\n"
                "    out = []\n"
                "    out.append(1)\n"
            ),
        })
        assert violations == []


class TestRng:
    def test_reachable_default_rng_flagged(self):
        violations = run_check({
            "repro.parallel.jobs": (
                "import numpy as np\n"
                "def run_job():\n    return np.random.default_rng(0)\n"
            ),
        })
        assert [v.rule_id for v in violations] == ["CONC-RNG-FACTORY"]

    def test_sanctioned_factory_module_exempt(self):
        violations = run_check({
            "repro.parallel.jobs": (
                "from repro.sim.rng import make\n"
                "def run_job():\n    return make(0)\n"
            ),
            "repro.sim.rng": (
                "import numpy as np\n"
                "def make(seed):\n    return np.random.default_rng(seed)\n"
            ),
        })
        assert violations == []

    def test_undeclared_stream_name_flagged(self):
        violations = run_check({
            "repro.parallel.jobs": (
                "def run_job(registry):\n"
                "    a = registry.stream('noise')\n"
                "    b = registry.stream('chaos.link')\n"
                "    c = registry.stream('rogue')\n"
            ),
        })
        assert [v.rule_id for v in violations] == ["CONC-RNG-STREAM"]
        assert "rogue" in violations[0].message

    def test_fstring_stream_checked_by_prefix(self):
        violations = run_check({
            "repro.parallel.jobs": (
                "def run_job(registry, node):\n"
                "    ok = registry.stream(f'chaos.{node}')\n"
                "    bad = registry.stream(f'node.{node}')\n"
            ),
        })
        assert [v.rule_id for v in violations] == ["CONC-RNG-STREAM"]


class TestPayload:
    def test_unpicklable_constructor_arg_flagged(self):
        violations = run_check({
            "repro.parallel.pool": (
                "def launch(submit, Engine):\n"
                "    submit(Engine())\n"
            ),
        })
        assert [v.rule_id for v in violations] == ["CONC-PAYLOAD"]

    def test_tainted_local_flagged(self):
        violations = run_check({
            "repro.parallel.pool": (
                "def launch(map_jobs, Engine):\n"
                "    engine = Engine()\n"
                "    map_jobs(engine)\n"
            ),
        })
        assert [v.rule_id for v in violations] == ["CONC-PAYLOAD"]

    def test_plain_payload_clean(self):
        violations = run_check({
            "repro.parallel.pool": (
                "def launch(map_jobs):\n"
                "    map_jobs([1, 2, 3])\n"
            ),
        })
        assert violations == []
