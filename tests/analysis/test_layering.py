"""Layering lint: the contract parser and the four LAY rules."""

from __future__ import annotations

import pytest

from repro.analysis import parse_contract, parse_source
from repro.analysis.layering import check, load_contract
from repro.errors import AnalysisError

CONTRACT = parse_contract(
    """
[allowed]
errors = []
units = ["errors"]
sim = ["errors", "units"]
experiments = ["errors", "units", "sim"]
parallel = ["errors", "experiments"]
cli = ["errors", "units", "sim", "experiments", "parallel"]
api = ["errors", "units", "sim", "experiments"]
__init__ = ["api"]
lazy_allow = [["experiments", "parallel"]]

[restricted]
parallel = ["experiments", "cli", "parallel"]

[facade]
roots = ["examples", "scripts"]
allowed = ["api", "__init__"]
"""
)


def rule_ids(source: str, module: str) -> list[str]:
    return [v.rule_id for v in check(parse_source(source, module=module), CONTRACT)]


class TestContractParser:
    def test_packaged_contract_loads_and_is_dag(self):
        contract = load_contract()
        assert "experiments" in contract.packages()
        assert ("experiments", "parallel") in contract.lazy_allow

    def test_packaged_contract_places_telemetry_foundation_adjacent(self):
        """Telemetry must stay importable from every simulation layer.

        Its own imports are restricted to the foundation — anything more
        would cycle with the layers that call into the hub.
        """
        contract = load_contract()
        assert "telemetry" in contract.packages()
        allowed = set(contract.allowed["telemetry"])
        assert allowed <= {"errors", "units", "formatting"}
        for importer in ("sim", "cluster", "runtime", "core", "experiments", "cli"):
            assert "telemetry" in contract.allowed[importer], importer

    def test_unknown_package_in_deps_rejected(self):
        with pytest.raises(AnalysisError, match="unknown packages"):
            parse_contract("[allowed]\nsim = [\"nonexistent\"]\n")

    def test_cycle_rejected(self):
        with pytest.raises(AnalysisError, match="cyclic"):
            parse_contract(
                "[allowed]\na = [\"b\"]\nb = [\"a\"]\n"
            )

    def test_missing_allowed_table_rejected(self):
        with pytest.raises(AnalysisError, match="allowed"):
            parse_contract("[restricted]\n")

    def test_malformed_lazy_allow_rejected(self):
        with pytest.raises(AnalysisError, match="lazy_allow"):
            parse_contract(
                "[allowed]\nsim = []\nlazy_allow = [[\"sim\"]]\n"
            )

    def test_invalid_toml_rejected(self):
        with pytest.raises(AnalysisError, match="invalid"):
            parse_contract("not toml [")


class TestLayDag:
    def test_downward_import_allowed(self):
        src = "from repro.errors import ReproError\n"
        assert rule_ids(src, "repro.sim.engine") == []

    def test_upward_import_flagged(self):
        src = "from repro.experiments.config import BaselineConfig\n"
        assert rule_ids(src, "repro.sim.engine") == ["LAY-DAG"]

    def test_sibling_module_always_allowed(self):
        src = "from repro.sim.events import Event\n"
        assert rule_ids(src, "repro.sim.engine") == []

    def test_type_checking_import_exempt(self):
        src = (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.experiments.config import BaselineConfig\n"
        )
        assert rule_ids(src, "repro.sim.engine") == []

    def test_undeclared_package_surfaces(self):
        src = "from repro.errors import ReproError\n"
        assert rule_ids(src, "repro.newpkg.mod") == ["LAY-DAG"]

    def test_non_repro_imports_ignored(self):
        src = "import numpy as np\nimport os\n"
        assert rule_ids(src, "repro.sim.engine") == []


class TestLayLazy:
    def test_sanctioned_lazy_upward_import_allowed(self):
        src = (
            "def run(n_jobs):\n"
            "    from repro.parallel import run_configs_parallel\n"
            "    return run_configs_parallel\n"
        )
        assert rule_ids(src, "repro.experiments.runner") == []

    def test_unsanctioned_lazy_upward_import_flagged(self):
        src = (
            "def run():\n"
            "    from repro.experiments.config import BaselineConfig\n"
            "    return BaselineConfig\n"
        )
        assert rule_ids(src, "repro.sim.engine") == ["LAY-LAZY"]

    def test_top_level_import_not_excused_by_lazy_allow(self):
        # lazy_allow covers *function-level* imports only; at module
        # load time experiments -> parallel would form a cycle.
        src = "from repro.parallel import run_configs_parallel\n"
        assert rule_ids(src, "repro.experiments.runner") == ["LAY-DAG"]


class TestLayPrivate:
    def test_restricted_package_from_outsider_flagged(self):
        src = "from repro.parallel.pool import map_jobs\n"
        assert rule_ids(src, "repro.sim.engine") == ["LAY-PRIVATE"]

    def test_restricted_package_from_allowed_importer(self):
        src = (
            "def run():\n"
            "    from repro.parallel.pool import map_jobs\n"
            "    return map_jobs\n"
        )
        assert rule_ids(src, "repro.experiments.runner") == []

    def test_restricted_package_imports_itself_freely(self):
        src = "from repro.parallel.jobs import JobSpec\n"
        assert rule_ids(src, "repro.parallel.dispatch") == []


class TestLayFacade:
    def facade_ids(self, source: str, path: str) -> list[str]:
        info = parse_source(source, module="example", path=path)
        return [v.rule_id for v in check(info, CONTRACT)]

    def test_deep_import_from_examples_flagged(self):
        src = "from repro.sim.engine import Engine\n"
        assert self.facade_ids(src, "examples/quickstart.py") == ["LAY-FACADE"]

    def test_plain_import_form_also_flagged(self):
        src = "import repro.experiments.runner\n"
        assert self.facade_ids(src, "scripts/sweep.py") == ["LAY-FACADE"]

    def test_facade_import_allowed(self):
        src = "from repro.api import build_system\n"
        assert self.facade_ids(src, "examples/quickstart.py") == []

    def test_root_reexport_allowed(self):
        src = "from repro import build_system\n"
        assert self.facade_ids(src, "examples/quickstart.py") == []

    def test_non_facade_tree_exempt(self):
        src = "from repro.sim.engine import Engine\n"
        assert self.facade_ids(src, "tools/probe.py") == []

    def test_type_checking_import_exempt(self):
        src = (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.sim.engine import Engine\n"
        )
        assert self.facade_ids(src, "examples/quickstart.py") == []

    def test_unknown_facade_allowed_package_rejected(self):
        with pytest.raises(AnalysisError):
            parse_contract(
                "[allowed]\nerrors = []\n[facade]\nallowed = [\"ghost\"]\n"
            )

    def test_packaged_contract_covers_examples_and_scripts(self):
        contract = load_contract()
        assert {"examples", "scripts"} <= set(contract.facade_roots)
        assert "api" in contract.facade_allowed
