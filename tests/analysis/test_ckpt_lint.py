"""Checkpoint-safety lint: calendar callbacks and OS-handle state."""

from __future__ import annotations

from repro.analysis import parse_source
from repro.analysis.ckpt import SNAPSHOT_SCOPE, check


def rule_ids(source: str, module: str = "repro.sim.fake") -> list[str]:
    return [v.rule_id for v in check(parse_source(source, module=module))]


class TestScope:
    def test_snapshot_scope_covers_the_simulation_stack(self):
        for package in ("sim", "cluster", "core", "recovery", "telemetry"):
            assert package in SNAPSHOT_SCOPE

    def test_modules_outside_scope_are_ignored(self):
        src = "engine.schedule(1.0, lambda: None)\n"
        assert rule_ids(src, module="repro.analysis.fake") == []
        assert rule_ids(src, module="otherpkg.sim.fake") == []


class TestCalendarCallbacks:
    def test_lambda_callback_flagged(self):
        src = "engine.schedule(1.0, lambda: None)\n"
        assert rule_ids(src) == ["CKPT-LAMBDA-CB"]

    def test_lambda_in_every_flagged(self):
        src = "engine.every(0.5, lambda: tick())\n"
        assert rule_ids(src) == ["CKPT-LAMBDA-CB"]

    def test_lambda_as_scheduled_argument_flagged(self):
        # Arguments to the callback are pickled with the calendar too.
        src = "engine.schedule_at(2.0, fire, lambda: 1)\n"
        assert rule_ids(src) == ["CKPT-LAMBDA-CB"]

    def test_local_function_callback_flagged(self):
        src = (
            "def arm(engine):\n"
            "    def on_fire():\n"
            "        pass\n"
            "    engine.schedule(1.0, on_fire)\n"
        )
        assert rule_ids(src) == ["CKPT-LOCAL-CB"]

    def test_bound_method_callback_allowed(self):
        src = "engine.schedule(1.0, self.step, priority=-10, label='rm.step')\n"
        assert rule_ids(src) == []

    def test_module_level_callable_allowed(self):
        src = (
            "class _Tick:\n"
            "    def __call__(self):\n"
            "        pass\n"
            "def arm(engine):\n"
            "    engine.schedule(1.0, _Tick())\n"
        )
        assert rule_ids(src) == []

    def test_non_payload_keywords_exempt(self):
        src = "engine.schedule(1.0, self.step, priority=100, label='x')\n"
        assert rule_ids(src) == []

    def test_unrelated_schedule_lambda_outside_scope_only(self):
        # Same source inside snapshot scope IS flagged.
        src = "cron.schedule(1.0, lambda: None)\n"
        assert rule_ids(src, module="repro.cluster.fake") == ["CKPT-LAMBDA-CB"]


class TestHandleState:
    def test_open_handle_without_getstate_flagged(self):
        src = (
            "class Sink:\n"
            "    def __init__(self, path):\n"
            "        self._fh = path.open('w')\n"
        )
        assert rule_ids(src) == ["CKPT-HANDLE"]

    def test_lock_without_getstate_flagged(self):
        src = (
            "class Shared:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
        )
        assert rule_ids(src) == ["CKPT-HANDLE"]

    def test_getstate_hook_clears_the_class(self):
        src = (
            "class Sink:\n"
            "    def __init__(self, path):\n"
            "        self._fh = path.open('w')\n"
            "    def __getstate__(self):\n"
            "        state = dict(self.__dict__)\n"
            "        state['_fh'] = None\n"
            "        return state\n"
        )
        assert rule_ids(src) == []

    def test_reduce_hook_clears_the_class(self):
        src = (
            "class Null:\n"
            "    def __init__(self):\n"
            "        self._thread = Thread()\n"
            "    def __reduce__(self):\n"
            "        return (Null, ())\n"
        )
        assert rule_ids(src) == []

    def test_plain_state_allowed(self):
        src = (
            "class Plain:\n"
            "    def __init__(self):\n"
            "        self.values = []\n"
            "        self.count = 0\n"
        )
        assert rule_ids(src) == []

    def test_local_open_not_stored_on_self_allowed(self):
        src = (
            "class Writer:\n"
            "    def dump(self, path):\n"
            "        with path.open('w') as fh:\n"
            "            fh.write('x')\n"
        )
        assert rule_ids(src) == []


class TestRegistration:
    def test_rules_registered_in_engine(self):
        from repro.analysis.engine import ALL_RULES

        for rule_id in ("CKPT-LAMBDA-CB", "CKPT-LOCAL-CB", "CKPT-HANDLE"):
            assert rule_id in ALL_RULES

    def test_source_tree_is_ckpt_clean(self):
        from pathlib import Path

        from repro.analysis import lint_paths

        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        violations, n_files = lint_paths(
            [src],
            select=["CKPT-LAMBDA-CB", "CKPT-LOCAL-CB", "CKPT-HANDLE"],
            cache_path=None,
            project_rules=False,
        )
        assert n_files > 100
        assert violations == []
