"""Lint driver and CLI: file walking, reports, exit codes, rule selection."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    ALL_RULES,
    lint_paths,
    render_json,
    render_rules,
    render_text,
)
from repro.cli import main
from repro.errors import AnalysisError

CLEAN = "from repro.errors import ReproError\n\nX = 1\n"
DIRTY = "import time\n\nT = time.time()\n"


def make_tree(tmp_path, sources: dict[str, str]):
    """Lay out a synthetic repro package on disk."""
    for rel, src in sources.items():
        target = tmp_path / "repro" / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(src)
    return tmp_path / "repro"


class TestLintPaths:
    def test_clean_tree(self, tmp_path):
        root = make_tree(tmp_path, {"sim/mod.py": CLEAN})
        violations, n_files = lint_paths([root])
        assert violations == []
        assert n_files == 1

    def test_violation_found_with_position(self, tmp_path):
        root = make_tree(tmp_path, {"sim/mod.py": DIRTY})
        violations, _ = lint_paths([root])
        assert [v.rule_id for v in violations] == ["DET-TIME"]
        assert violations[0].line == 3

    def test_single_file_target(self, tmp_path):
        root = make_tree(tmp_path, {"sim/mod.py": DIRTY})
        violations, n_files = lint_paths([root / "sim" / "mod.py"])
        assert n_files == 1
        assert len(violations) == 1

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(AnalysisError, match="no such file"):
            lint_paths([tmp_path / "nope"])

    def test_unknown_rule_id_raises(self, tmp_path):
        root = make_tree(tmp_path, {"sim/mod.py": CLEAN})
        with pytest.raises(AnalysisError, match="unknown rule"):
            lint_paths([root], select=["NOT-A-RULE"])

    def test_select_narrows_rules(self, tmp_path):
        both = "import time\nimport random\nT = time.time()\n"
        root = make_tree(tmp_path, {"sim/mod.py": both})
        violations, _ = lint_paths([root], select=["DET-TIME"])
        assert [v.rule_id for v in violations] == ["DET-TIME"]

    def test_syntax_error_is_an_analysis_error(self, tmp_path):
        root = make_tree(tmp_path, {"sim/bad.py": "def broken(:\n"})
        with pytest.raises(AnalysisError, match="parse"):
            lint_paths([root])


class TestRendering:
    def test_text_report_lists_counts(self, tmp_path):
        root = make_tree(tmp_path, {"sim/mod.py": DIRTY})
        violations, n = lint_paths([root])
        text = render_text(violations, n)
        assert "DET-TIME" in text and "1 violation" in text

    def test_json_report_round_trips(self, tmp_path):
        root = make_tree(tmp_path, {"sim/mod.py": DIRTY})
        violations, n = lint_paths([root])
        data = json.loads(render_json(violations, n))
        assert data["clean"] is False
        assert data["counts"] == {"DET-TIME": 1}
        assert data["violations"][0]["line"] == 3

    def test_rule_catalogue_covers_every_rule(self):
        catalogue = render_rules()
        for rule_id in ALL_RULES:
            assert rule_id in catalogue

    def test_rule_ids_are_unique_across_passes(self):
        # ALL_RULES is a dict keyed by id; collisions would silently drop
        # a rule from the catalogue.  Spot-check the expected families.
        families = {rid.split("-")[0] for rid in ALL_RULES}
        assert families == {
            "DET", "UNIT", "LAY", "PCK", "CKPT", "VEC", "CONC", "API",
            "LINT",
        }


class TestCli:
    def test_lint_clean_exits_zero(self, tmp_path, capsys):
        root = make_tree(tmp_path, {"sim/mod.py": CLEAN})
        assert main(["lint", str(root)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_violations_exit_one(self, tmp_path, capsys):
        root = make_tree(tmp_path, {"sim/mod.py": DIRTY})
        assert main(["lint", str(root)]) == 1
        assert "DET-TIME" in capsys.readouterr().out

    def test_lint_json_format(self, tmp_path, capsys):
        root = make_tree(tmp_path, {"sim/mod.py": DIRTY})
        assert main(["lint", str(root), "--format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["counts"] == {"DET-TIME": 1}

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        assert "DET-TIME" in capsys.readouterr().out

    def test_lint_custom_contract(self, tmp_path, capsys):
        contract = tmp_path / "contract.toml"
        contract.write_text("[allowed]\nsim = []\n")
        root = make_tree(
            tmp_path, {"sim/mod.py": "from repro.errors import ReproError\n"}
        )
        # errors is unknown to this minimal contract -> LAY violation.
        assert main(["lint", str(root), "--contract", str(contract)]) == 1
        assert "LAY-DAG" in capsys.readouterr().out

    def test_lint_bad_path_reports_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "missing")]) == 2
        assert "error" in capsys.readouterr().err
