"""VEC-* rules: sort stability, total-order keys, dtype discipline."""

from __future__ import annotations

from repro.analysis import parse_contract, parse_source
from repro.analysis.vector_lint import check

CONTRACT = parse_contract(
    """
[allowed]
sim = []

[vectorization]
kernel_modules = ["repro.sim", "repro.regression"]
""",
    origin="<test>",
)


def run_check(source: str, module: str = "repro.sim.kernel"):
    info = parse_source(source, module=module)
    return [v.rule_id for v in check(info, CONTRACT)]


class TestSortStable:
    def test_argsort_without_kind_flagged(self):
        src = "import numpy as np\ndef f(a):\n    return np.argsort(a)\n"
        assert run_check(src) == ["VEC-SORT-STABLE"]

    def test_argsort_with_stable_kind_clean(self):
        src = (
            "import numpy as np\n"
            "def f(a):\n    return np.argsort(a, kind='stable')\n"
        )
        assert run_check(src) == []

    def test_mergesort_kind_accepted(self):
        src = (
            "import numpy as np\n"
            "def f(a):\n    return np.sort(a, kind='mergesort')\n"
        )
        assert run_check(src) == []

    def test_method_argsort_flagged(self):
        src = "def f(a):\n    return a.argsort()\n"
        assert run_check(src) == ["VEC-SORT-STABLE"]

    def test_outside_kernel_scope_ignored(self):
        src = "import numpy as np\ndef f(a):\n    return np.argsort(a)\n"
        assert run_check(src, module="repro.formatting.tables") == []


class TestSortKey:
    def test_scalar_lambda_key_flagged(self):
        src = "def f(xs):\n    return sorted(xs, key=lambda e: e.t)\n"
        assert run_check(src) == ["VEC-SORT-KEY"]

    def test_tuple_lambda_key_clean(self):
        src = (
            "def f(xs):\n"
            "    return sorted(xs, key=lambda e: (e.t, e.seq))\n"
        )
        assert run_check(src) == []

    def test_named_key_function_not_flagged(self):
        # A named key (Event.sort_key) is assumed to return a total
        # order; only inline scalar lambdas are statically rejectable.
        src = "def f(xs, key_fn):\n    return sorted(xs, key=key_fn)\n"
        assert run_check(src) == []

    def test_list_sort_method_checked(self):
        src = "def f(xs):\n    xs.sort(key=lambda e: e.t)\n"
        assert run_check(src) == ["VEC-SORT-KEY"]


class TestFloatReduce:
    def test_sum_over_set_comprehension_flagged(self):
        src = "def f(xs):\n    return sum({x * 2 for x in xs})\n"
        assert run_check(src) == ["VEC-FLOAT-REDUCE"]

    def test_sum_over_set_call_flagged(self):
        src = "def f(xs):\n    return sum(set(xs))\n"
        assert run_check(src) == ["VEC-FLOAT-REDUCE"]

    def test_generator_over_set_flagged(self):
        src = "def f(xs):\n    return sum(x for x in set(xs))\n"
        assert run_check(src) == ["VEC-FLOAT-REDUCE"]

    def test_sum_over_list_clean(self):
        src = "def f(xs):\n    return sum(sorted(xs))\n"
        assert run_check(src) == []


class TestNarrow:
    def test_np_float32_call_flagged(self):
        src = "import numpy as np\ndef f(x):\n    return np.float32(x)\n"
        assert "VEC-NARROW" in run_check(src)

    def test_astype_string_flagged(self):
        src = "def f(a):\n    return a.astype('float32')\n"
        assert "VEC-NARROW" in run_check(src)

    def test_dtype_string_literal_flagged(self):
        src = (
            "import numpy as np\n"
            "def f():\n    return np.zeros(3, dtype='float32')\n"
        )
        assert "VEC-NARROW" in run_check(src)

    def test_float64_clean(self):
        src = (
            "import numpy as np\n"
            "def f(a):\n    return a.astype(np.float64)\n"
        )
        assert run_check(src) == []
