"""Pickling-safety lint: lambdas, closures and local classes in payloads."""

from __future__ import annotations

from repro.analysis import parse_source
from repro.analysis.pickling import check


def rule_ids(source: str, module: str = "repro.experiments.fake") -> list[str]:
    return [v.rule_id for v in check(parse_source(source, module=module))]


class TestLambdaPayloads:
    def test_lambda_worker_flagged(self):
        src = "results = map_jobs(jobs, n_jobs=2, worker=lambda j: j)\n"
        assert rule_ids(src) == ["PCK-LAMBDA"]

    def test_lambda_positional_flagged(self):
        src = "pool.submit(lambda: 1)\n"
        assert rule_ids(src) == ["PCK-LAMBDA"]

    def test_lambda_in_jobspec_flagged(self):
        src = "spec = JobSpec(config=lambda: None)\n"
        assert rule_ids(src) == ["PCK-LAMBDA"]

    def test_module_level_worker_allowed(self):
        src = (
            "def run_one(job):\n"
            "    return job\n"
            "results = map_jobs(jobs, worker=run_one)\n"
        )
        assert rule_ids(src) == []

    def test_parent_side_callbacks_exempt(self):
        # on_result runs in the parent process and is never pickled.
        src = "results = map_jobs(jobs, on_result=lambda i, n, r: None)\n"
        assert rule_ids(src) == []

    def test_unrelated_lambda_allowed(self):
        src = "best = max(items, key=lambda x: x.score)\n"
        assert rule_ids(src) == []


class TestLocalFunctions:
    def test_nested_function_worker_flagged(self):
        src = (
            "def run(jobs):\n"
            "    def worker(job):\n"
            "        return job\n"
            "    return map_jobs(jobs, worker=worker)\n"
        )
        assert rule_ids(src) == ["PCK-LOCAL-FUNC"]

    def test_module_level_function_not_confused(self):
        src = (
            "def worker(job):\n"
            "    return job\n"
            "def run(jobs):\n"
            "    return map_jobs(jobs, worker=worker)\n"
        )
        assert rule_ids(src) == []


class TestLocalClasses:
    def test_local_class_in_parallel_module_flagged(self):
        src = (
            "def make():\n"
            "    class Payload:\n"
            "        pass\n"
            "    return Payload\n"
        )
        assert rule_ids(src, module="repro.parallel.fake") == [
            "PCK-LOCAL-CLASS"
        ]

    def test_module_level_class_allowed(self):
        src = "class Payload:\n    pass\n"
        assert rule_ids(src, module="repro.parallel.fake") == []

    def test_local_class_outside_parallel_not_flagged(self):
        src = (
            "def make():\n"
            "    class Helper:\n"
            "        pass\n"
            "    return Helper\n"
        )
        assert rule_ids(src, module="repro.experiments.fake") == []
