"""Incremental cache, stale-noqa meta-rule, SARIF and --changed modes."""

from __future__ import annotations

import json
import subprocess

from repro.analysis import lint_paths, render_sarif
from repro.analysis.cache import load_cache, rules_signature
from repro.analysis.layering import contract_text
from repro.cli import main

DIRTY = "import time\n\nT = time.time()\n"
CLEAN = "from repro.errors import ReproError\n\nX = 1\n"


def make_tree(tmp_path, sources):
    for rel, src in sources.items():
        target = tmp_path / "repro" / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(src)
    return tmp_path / "repro"


class TestCache:
    def test_warm_run_matches_cold_run(self, tmp_path):
        root = make_tree(tmp_path, {"sim/a.py": DIRTY, "sim/b.py": CLEAN})
        cache = tmp_path / "cache.json"
        cold, n_cold = lint_paths([root], cache_path=cache)
        warm, n_warm = lint_paths([root], cache_path=cache)
        assert [v.as_dict() for v in warm] == [v.as_dict() for v in cold]
        assert n_warm == n_cold == 2

    def test_warm_run_skips_parsing(self, tmp_path, monkeypatch):
        root = make_tree(tmp_path, {"sim/a.py": DIRTY})
        cache = tmp_path / "cache.json"
        lint_paths([root], cache_path=cache)
        import repro.analysis.engine as engine

        def boom(*args, **kwargs):
            raise AssertionError("warm run must not parse")

        monkeypatch.setattr(engine, "parse_source", boom)
        violations, _ = lint_paths([root], cache_path=cache)
        assert [v.rule_id for v in violations] == ["DET-TIME"]

    def test_edited_file_invalidates_only_its_record(self, tmp_path):
        root = make_tree(tmp_path, {"sim/a.py": CLEAN, "sim/b.py": CLEAN})
        cache = tmp_path / "cache.json"
        lint_paths([root], cache_path=cache)
        (root / "sim" / "a.py").write_text(DIRTY)
        violations, _ = lint_paths([root], cache_path=cache)
        assert [v.rule_id for v in violations] == ["DET-TIME"]
        assert violations[0].path.endswith("a.py")

    def test_contract_change_invalidates_signature(self, tmp_path):
        sig = rules_signature(contract_text(None))
        other = rules_signature(contract_text(None) + "\n# tweak\n")
        assert sig != other

    def test_corrupt_cache_file_tolerated(self, tmp_path):
        root = make_tree(tmp_path, {"sim/a.py": DIRTY})
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        violations, _ = lint_paths([root], cache_path=cache)
        assert [v.rule_id for v in violations] == ["DET-TIME"]
        # And the bad file was replaced by a valid one.
        loaded = load_cache(str(cache), rules_signature(contract_text(None)))
        assert loaded.files

    def test_project_findings_cached_across_runs(self, tmp_path):
        root = make_tree(tmp_path, {
            "parallel/jobs.py": (
                "CACHE = {}\n"
                "def run_job():\n    CACHE[1] = 2\n"
            ),
        })
        cache = tmp_path / "cache.json"
        cold, _ = lint_paths([root], cache_path=cache)
        warm, _ = lint_paths([root], cache_path=cache)
        assert [v.rule_id for v in cold] == ["CONC-GLOBAL-MUT"]
        assert [v.as_dict() for v in warm] == [v.as_dict() for v in cold]


class TestUnusedNoqa:
    def test_stale_suppression_flagged(self, tmp_path):
        root = make_tree(tmp_path, {
            "sim/a.py": "x = 1  # repro: noqa DET-TIME\n",
        })
        violations, _ = lint_paths([root])
        assert [v.rule_id for v in violations] == ["LINT-UNUSED-NOQA"]

    def test_live_suppression_not_flagged(self, tmp_path):
        root = make_tree(tmp_path, {
            "sim/a.py": (
                "import time\n"
                "t = time.time()  # repro: noqa DET-TIME\n"
            ),
        })
        violations, _ = lint_paths([root])
        assert violations == []

    def test_unknown_rule_id_flagged(self, tmp_path):
        root = make_tree(tmp_path, {
            "sim/a.py": (
                "import time\n"
                "t = time.time()  # repro: noqa DET-TYPO\n"
            ),
        })
        violations, _ = lint_paths([root])
        ids = [v.rule_id for v in violations]
        assert "LINT-UNUSED-NOQA" in ids  # the typo'd comment is stale
        assert "DET-TIME" in ids  # and it suppressed nothing

    def test_continuation_line_noqa_is_stale(self, tmp_path):
        # Violations anchor to the statement's first line; a suppression
        # on a continuation line silences nothing, so it is stale.
        root = make_tree(tmp_path, {
            "sim/a.py": (
                "import time\n"
                "t = time.time(\n"
                ")  # repro: noqa DET-TIME\n"
            ),
        })
        violations, _ = lint_paths([root])
        ids = sorted(v.rule_id for v in violations)
        assert ids == ["DET-TIME", "LINT-UNUSED-NOQA"]

    def test_docstring_mention_not_a_suppression(self, tmp_path):
        root = make_tree(tmp_path, {
            "sim/a.py": (
                '"""Docs mentioning # repro: noqa DET-TIME literally."""\n'
                "x = 1\n"
            ),
        })
        violations, _ = lint_paths([root])
        assert violations == []


class TestSarif:
    def test_sarif_payload_shape(self, tmp_path):
        root = make_tree(tmp_path, {"sim/a.py": DIRTY})
        violations, n = lint_paths([root])
        payload = json.loads(render_sarif(violations, n))
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert run["results"][0]["ruleId"] == "DET-TIME"
        region = run["results"][0]["locations"][0]["physicalLocation"]
        assert region["region"]["startLine"] == 3
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"DET-TIME", "CONC-GLOBAL-MUT", "VEC-SORT-STABLE"} <= rule_ids

    def test_cli_sarif_format(self, tmp_path, capsys):
        root = make_tree(tmp_path, {"sim/a.py": DIRTY})
        assert main(["lint", str(root), "--format", "sarif", "--no-cache"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"]


class TestChanged:
    def init_repo(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        subprocess.run(["git", "init", "-q"], check=True)
        subprocess.run(["git", "config", "user.email", "t@t"], check=True)
        subprocess.run(["git", "config", "user.name", "t"], check=True)

    def test_changed_lints_only_diffed_files(self, tmp_path, monkeypatch, capsys):
        self.init_repo(tmp_path, monkeypatch)
        root = make_tree(tmp_path, {"sim/a.py": CLEAN, "sim/b.py": CLEAN})
        subprocess.run(["git", "add", "-A"], check=True)
        subprocess.run(["git", "commit", "-qm", "base"], check=True)
        (root / "sim" / "a.py").write_text(DIRTY)
        assert main(["lint", "--changed", "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "DET-TIME" in out
        assert "1 file(s)" in out  # b.py untouched, not linted

    def test_changed_includes_untracked_files(self, tmp_path, monkeypatch, capsys):
        self.init_repo(tmp_path, monkeypatch)
        root = make_tree(tmp_path, {"sim/a.py": CLEAN})
        subprocess.run(["git", "add", "-A"], check=True)
        subprocess.run(["git", "commit", "-qm", "base"], check=True)
        (root / "sim" / "new.py").write_text(DIRTY)
        assert main(["lint", "--changed", "--no-cache"]) == 1
        assert "DET-TIME" in capsys.readouterr().out

    def test_changed_clean_when_no_diff(self, tmp_path, monkeypatch, capsys):
        self.init_repo(tmp_path, monkeypatch)
        make_tree(tmp_path, {"sim/a.py": CLEAN})
        subprocess.run(["git", "add", "-A"], check=True)
        subprocess.run(["git", "commit", "-qm", "base"], check=True)
        assert main(["lint", "--changed", "--no-cache"]) == 0
        assert "0 changed" in capsys.readouterr().out

    def test_changed_skips_project_rules(self, tmp_path, monkeypatch, capsys):
        # A worker-reachable mutation needs the whole project; --changed
        # must not half-run it (CI's full lint covers it).
        self.init_repo(tmp_path, monkeypatch)
        root = make_tree(tmp_path, {"parallel/jobs.py": CLEAN})
        subprocess.run(["git", "add", "-A"], check=True)
        subprocess.run(["git", "commit", "-qm", "base"], check=True)
        (root / "parallel" / "jobs.py").write_text(
            "CACHE = {}\n"
            "def run_job():\n    CACHE[1] = 2\n"
        )
        assert main(["lint", "--changed", "--no-cache"]) == 0
