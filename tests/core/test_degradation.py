"""Tests for graceful degradation (data shedding)."""

from __future__ import annotations

import pytest

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.topology import build_system
from repro.core.degradation import DataShedder, DegradationController
from repro.core.manager import AdaptiveResourceManager, RMConfig
from repro.core.predictive import PredictivePolicy
from repro.errors import ConfigurationError
from repro.runtime.executor import PeriodicTaskExecutor
from repro.tasks.state import ReplicaAssignment

from tests.conftest import exact_estimator


class TestDataShedder:
    def test_uncapped_passes_through(self):
        shedder = DataShedder(offered=lambda c: 1000.0)
        assert shedder(0) == 1000.0
        assert shedder.shed_fraction == 0.0

    def test_cap_limits_processing(self):
        shedder = DataShedder(offered=lambda c: 1000.0, cap_tracks=600.0)
        assert shedder(0) == 600.0
        assert shedder.shed_fraction == pytest.approx(0.4)

    def test_tighten_respects_mandatory_floor(self):
        shedder = DataShedder(
            offered=lambda c: 1000.0, min_cap_tracks=300.0
        )
        for _ in range(20):
            shedder.tighten(0.5, reference_tracks=1000.0)
        assert shedder.cap_tracks == 300.0

    def test_relax_releases_cap_above_offer(self):
        shedder = DataShedder(offered=lambda c: 1000.0, cap_tracks=900.0)
        shedder.relax(1.2, offered_tracks=1000.0)
        assert shedder.cap_tracks == float("inf")

    def test_relax_noop_when_uncapped(self):
        shedder = DataShedder(offered=lambda c: 1000.0)
        shedder.relax(1.2, offered_tracks=1000.0)
        assert shedder.cap_tracks == float("inf")

    def test_bad_floor_rejected(self):
        with pytest.raises(ConfigurationError):
            DataShedder(offered=lambda c: 1.0, min_cap_tracks=0.0)


class TestDegradationController:
    def test_bad_factors_rejected(self):
        shedder = DataShedder(offered=lambda c: 1.0)
        manager = object.__new__(AdaptiveResourceManager)  # placeholder
        with pytest.raises(ConfigurationError):
            DegradationController(manager, shedder, shed_factor=1.0)
        with pytest.raises(ConfigurationError):
            DegradationController(manager, shedder, recover_factor=1.0)

    @staticmethod
    def build_stack(workload_tracks, n_processors=3):
        """A deliberately undersized machine to force Fig-5 FAILUREs."""
        system = build_system(n_processors=n_processors, seed=2)
        task = aaw_task(noise_sigma=0.0)
        assignment = ReplicaAssignment(
            task,
            default_initial_placement(task, [p.name for p in system.processors]),
        )
        shedder = DataShedder(
            offered=lambda c: workload_tracks, min_cap_tracks=500.0
        )
        executor = PeriodicTaskExecutor(system, task, assignment, workload=shedder)
        manager = AdaptiveResourceManager(
            system, executor, exact_estimator(task),
            policy=PredictivePolicy(), config=RMConfig(initial_d_tracks=1000.0),
        )
        controller = DegradationController(manager, shedder)
        return system, executor, manager, shedder, controller

    def test_overload_triggers_shedding(self):
        system, executor, manager, shedder, controller = self.build_stack(
            12000.0
        )
        manager.start(25)
        controller.start(25)
        executor.start(25)
        system.engine.run_until(28.0)
        assert controller.sheds > 0
        assert shedder.shed_fraction > 0.1
        # With shedding, the tail of the run meets deadlines that the
        # 3-node machine could never meet at the full offered load.
        tail = executor.records[-5:]
        assert sum(1 for r in tail if r.missed) <= 1

    def test_feasible_load_never_sheds(self):
        system, executor, manager, shedder, controller = self.build_stack(
            1500.0, n_processors=6
        )
        manager.start(12)
        controller.start(12)
        executor.start(12)
        system.engine.run_until(14.0)
        assert controller.sheds == 0
        assert shedder.shed_fraction == 0.0

    def test_cap_recovers_when_load_drops(self):
        state = {"load": 12000.0}
        system = build_system(n_processors=3, seed=2)
        task = aaw_task(noise_sigma=0.0)
        assignment = ReplicaAssignment(
            task,
            default_initial_placement(task, [p.name for p in system.processors]),
        )
        shedder = DataShedder(
            offered=lambda c: state["load"], min_cap_tracks=500.0
        )
        executor = PeriodicTaskExecutor(system, task, assignment, workload=shedder)
        manager = AdaptiveResourceManager(
            system, executor, exact_estimator(task),
            policy=PredictivePolicy(), config=RMConfig(initial_d_tracks=1000.0),
        )
        controller = DegradationController(manager, shedder)
        manager.start(40)
        controller.start(40)
        executor.start(40)
        system.engine.schedule_at(15.0, lambda: state.update(load=1200.0))
        system.engine.run_until(43.0)
        assert controller.sheds > 0
        assert controller.relaxations > 0
        assert shedder.cap_tracks == float("inf")  # fully recovered
