"""Unit tests for the run-time monitor."""

from __future__ import annotations

import pytest

from repro.bench.app import aaw_task, default_initial_placement
from repro.core.deadlines import DeadlineAssignment
from repro.core.monitoring import MonitorAction, RuntimeMonitor
from repro.errors import ConfigurationError
from repro.runtime.records import PeriodRecord, StageRecord
from repro.tasks.state import ReplicaAssignment


@pytest.fixture()
def task():
    return aaw_task(noise_sigma=0.0)


@pytest.fixture()
def assignment(task):
    names = [f"p{i}" for i in range(1, 7)]
    return ReplicaAssignment(task, default_initial_placement(task, names))


def budgets(task, per_stage=0.2):
    """A flat DeadlineAssignment for tests."""
    return DeadlineAssignment(
        subtask_deadlines={s.index: per_stage for s in task.subtasks},
        message_deadlines={m.index: 0.0 for m in task.messages},
        strategy="test",
    )


def record_with_latencies(task, latencies, period_index=0, release=0.0):
    """A completed PeriodRecord with the given per-subtask stage latencies."""
    record = PeriodRecord(
        period_index=period_index,
        release_time=release,
        d_tracks=1000.0,
        deadline=task.deadline,
    )
    t = release
    for subtask in task.subtasks:
        latency = latencies.get(subtask.index, 0.01)
        record.stages.append(
            StageRecord(
                subtask_index=subtask.index,
                replica_count=1,
                start_time=t,
                exec_finish_time=t + latency,
                message_in_delay=0.0,
            )
        )
        t += latency
    record.completion_time = t
    return record


class TestValidation:
    def test_bad_slack_fraction_rejected(self, task):
        with pytest.raises(ConfigurationError):
            RuntimeMonitor(task, slack_fraction=0.0)
        with pytest.raises(ConfigurationError):
            RuntimeMonitor(task, slack_fraction=1.0)

    def test_shutdown_fraction_must_exceed_slack_fraction(self, task):
        with pytest.raises(ConfigurationError):
            RuntimeMonitor(task, slack_fraction=0.5, shutdown_slack_fraction=0.4)

    def test_bad_window_rejected(self, task):
        with pytest.raises(ConfigurationError):
            RuntimeMonitor(task, window=0)


class TestClassification:
    def test_only_replicable_subtasks_judged(self, task, assignment):
        monitor = RuntimeMonitor(task)
        report = monitor.classify(0.0, [], budgets(task), assignment)
        assert {v.subtask_index for v in report.verdicts} == {3, 5}

    def test_no_records_means_ok(self, task, assignment):
        monitor = RuntimeMonitor(task)
        report = monitor.classify(0.0, [], budgets(task), assignment)
        assert all(v.action is MonitorAction.OK for v in report.verdicts)
        assert all(v.mean_stage_latency is None for v in report.verdicts)

    def test_low_slack_triggers_replicate(self, task, assignment):
        monitor = RuntimeMonitor(task, slack_fraction=0.2)
        # Budget 0.2, latency 0.19 -> slack 0.01 < 0.04.
        records = [record_with_latencies(task, {3: 0.19})]
        report = monitor.classify(1.0, records, budgets(task), assignment)
        verdict = {v.subtask_index: v for v in report.verdicts}[3]
        assert verdict.action is MonitorAction.REPLICATE
        assert verdict.slack == pytest.approx(0.01)

    def test_missed_stage_deadline_triggers_replicate(self, task, assignment):
        monitor = RuntimeMonitor(task)
        records = [record_with_latencies(task, {3: 0.35})]  # > budget
        report = monitor.classify(1.0, records, budgets(task), assignment)
        verdict = {v.subtask_index: v for v in report.verdicts}[3]
        assert verdict.action is MonitorAction.REPLICATE
        assert verdict.slack < 0

    def test_comfortable_slack_is_ok(self, task, assignment):
        monitor = RuntimeMonitor(task)
        # slack = 0.1/0.2 = 50%, between 20% and 60%.
        records = [record_with_latencies(task, {3: 0.10, 5: 0.10})]
        report = monitor.classify(1.0, records, budgets(task), assignment)
        assert all(v.action is MonitorAction.OK for v in report.verdicts)

    def test_high_slack_triggers_shutdown_only_with_replicas(
        self, task, assignment
    ):
        monitor = RuntimeMonitor(task, shutdown_slack_fraction=0.6)
        records = [record_with_latencies(task, {3: 0.01, 5: 0.01})]
        # Without extra replicas: OK (nothing to shut down).
        report = monitor.classify(1.0, records, budgets(task), assignment)
        assert all(v.action is MonitorAction.OK for v in report.verdicts)
        # With an extra replica on subtask 3: SHUTDOWN.
        assignment.add_replica(3, "p6")
        report = monitor.classify(1.0, records, budgets(task), assignment)
        verdicts = {v.subtask_index: v for v in report.verdicts}
        assert verdicts[3].action is MonitorAction.SHUTDOWN
        assert verdicts[5].action is MonitorAction.OK

    def test_overdue_flag_trumps_history(self, task, assignment):
        monitor = RuntimeMonitor(task)
        records = [record_with_latencies(task, {3: 0.01})]  # looks great
        report = monitor.classify(
            1.0, records, budgets(task), assignment, overdue_subtasks={3}
        )
        verdict = {v.subtask_index: v for v in report.verdicts}[3]
        assert verdict.action is MonitorAction.REPLICATE
        assert verdict.overdue

    def test_window_averages_recent_periods(self, task, assignment):
        monitor = RuntimeMonitor(task, window=3)
        records = [
            record_with_latencies(task, {3: 0.05}, period_index=0),
            record_with_latencies(task, {3: 0.10}, period_index=1),
            record_with_latencies(task, {3: 0.15}, period_index=2),
        ]
        report = monitor.classify(3.0, records, budgets(task), assignment)
        verdict = {v.subtask_index: v for v in report.verdicts}[3]
        assert verdict.mean_stage_latency == pytest.approx(0.10)
        assert verdict.observed_periods == 3

    def test_window_ignores_old_periods(self, task, assignment):
        monitor = RuntimeMonitor(task, window=2)
        records = [
            record_with_latencies(task, {3: 10.0}, period_index=0),  # ancient spike
            record_with_latencies(task, {3: 0.05}, period_index=1),
            record_with_latencies(task, {3: 0.05}, period_index=2),
        ]
        report = monitor.classify(3.0, records, budgets(task), assignment)
        verdict = {v.subtask_index: v for v in report.verdicts}[3]
        assert verdict.mean_stage_latency == pytest.approx(0.05)

    def test_message_in_delay_counts_toward_stage_latency(self, task, assignment):
        monitor = RuntimeMonitor(task)
        record = record_with_latencies(task, {3: 0.10})
        record.stage(3).message_in_delay = 0.15  # pushes 0.25 over budget 0.2
        report = monitor.classify(1.0, [record], budgets(task), assignment)
        verdict = {v.subtask_index: v for v in report.verdicts}[3]
        assert verdict.action is MonitorAction.REPLICATE


class TestReport:
    def test_candidates_filter(self, task, assignment):
        monitor = RuntimeMonitor(task)
        records = [record_with_latencies(task, {3: 0.19, 5: 0.10})]
        report = monitor.classify(1.0, records, budgets(task), assignment)
        replicate = report.candidates(MonitorAction.REPLICATE)
        assert [v.subtask_index for v in replicate] == [3]
        assert report.candidates(MonitorAction.SHUTDOWN) == []
