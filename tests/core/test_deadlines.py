"""Unit tests for EQF-variant deadline assignment (eqs. 1-2)."""

from __future__ import annotations

import pytest

from repro.bench.app import aaw_task
from repro.core.deadlines import STRATEGIES, assign_deadlines
from repro.errors import ConfigurationError


@pytest.fixture()
def task():
    return aaw_task(noise_sigma=0.0)


def uniform_estimates(task, exec_s=0.05, comm_s=0.01):
    return (
        [exec_s] * task.n_subtasks,
        [comm_s] * (task.n_subtasks - 1),
    )


class TestValidation:
    def test_unknown_strategy_rejected(self, task):
        exec_est, comm_est = uniform_estimates(task)
        with pytest.raises(ConfigurationError):
            assign_deadlines(task, exec_est, comm_est, strategy="magic")

    def test_wrong_exec_count_rejected(self, task):
        _, comm_est = uniform_estimates(task)
        with pytest.raises(ConfigurationError):
            assign_deadlines(task, [0.1] * 3, comm_est)

    def test_wrong_comm_count_rejected(self, task):
        exec_est, _ = uniform_estimates(task)
        with pytest.raises(ConfigurationError):
            assign_deadlines(task, exec_est, [0.1])

    def test_non_positive_exec_rejected(self, task):
        exec_est, comm_est = uniform_estimates(task)
        exec_est[2] = 0.0
        with pytest.raises(ConfigurationError):
            assign_deadlines(task, exec_est, comm_est)

    def test_negative_comm_rejected(self, task):
        exec_est, comm_est = uniform_estimates(task)
        comm_est[0] = -0.1
        with pytest.raises(ConfigurationError):
            assign_deadlines(task, exec_est, comm_est)

    def test_zero_comm_allowed(self, task):
        exec_est, comm_est = uniform_estimates(task)
        comm_est[0] = 0.0
        result = assign_deadlines(task, exec_est, comm_est)
        assert result.message_deadlines[1] >= 0.0


class TestCommonProperties:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_all_budgets_positive(self, task, strategy):
        exec_est, comm_est = uniform_estimates(task)
        result = assign_deadlines(task, exec_est, comm_est, strategy=strategy)
        assert all(v > 0 for v in result.subtask_deadlines.values())
        assert all(v > 0 for v in result.message_deadlines.values())

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_budget_at_least_estimate_when_slack_positive(self, task, strategy):
        exec_est, comm_est = uniform_estimates(task, exec_s=0.05, comm_s=0.01)
        result = assign_deadlines(task, exec_est, comm_est, strategy=strategy)
        for j, est in enumerate(exec_est, start=1):
            assert result.subtask_deadlines[j] >= est

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_stage_budget_combines_message_and_subtask(self, task, strategy):
        exec_est, comm_est = uniform_estimates(task)
        result = assign_deadlines(task, exec_est, comm_est, strategy=strategy)
        assert result.stage_budget(1) == result.subtask_deadlines[1]
        assert result.stage_budget(3) == pytest.approx(
            result.message_deadlines[2] + result.subtask_deadlines[3]
        )

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_budgets_scale_with_estimates(self, task, strategy):
        """A subtask with a larger estimate gets a larger budget."""
        exec_est, comm_est = uniform_estimates(task)
        exec_est[2] = 0.5  # subtask 3 dominates
        result = assign_deadlines(task, exec_est, comm_est, strategy=strategy)
        assert result.subtask_deadlines[3] > result.subtask_deadlines[1]


class TestSequentialEqf:
    def test_budgets_sum_exactly_to_deadline(self, task):
        exec_est, comm_est = uniform_estimates(task, exec_s=0.05, comm_s=0.01)
        result = assign_deadlines(task, exec_est, comm_est, strategy="sequential_eqf")
        assert result.total_budget() == pytest.approx(task.deadline)

    def test_equal_estimates_get_equal_budgets(self, task):
        exec_est, comm_est = uniform_estimates(task, exec_s=0.05, comm_s=0.05)
        result = assign_deadlines(task, exec_est, comm_est, strategy="sequential_eqf")
        budgets = list(result.subtask_deadlines.values())
        assert budgets == pytest.approx([budgets[0]] * len(budgets))

    def test_overload_floors_at_fraction_of_estimate(self, task):
        # Total estimated work far beyond the deadline.
        exec_est = [2.0] * task.n_subtasks
        comm_est = [0.5] * (task.n_subtasks - 1)
        result = assign_deadlines(task, exec_est, comm_est, strategy="sequential_eqf")
        for j, est in enumerate(exec_est, start=1):
            assert result.subtask_deadlines[j] >= 0.1 * est


class TestPaperEqf:
    def test_matches_closed_form(self, task):
        """dl(x_i) = est_i * D / RemainingWork_i."""
        exec_est, comm_est = uniform_estimates(task, exec_s=0.04, comm_s=0.02)
        result = assign_deadlines(task, exec_est, comm_est, strategy="paper_eqf")
        # Build the interleaved chain and verify each budget.
        chain = []
        for j in range(1, task.n_subtasks + 1):
            chain.append(("st", j, exec_est[j - 1]))
            if j < task.n_subtasks:
                chain.append(("m", j, comm_est[j - 1]))
        remaining = sum(e for _, _, e in chain)
        for kind, index, est in chain:
            expected = est * task.deadline / remaining
            if kind == "st":
                assert result.subtask_deadlines[index] == pytest.approx(expected)
            else:
                assert result.message_deadlines[index] == pytest.approx(expected)
            remaining -= est

    def test_terminal_stage_gets_full_deadline(self, task):
        """The documented pathology of the literal eq. 1 form."""
        exec_est, comm_est = uniform_estimates(task)
        result = assign_deadlines(task, exec_est, comm_est, strategy="paper_eqf")
        assert result.subtask_deadlines[task.n_subtasks] == pytest.approx(
            task.deadline
        )


class TestProportional:
    def test_budgets_proportional_to_estimates(self, task):
        exec_est = [0.01, 0.02, 0.04, 0.02, 0.01]
        comm_est = [0.01] * 4
        result = assign_deadlines(task, exec_est, comm_est, strategy="proportional")
        total = sum(exec_est) + sum(comm_est)
        for j, est in enumerate(exec_est, start=1):
            assert result.subtask_deadlines[j] == pytest.approx(
                est * task.deadline / total
            )

    def test_budgets_sum_to_deadline(self, task):
        exec_est, comm_est = uniform_estimates(task)
        result = assign_deadlines(task, exec_est, comm_est, strategy="proportional")
        assert result.total_budget() == pytest.approx(task.deadline)
