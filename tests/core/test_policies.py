"""Unit tests for the predictive (Fig. 5) and non-predictive (Fig. 7)
allocation policies and shutdown (Fig. 6)."""

from __future__ import annotations

import pytest

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.topology import build_system
from repro.core.allocation import (
    AllocationRequest,
    get_policy,
    register_policy,
    registered_policies,
)
from repro.core.deadlines import DeadlineAssignment
from repro.core.nonpredictive import NonPredictivePolicy
from repro.core.predictive import PredictivePolicy
from repro.core.shutdown import shut_down_a_replica
from repro.errors import AllocationError, ConfigurationError
from repro.tasks.state import ReplicaAssignment

from tests.conftest import exact_estimator


def make_request(subtask_index=3, d_tracks=5000.0, budget=0.35, n_processors=6):
    system = build_system(n_processors=n_processors, seed=0)
    task = aaw_task(noise_sigma=0.0)
    placement = default_initial_placement(task, [p.name for p in system.processors])
    assignment = ReplicaAssignment(task, placement)
    deadlines = DeadlineAssignment(
        subtask_deadlines={s.index: budget for s in task.subtasks},
        message_deadlines={m.index: 0.0 for m in task.messages},
        strategy="test",
    )
    return AllocationRequest(
        task=task,
        subtask_index=subtask_index,
        assignment=assignment,
        system=system,
        estimator=exact_estimator(task),
        deadlines=deadlines,
        d_tracks=d_tracks,
        total_periodic_tracks=d_tracks,
    )


class TestPredictivePolicy:
    def test_invalid_slack_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            PredictivePolicy(slack_fraction=1.0)

    def test_adds_minimum_replicas_to_meet_budget(self):
        """5000 tracks, budget 0.35, sl=0.2 -> threshold 0.28 s.

        With the analytic estimator (eex == demand, ecd tiny):
        k=2 -> Filter share 2500 tracks -> 0.3*625 + 2*25 = 237.5 ms: fits.
        """
        request = make_request(d_tracks=5000.0, budget=0.35)
        outcome = PredictivePolicy(slack_fraction=0.2).replicate(request)
        assert outcome.success
        assert len(outcome.added_processors) == 1
        assert request.assignment.replica_count(3) == 2
        assert outcome.forecast_latency < 0.28

    def test_larger_workload_needs_more_replicas(self):
        request = make_request(d_tracks=10000.0, budget=0.35)
        outcome = PredictivePolicy(slack_fraction=0.2).replicate(request)
        assert outcome.success
        # k=2: 0.3*25^2+2*25 = 237.5 ms... with d=10000, share=5000:
        # 0.3*2500+100 = 850 ms -> needs k>=3 (share 33.3: 0.3*1111+66=400)
        # -> k=4 (share 25: 237) fits 0.28 threshold.
        assert request.assignment.replica_count(3) >= 3

    def test_always_adds_at_least_one_replica(self):
        """A flagged candidate gets a replica even if forecasts look fine."""
        request = make_request(d_tracks=100.0, budget=0.9)
        outcome = PredictivePolicy().replicate(request)
        assert outcome.success
        assert len(outcome.added_processors) == 1

    def test_failure_when_processors_exhausted(self):
        request = make_request(d_tracks=20000.0, budget=0.05, n_processors=3)
        outcome = PredictivePolicy().replicate(request)
        assert not outcome.success
        # Paper semantics: replicas added along the way are kept.
        assert request.assignment.replica_count(3) == 3

    def test_places_on_least_utilized_processor(self):
        request = make_request(d_tracks=5000.0, budget=0.35)
        # Load p6 (the idle node) so p1 becomes least utilized... p1 hosts
        # subtask 1's original but utilization ranking considers any
        # non-hosting processor; make p6 busy:
        request.system.processor("p6").run_for(10.0)
        request.system.engine.run_until(4.0)
        outcome = PredictivePolicy().replicate(request)
        assert outcome.added_processors[0] != "p6"

    def test_skips_processors_already_hosting(self):
        request = make_request()
        request.assignment.reset(3, ["p3", "p6", "p1", "p2", "p4"])
        outcome = PredictivePolicy().replicate(request)
        for name in outcome.added_processors:
            assert name == "p5"  # only non-hosting processor left

    def test_forecast_includes_incoming_message_for_later_stages(self):
        """Stage 1 has no incoming message; stage 3 does."""
        request3 = make_request(subtask_index=3, d_tracks=5000.0, budget=10.0)
        outcome3 = PredictivePolicy().replicate(request3)
        # Same data, budget, but compute for stage 5 whose exec demand is
        # smaller at the same share; message delay still included.
        request5 = make_request(subtask_index=5, d_tracks=5000.0, budget=10.0)
        outcome5 = PredictivePolicy().replicate(request5)
        assert outcome3.forecast_latency > 0.0
        assert outcome5.forecast_latency > 0.0


class TestNonPredictivePolicy:
    def test_invalid_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            NonPredictivePolicy(utilization_threshold=0.0)

    def test_replicates_onto_all_idle_processors(self):
        request = make_request()
        outcome = NonPredictivePolicy(utilization_threshold=0.2).replicate(request)
        assert outcome.success
        # All 5 non-hosting processors are idle -> all added.
        assert len(outcome.added_processors) == 5
        assert request.assignment.replica_count(3) == 6

    def test_skips_highly_utilized_processors(self):
        request = make_request()
        request.system.processor("p6").run_for(10.0)
        request.system.processor("p5").run_for(10.0)
        request.system.engine.run_until(4.0)  # p5, p6 now ~100% utilized
        outcome = NonPredictivePolicy(utilization_threshold=0.2).replicate(request)
        assert set(outcome.added_processors).isdisjoint({"p5", "p6"})
        assert len(outcome.added_processors) == 3

    def test_no_candidates_still_succeeds(self):
        request = make_request()
        for p in request.system.processors:
            p.run_for(10.0)
        request.system.engine.run_until(4.0)
        outcome = NonPredictivePolicy(utilization_threshold=0.2).replicate(request)
        assert outcome.success
        assert outcome.added_processors == ()

    def test_ignores_estimator_entirely(self):
        """The heuristic must not consult forecasts."""
        request = make_request()
        outcome = NonPredictivePolicy().replicate(request)
        assert outcome.forecast_latency is None


class TestShutdown:
    def test_removes_last_added(self):
        request = make_request()
        request.assignment.add_replica(3, "p6")
        request.assignment.add_replica(3, "p1")
        assert shut_down_a_replica(request.assignment, 3) == "p1"
        assert request.assignment.processors_of(3) == ("p3", "p6")

    def test_never_removes_original(self):
        request = make_request()
        assert shut_down_a_replica(request.assignment, 3) is None
        assert request.assignment.replica_count(3) == 1


class TestRegistry:
    def test_builtin_policies_registered(self):
        assert {"predictive", "nonpredictive"} <= set(registered_policies())

    def test_get_policy_instantiates(self):
        policy = get_policy("predictive", slack_fraction=0.3)
        assert policy.slack_fraction == 0.3

    def test_unknown_policy_rejected(self):
        with pytest.raises(AllocationError):
            get_policy("alchemy")

    def test_conflicting_registration_rejected(self):
        with pytest.raises(AllocationError):
            register_policy("predictive", NonPredictivePolicy)

    def test_reregistering_same_factory_is_ok(self):
        register_policy("predictive", PredictivePolicy)
