"""Unit tests for the allocator zoo (market, fairshare, oracle)."""

from __future__ import annotations

import pytest

from repro.core.zoo import FairShareAllocator, MarketAllocator, OracleAllocator
from repro.errors import ConfigurationError
from repro.experiments.metrics import regret_by_policy

from tests.core.test_allocation_api import make_context

ZOO = (MarketAllocator, FairShareAllocator, OracleAllocator)


class TestValidation:
    @pytest.mark.parametrize("cls", ZOO)
    def test_bad_slack_fraction_rejected(self, cls):
        with pytest.raises(ConfigurationError):
            cls(slack_fraction=1.0)

    @pytest.mark.parametrize("cls", ZOO)
    def test_bad_max_rounds_rejected(self, cls):
        with pytest.raises(ConfigurationError):
            cls(max_rounds=0)

    def test_market_price_knobs_validated(self):
        with pytest.raises(ConfigurationError):
            MarketAllocator(price_floor=0.0)
        with pytest.raises(ConfigurationError):
            MarketAllocator(congestion_increment=-0.1)


class TestCommonBehavior:
    @pytest.mark.parametrize("cls", ZOO)
    def test_empty_candidate_list_is_a_noop(self, cls):
        context = make_context(candidates=())
        before = context.assignment.snapshot()
        plan = cls().allocate(context)
        assert plan.outcomes == ()
        assert not plan.changed
        assert context.assignment.snapshot() == before

    @pytest.mark.parametrize("cls", ZOO)
    def test_outcomes_keep_candidate_order(self, cls):
        context = make_context(candidates=(5, 3), budget=0.35)
        plan = cls().allocate(context)
        assert [o.subtask_index for o in plan.outcomes] == [5, 3]
        assert plan.allocator_name == cls().name

    @pytest.mark.parametrize("cls", ZOO)
    def test_replicates_under_pressure(self, cls):
        """A tight budget at high workload forces replica growth."""
        context = make_context(d_tracks=5000.0, budget=0.35)
        plan = cls().allocate(context)
        outcome = plan.outcome_for(3)
        assert outcome.success
        assert outcome.added_processors
        assert context.assignment.replica_count(3) > 1

    @pytest.mark.parametrize("cls", ZOO)
    def test_respects_exclusions(self, cls):
        context = make_context(
            d_tracks=20000.0, budget=0.05,
            excluded=frozenset({"p1", "p2", "p4", "p5"}),
        )
        plan = cls().allocate(context)
        for outcome in plan.outcomes:
            assert not set(outcome.added_processors) & {"p1", "p2", "p4", "p5"}

    @pytest.mark.parametrize("cls", ZOO)
    def test_failure_when_processors_exhausted(self, cls):
        """An unmeetable budget with a tiny cluster reports FAILURE."""
        context = make_context(d_tracks=20000.0, budget=0.05, n_processors=3)
        plan = cls().allocate(context)
        outcome = plan.outcome_for(3)
        assert not outcome.success
        # Paper semantics: replicas added along the way are kept.
        assert context.assignment.replica_count(3) >= 1

    @pytest.mark.parametrize("cls", ZOO)
    def test_deterministic_across_repeats(self, cls):
        plans = []
        for _ in range(2):
            context = make_context(candidates=(3, 5), d_tracks=5000.0)
            plans.append(cls().allocate(context).outcomes)
        assert plans[0] == plans[1]


class TestMarketAllocator:
    def test_trades_prefer_cheap_processors(self):
        """A pre-loaded processor is expensive and picked last."""
        context = make_context(d_tracks=5000.0, budget=0.35)
        context.system.processor("p6").run_for(10.0)
        context.system.engine.run_until(4.0)
        plan = MarketAllocator().allocate(context)
        outcome = plan.outcome_for(3)
        assert outcome.added_processors
        assert "p6" not in outcome.added_processors

    def test_price_inflation_spreads_load(self):
        """Two hungry candidates should not both pile onto one processor."""
        context = make_context(candidates=(3, 5), d_tracks=8000.0, budget=0.3)
        plan = MarketAllocator().allocate(context)
        added = [name for o in plan.outcomes for name in o.added_processors]
        # Replicas of one subtask are on distinct processors by invariant;
        # across subtasks the price mechanism must still spread the first
        # trades rather than reuse the single cheapest processor forever.
        assert len(added) == len(set(added)) or len(set(added)) > 1


class TestFairShareAllocator:
    def test_smaller_dominant_share_served_first(self):
        """With equal replica counts the heavier-wire candidate yields."""
        allocator = FairShareAllocator()
        context = make_context(candidates=(3, 5), d_tracks=5000.0)
        live = len(context.system.live_processors())
        # Subtask 3's incoming message carries more bytes than subtask 5's
        # in the benchmark task, so 5 has the smaller dominant share.
        share3 = allocator._dominant_share(context, 3, live)
        share5 = allocator._dominant_share(context, 5, live)
        assert share3 >= share5

    def test_first_stage_has_no_network_share(self):
        allocator = FairShareAllocator()
        context = make_context()
        assert allocator._wire_bytes(context, 1) == 0.0


class TestOracleAllocator:
    def test_uses_ground_truth_demand(self):
        """The oracle's forecast tracks the noise-free service model."""
        context = make_context(d_tracks=5000.0, budget=0.35)
        allocator = OracleAllocator()
        snapshot = context.utilization_snapshot()
        latency = allocator._true_latency(context, 3, snapshot)
        share = context.d_tracks / context.assignment.replica_count(3)
        demand = context.task.subtask(3).service.demand(share, None)
        assert latency >= demand  # stretch never shrinks the demand

    def test_oracle_regret_is_zero_for_itself(self):
        regrets = regret_by_policy({"oracle": 0.9, "predictive": 1.1})
        assert regrets["oracle"] == 0.0
        assert regrets["predictive"] == pytest.approx(0.2)

    def test_regret_requires_reference(self):
        with pytest.raises(ConfigurationError):
            regret_by_policy({"predictive": 1.1})
