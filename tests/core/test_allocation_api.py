"""Unit tests for the two-level allocation contract.

Covers the cycle-scoped :class:`AllocationContext` /
:class:`AllocationPlan` surface, the :class:`CandidatePolicyAdapter`
lift, the registry's error wrapping, and the deprecated
``repro.core.allocator`` module shim.
"""

from __future__ import annotations

import pytest

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.topology import build_system
from repro.core.allocation import (
    AllocationContext,
    AllocationOutcome,
    AllocationPlan,
    Allocator,
    CandidatePolicyAdapter,
    as_allocator,
    get_allocator,
    get_policy,
    register_policy,
    registered_policies,
)
from repro.core.deadlines import DeadlineAssignment
from repro.core.nonpredictive import NonPredictivePolicy
from repro.core.predictive import PredictivePolicy
from repro.errors import AllocationError
from repro.tasks.state import ReplicaAssignment

from tests.conftest import exact_estimator


def make_context(candidates=(3,), d_tracks=5000.0, budget=0.35, n_processors=6,
                 excluded=frozenset()):
    """A small cycle context over the benchmark task (subtask 3 flagged)."""
    system = build_system(n_processors=n_processors, seed=0)
    task = aaw_task(noise_sigma=0.0)
    placement = default_initial_placement(task, [p.name for p in system.processors])
    assignment = ReplicaAssignment(task, placement)
    deadlines = DeadlineAssignment(
        subtask_deadlines={s.index: budget for s in task.subtasks},
        message_deadlines={m.index: 0.0 for m in task.messages},
        strategy="test",
    )
    return AllocationContext(
        task=task,
        assignment=assignment,
        system=system,
        estimator=exact_estimator(task),
        deadlines=deadlines,
        d_tracks=d_tracks,
        total_periodic_tracks=d_tracks,
        candidates=tuple(candidates),
        excluded_processors=excluded,
    )


class TestAllocationContext:
    def test_request_for_carries_cycle_payload(self):
        context = make_context(excluded=frozenset({"p5"}))
        request = context.request_for(3)
        assert request.subtask_index == 3
        assert request.d_tracks == context.d_tracks
        assert request.excluded_processors == frozenset({"p5"})
        assert request.assignment is context.assignment

    def test_utilization_snapshot_covers_cluster(self):
        context = make_context()
        snapshot = context.utilization_snapshot()
        assert set(snapshot) == {p.name for p in context.system.processors}
        assert all(v == 0.0 for v in snapshot.values())

    def test_utilization_snapshot_applies_reading_guard(self):
        context = make_context()
        guarded = AllocationContext(
            task=context.task,
            assignment=context.assignment,
            system=context.system,
            estimator=context.estimator,
            deadlines=context.deadlines,
            d_tracks=context.d_tracks,
            total_periodic_tracks=context.total_periodic_tracks,
            candidates=context.candidates,
            reading_guard=lambda reading: 0.42,
        )
        assert set(guarded.utilization_snapshot().values()) == {0.42}

    def test_available_processors_excludes_hosting_and_guarded(self):
        context = make_context(excluded=frozenset({"p5"}))
        hosting = set(context.assignment.processors_of(3))
        names = [p.name for p in context.available_processors(3)]
        assert "p5" not in names
        assert not hosting & set(names)

    def test_stage_threshold_matches_figure5(self):
        context = make_context(budget=0.5)
        assert context.stage_threshold(3, 0.2) == pytest.approx(0.4)


class TestAllocationPlan:
    def test_changed_and_lookup(self):
        plan = AllocationPlan(
            outcomes=(
                AllocationOutcome(subtask_index=3, success=True,
                                  added_processors=("p4",)),
                AllocationOutcome(subtask_index=5, success=False),
            ),
            allocator_name="test",
        )
        assert plan.changed
        assert plan.outcome_for(5).success is False
        assert plan.outcome_for(7) is None

    def test_empty_plan_is_unchanged(self):
        assert not AllocationPlan().changed


class TestCandidatePolicyAdapter:
    def test_adapter_replays_candidates_in_order(self):
        seen = []

        class Recorder:
            name = "recorder"

            def replicate(self, request):
                seen.append(request.subtask_index)
                return AllocationOutcome(
                    subtask_index=request.subtask_index, success=True
                )

        context = make_context(candidates=(5, 3))
        plan = CandidatePolicyAdapter(Recorder()).allocate(context)
        assert seen == [5, 3]
        assert [o.subtask_index for o in plan.outcomes] == [5, 3]
        assert plan.allocator_name == "recorder"

    def test_adapter_matches_direct_policy_calls(self):
        """The lift is the historical loop: same outcomes, same placement."""
        direct = make_context()
        policy = PredictivePolicy(slack_fraction=0.2)
        direct_outcome = policy.replicate(direct.request_for(3))

        lifted = make_context()
        plan = as_allocator(PredictivePolicy(slack_fraction=0.2)).allocate(lifted)
        assert plan.outcomes == (direct_outcome,)
        assert lifted.assignment.processors_of(3) == direct.assignment.processors_of(3)

    def test_as_allocator_passes_level2_through(self):
        adapter = CandidatePolicyAdapter(NonPredictivePolicy())
        assert as_allocator(adapter) is adapter

    def test_as_allocator_rejects_foreign_objects(self):
        with pytest.raises(AllocationError, match="neither"):
            as_allocator(object())

    def test_adapter_satisfies_allocator_protocol(self):
        assert isinstance(CandidatePolicyAdapter(NonPredictivePolicy()), Allocator)


class TestRegistryErrors:
    def test_unknown_name_lists_registry(self):
        with pytest.raises(AllocationError, match="registered:"):
            get_policy("alchemy")

    def test_factory_typeerror_wrapped_with_kwargs(self):
        """Bad kwargs surface as AllocationError naming the accepted set."""
        with pytest.raises(AllocationError) as excinfo:
            get_policy("predictive", no_such_option=1)
        message = str(excinfo.value)
        assert "predictive" in message
        assert "no_such_option" in message
        assert "slack_fraction" in message

    def test_factory_internal_typeerror_also_wrapped(self):
        def exploding_factory(**kwargs):
            raise TypeError("internal boom")

        register_policy("exploding-test", exploding_factory)
        try:
            with pytest.raises(AllocationError, match="internal boom"):
                get_policy("exploding-test")
        finally:
            from repro.core import allocation

            allocation._REGISTRY.pop("exploding-test", None)

    def test_get_allocator_lifts_level1_policies(self):
        allocator = get_allocator("predictive", slack_fraction=0.3)
        assert isinstance(allocator, CandidatePolicyAdapter)
        assert allocator.name == "predictive"

    def test_get_allocator_returns_level2_directly(self):
        from repro.core.zoo import MarketAllocator

        allocator = get_allocator("market")
        assert isinstance(allocator, MarketAllocator)

    def test_zoo_registered(self):
        assert {"market", "fairshare", "oracle"} <= set(registered_policies())


class TestDeprecatedModuleShim:
    def test_old_spellings_importable_with_warning(self):
        import repro.core.allocator as old

        for name in (
            "AllocationOutcome",
            "AllocationPolicy",
            "AllocationRequest",
            "get_policy",
            "register_policy",
            "registered_policies",
        ):
            with pytest.warns(DeprecationWarning, match=name):
                served = getattr(old, name)
            from repro.core import allocation

            assert served is getattr(allocation, name)

    def test_unknown_attribute_still_raises(self):
        import repro.core.allocator as old

        with pytest.raises(AttributeError):
            old.no_such_name
