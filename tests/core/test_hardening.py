"""Unit tests for the hardened control loop's defenses."""

from __future__ import annotations

import math

import pytest

from repro.cluster.topology import build_system
from repro.core.hardening import (
    AllocationBackoff,
    ForecastCircuitBreaker,
    HardeningConfig,
    PlacementGuard,
    sanitize_reading,
)
from repro.errors import ConfigurationError


class TestConfigValidation:
    def test_defaults_are_valid(self):
        HardeningConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_record_age_s": 0.0},
            {"offender_failure_threshold": 0},
            {"offender_window_s": 0.0},
            {"guard_min_available": -0.1},
            {"guard_min_available": 1.5},
            {"backoff_initial_cycles": 0},
            {"backoff_max_cycles": 0},
            {"breaker_error_ratio": 0.0},
            {"breaker_trip_count": 0},
            {"breaker_trip_count": 99},
            {"breaker_cooldown_s": 0.0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            HardeningConfig(**kwargs)

    def test_none_record_age_means_keep_everything(self):
        assert HardeningConfig(max_record_age_s=None).max_record_age_s is None


class TestSanitizeReading:
    def test_nan_and_inf_fall_back(self):
        assert sanitize_reading(float("nan"), 0.3) == 0.3
        assert sanitize_reading(float("inf"), 0.3) == 0.3
        assert sanitize_reading(float("-inf"), 0.3) == 0.3

    def test_finite_readings_clamp_to_unit_interval(self):
        assert sanitize_reading(-1.0, 0.3) == 0.0
        assert sanitize_reading(5.0, 0.3) == 1.0
        assert sanitize_reading(0.42, 0.3) == 0.42


def crash(processor, times=1):
    for _ in range(times):
        processor.fail()
        processor.recover()


class TestPlacementGuard:
    def make(self, n=6, **kwargs):
        system = build_system(n_processors=n)
        config = HardeningConfig(**kwargs)
        return system, PlacementGuard(system, config)

    def test_no_faults_no_exclusions(self):
        _, guard = self.make()
        guard.observe(0.0)
        assert guard.excluded(0.0) == frozenset()

    def test_repeat_offender_excluded(self):
        system, guard = self.make(offender_failure_threshold=3)
        crash(system.processor("p1"), times=3)
        guard.observe(1.0)
        assert guard.excluded(1.0) == {"p1"}
        assert guard.exclusions["offender"] == 1

    def test_below_threshold_not_excluded(self):
        system, guard = self.make(offender_failure_threshold=3)
        crash(system.processor("p1"), times=2)
        guard.observe(1.0)
        assert guard.excluded(1.0) == frozenset()

    def test_offender_ages_out_of_window(self):
        system, guard = self.make(
            offender_failure_threshold=2, offender_window_s=10.0
        )
        crash(system.processor("p1"), times=2)
        guard.observe(1.0)
        assert guard.excluded(1.0) == {"p1"}
        assert guard.excluded(50.0) == frozenset()

    def test_implausible_reading_excluded(self):
        system, guard = self.make()
        system.processor("p3").reading_fault = lambda reading: -1.0
        assert guard.excluded(0.0) == {"p3"}
        assert guard.exclusions["reading"] == 1

    def test_nan_reading_excluded(self):
        system, guard = self.make()
        system.processor("p2").reading_fault = lambda reading: float("nan")
        assert guard.excluded(0.0) == {"p2"}

    def test_capacity_floor_limits_exclusions(self):
        # All six processors lie; the guard may exclude only half.
        system, guard = self.make(guard_min_available=0.5)
        for processor in system.processors:
            processor.reading_fault = lambda reading: -1.0
        excluded = guard.excluded(0.0)
        assert len(excluded) == 3

    def test_capacity_floor_prefers_bad_readings_over_offenders(self):
        system, guard = self.make(
            guard_min_available=0.5, offender_failure_threshold=2
        )
        # Three lying readings + three offenders: budget is 3 of 6.
        for name in ("p1", "p2", "p3"):
            system.processor(name).reading_fault = lambda reading: -1.0
        for name in ("p4", "p5", "p6"):
            crash(system.processor(name), times=2)
        guard.observe(1.0)
        assert guard.excluded(1.0) == {"p1", "p2", "p3"}

    def test_worst_offender_wins_the_budget(self):
        system, guard = self.make(
            n=2, guard_min_available=0.5, offender_failure_threshold=2
        )
        crash(system.processor("p1"), times=2)
        crash(system.processor("p2"), times=4)
        guard.observe(1.0)
        # Budget is 1 of 2 live processors; p2 crashed more.
        assert guard.excluded(1.0) == {"p2"}

    def test_failed_processors_do_not_consume_budget(self):
        system, guard = self.make(guard_min_available=0.5)
        for name in ("p1", "p2", "p3"):
            system.processor(name).fail()
        for processor in system.processors:
            processor.reading_fault = lambda reading: -1.0
        excluded = guard.excluded(0.0)
        # 3 live processors -> budget 1; failed ones are excluded free.
        assert {"p1", "p2", "p3"} <= excluded
        assert len(excluded - {"p1", "p2", "p3"}) == 1

    def test_zero_floor_allows_full_exclusion(self):
        system, guard = self.make(guard_min_available=0.0)
        for processor in system.processors:
            processor.reading_fault = lambda reading: float("inf")
        assert len(guard.excluded(0.0)) == 6


class TestAllocationBackoff:
    def test_first_attempt_always_allowed(self):
        backoff = AllocationBackoff(HardeningConfig())
        assert backoff.should_attempt(1, cycle=0)
        assert backoff.suppressed == 0

    def test_failure_delays_exponentially(self):
        backoff = AllocationBackoff(
            HardeningConfig(backoff_initial_cycles=1, backoff_max_cycles=8)
        )
        backoff.record_failure(1, cycle=0)  # next allowed at 1
        assert not backoff.should_attempt(1, cycle=0)
        assert backoff.should_attempt(1, cycle=1)
        backoff.record_failure(1, cycle=1)  # delay 2 -> allowed at 3
        assert not backoff.should_attempt(1, cycle=2)
        assert backoff.should_attempt(1, cycle=3)
        backoff.record_failure(1, cycle=3)  # delay 4 -> allowed at 7
        assert not backoff.should_attempt(1, cycle=6)
        assert backoff.should_attempt(1, cycle=7)
        assert backoff.suppressed == 3

    def test_delay_caps_at_max_cycles(self):
        backoff = AllocationBackoff(
            HardeningConfig(backoff_initial_cycles=1, backoff_max_cycles=4)
        )
        for cycle in range(0, 40, 10):
            backoff.record_failure(2, cycle=cycle)
        assert not backoff.should_attempt(2, cycle=33)
        assert backoff.should_attempt(2, cycle=34)

    def test_success_resets_the_ladder(self):
        backoff = AllocationBackoff(HardeningConfig())
        backoff.record_failure(1, cycle=0)
        backoff.record_failure(1, cycle=2)
        backoff.record_success(1)
        assert backoff.should_attempt(1, cycle=3)
        backoff.record_failure(1, cycle=3)  # back to the initial delay
        assert backoff.should_attempt(1, cycle=4)

    def test_subtasks_are_independent(self):
        backoff = AllocationBackoff(HardeningConfig())
        backoff.record_failure(1, cycle=0)
        assert backoff.should_attempt(2, cycle=0)


class TestForecastCircuitBreaker:
    def make(self, **kwargs):
        defaults = dict(
            breaker_error_ratio=0.5,
            breaker_trip_count=3,
            breaker_window=8,
            breaker_cooldown_s=10.0,
        )
        defaults.update(kwargs)
        return ForecastCircuitBreaker(HardeningConfig(**defaults))

    def feed_bad(self, breaker, now, times):
        for _ in range(times):
            breaker.observe(now, forecast_s=1.0, realized_s=10.0)

    def test_accurate_forecasts_keep_it_closed(self):
        breaker = self.make()
        for _ in range(50):
            breaker.observe(0.0, forecast_s=1.0, realized_s=1.1)
        assert breaker.state == ForecastCircuitBreaker.CLOSED
        assert breaker.allow_predictive(0.0)
        assert breaker.trips == 0

    def test_trips_after_threshold_mispredictions(self):
        breaker = self.make()
        self.feed_bad(breaker, 0.0, 2)
        assert breaker.state == ForecastCircuitBreaker.CLOSED
        self.feed_bad(breaker, 0.0, 1)
        assert breaker.state == ForecastCircuitBreaker.OPEN
        assert not breaker.allow_predictive(1.0)
        assert breaker.trips == 1
        assert breaker.mispredictions == 3

    def test_open_ignores_observations(self):
        breaker = self.make()
        self.feed_bad(breaker, 0.0, 3)
        before = breaker.observations
        self.feed_bad(breaker, 1.0, 5)
        assert breaker.observations == before

    def test_half_open_after_cooldown_then_recloses(self):
        breaker = self.make(breaker_cooldown_s=10.0)
        self.feed_bad(breaker, 0.0, 3)
        assert not breaker.allow_predictive(5.0)
        assert breaker.allow_predictive(10.0)
        assert breaker.state == ForecastCircuitBreaker.HALF_OPEN
        breaker.observe(10.0, forecast_s=1.0, realized_s=1.0)
        assert breaker.state == ForecastCircuitBreaker.CLOSED

    def test_half_open_retrip_on_one_misprediction(self):
        breaker = self.make()
        self.feed_bad(breaker, 0.0, 3)
        assert breaker.allow_predictive(10.0)  # half-open
        self.feed_bad(breaker, 10.0, 1)
        assert breaker.state == ForecastCircuitBreaker.OPEN
        assert breaker.trips == 2
        assert not breaker.allow_predictive(15.0)

    def test_history_cleared_on_reclose(self):
        breaker = self.make()
        self.feed_bad(breaker, 0.0, 2)
        # Not tripped; two bad samples in the window.  A trip + recovery
        # must clear them so one later bad sample cannot re-trip.
        self.feed_bad(breaker, 0.0, 1)  # trips
        breaker.allow_predictive(10.0)  # half-open
        breaker.observe(10.0, forecast_s=1.0, realized_s=1.0)  # closes
        self.feed_bad(breaker, 11.0, 2)
        assert breaker.state == ForecastCircuitBreaker.CLOSED

    def test_tiny_forecast_does_not_divide_by_zero(self):
        breaker = self.make()
        breaker.observe(0.0, forecast_s=0.0, realized_s=1.0)
        assert math.isfinite(float(breaker.mispredictions))
        assert breaker.mispredictions == 1
