"""Unit tests for the extension policies and shutdown strategies."""

from __future__ import annotations

import pytest

from repro.core.allocation import get_policy, registered_policies
from repro.core.extra_policies import (
    HybridPolicy,
    NoAdaptationPolicy,
    StaticMaxPolicy,
)
from repro.core.shutdown import ForecastAwareShutdown, LifoShutdown

from tests.core.test_policies import make_request


class TestNoAdaptationPolicy:
    def test_never_touches_placement(self):
        request = make_request()
        before = request.assignment.snapshot()
        outcome = NoAdaptationPolicy().replicate(request)
        assert not outcome.success
        assert outcome.added_processors == ()
        assert request.assignment.snapshot() == before


class TestStaticMaxPolicy:
    def test_grabs_every_processor(self):
        request = make_request()
        outcome = StaticMaxPolicy().replicate(request)
        assert outcome.success
        assert request.assignment.replica_count(3) == 6

    def test_idempotent_on_full_machine(self):
        request = make_request()
        StaticMaxPolicy().replicate(request)
        outcome = StaticMaxPolicy().replicate(request)
        assert outcome.added_processors == ()
        assert request.assignment.replica_count(3) == 6

    def test_ignores_utilization(self):
        request = make_request()
        for p in request.system.processors:
            p.run_for(10.0)
        request.system.engine.run_until(4.0)
        outcome = StaticMaxPolicy().replicate(request)
        assert len(outcome.added_processors) == 5


class TestHybridPolicy:
    def test_behaves_like_predictive_when_feasible(self):
        request = make_request(d_tracks=5000.0, budget=0.35)
        outcome = HybridPolicy().replicate(request)
        assert outcome.success
        assert request.assignment.replica_count(3) == 2

    def test_falls_back_when_budget_unreachable(self):
        # Impossible budget on a small machine: predictive FAILs after
        # grabbing everything; the fallback finds nothing left but the
        # outcome is reported via the heuristic path.
        request = make_request(d_tracks=20000.0, budget=0.01, n_processors=3)
        outcome = HybridPolicy().replicate(request)
        assert request.assignment.replica_count(3) == 3
        assert outcome.success  # Figure 7 semantics: always succeeds


class TestPolicyRegistry:
    def test_extension_policies_registered(self):
        assert {"noadapt", "staticmax", "hybrid"} <= set(registered_policies())

    def test_instantiable_by_name(self):
        assert get_policy("staticmax").name == "staticmax"


class TestLifoShutdown:
    def test_matches_figure6(self):
        request = make_request()
        request.assignment.add_replica(3, "p6")
        assert LifoShutdown().shutdown(request) == "p6"
        assert LifoShutdown().shutdown(request) is None


class TestForecastAwareShutdown:
    def test_refuses_unsafe_shutdown(self):
        """With 2 replicas barely fitting, removal is forecast to break
        timeliness, so the strategy declines."""
        request = make_request(d_tracks=5000.0, budget=0.35)
        request.assignment.add_replica(3, "p6")  # k=2 fits, k=1 would not
        strategy = ForecastAwareShutdown(slack_fraction=0.2)
        assert strategy.shutdown(request) is None
        assert request.assignment.replica_count(3) == 2

    def test_allows_safe_shutdown(self):
        """At a tiny workload even one replica fits: removal proceeds."""
        request = make_request(d_tracks=300.0, budget=0.35)
        request.assignment.add_replica(3, "p6")
        strategy = ForecastAwareShutdown(slack_fraction=0.2)
        assert strategy.shutdown(request) == "p6"

    def test_never_removes_original(self):
        request = make_request(d_tracks=100.0, budget=0.9)
        assert ForecastAwareShutdown().shutdown(request) is None
