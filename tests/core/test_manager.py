"""Integration-grade unit tests for the adaptive resource manager."""

from __future__ import annotations

import pytest

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.topology import build_system
from repro.core.manager import AdaptiveResourceManager, RMConfig
from repro.core.monitoring import MonitorAction
from repro.core.nonpredictive import NonPredictivePolicy
from repro.core.predictive import PredictivePolicy
from repro.errors import ConfigurationError
from repro.runtime.executor import PeriodicTaskExecutor
from repro.tasks.state import ReplicaAssignment

from tests.conftest import exact_estimator


def make_stack(policy, workload, n_periods=20, seed=0, rm_config=None):
    system = build_system(n_processors=6, seed=seed)
    task = aaw_task(noise_sigma=0.0)
    placement = default_initial_placement(task, [p.name for p in system.processors])
    assignment = ReplicaAssignment(task, placement)
    executor = PeriodicTaskExecutor(system, task, assignment, workload=workload)
    manager = AdaptiveResourceManager(
        system,
        executor,
        exact_estimator(task),
        policy=policy,
        config=rm_config or RMConfig(initial_d_tracks=500.0),
    )
    manager.start(n_periods)
    executor.start(n_periods)
    return system, task, assignment, executor, manager


class TestRMConfig:
    def test_bad_initial_tracks_rejected(self):
        with pytest.raises(ConfigurationError):
            RMConfig(initial_d_tracks=0.0)

    def test_bad_initial_utilization_rejected(self):
        with pytest.raises(ConfigurationError):
            RMConfig(initial_utilization=1.5)

    def test_bad_deadline_reference_rejected(self):
        with pytest.raises(ConfigurationError):
            RMConfig(deadline_reference="magic")


class TestInitialDeadlines:
    def test_assigned_from_initial_conditions(self):
        _, task, _, _, manager = make_stack(PredictivePolicy(), lambda c: 500.0)
        assert set(manager.deadlines.subtask_deadlines) == {1, 2, 3, 4, 5}
        # Sequential EQF budgets sum to the deadline.
        assert manager.deadlines.total_budget() == pytest.approx(task.deadline)


class TestControlLoop:
    def test_steady_light_load_never_acts(self):
        system, _, assignment, executor, manager = make_stack(
            PredictivePolicy(), lambda c: 400.0
        )
        system.engine.run_until(21.0)
        assert manager.actions_taken() == 0
        assert assignment.total_replicas() == 2
        assert all(not r.missed for r in executor.records)

    def test_heavy_load_triggers_replication(self):
        system, _, assignment, executor, manager = make_stack(
            PredictivePolicy(), lambda c: 8000.0
        )
        system.engine.run_until(21.0)
        assert manager.actions_taken() > 0
        assert assignment.replica_count(3) > 1
        # Once adapted, deadlines are met again.
        tail = executor.records[-5:]
        assert all(not r.missed for r in tail)

    def test_nonpredictive_overallocates_relative_to_predictive(self):
        def run(policy):
            system, _, assignment, _, manager = make_stack(policy, lambda c: 6000.0)
            system.engine.run_until(21.0)
            samples = [count for _, count in manager.replica_samples()]
            return sum(samples) / len(samples)

        predictive_avg = run(PredictivePolicy())
        nonpredictive_avg = run(NonPredictivePolicy())
        assert nonpredictive_avg > predictive_avg

    def test_load_drop_triggers_shutdown(self):
        # High load for 10 periods, then near-idle.
        def workload(c):
            return 8000.0 if c < 10 else 300.0

        system, _, assignment, _, manager = make_stack(
            PredictivePolicy(), workload, n_periods=40
        )
        system.engine.run_until(41.0)
        peak = max(count for _, count in manager.replica_samples())
        final = assignment.total_replicas()
        assert peak > 2
        assert final < peak  # replicas were shut down after the drop

    def test_shutdown_is_one_replica_per_step(self):
        def workload(c):
            return 8000.0 if c < 10 else 300.0

        system, _, _, _, manager = make_stack(
            PredictivePolicy(), workload, n_periods=40
        )
        system.engine.run_until(41.0)
        counts = [count for _, count in manager.replica_samples()]
        for before, after in zip(counts, counts[1:]):
            # Each step removes at most one replica per replicable subtask.
            assert before - after <= 2

    def test_deadlines_reassigned_on_action(self):
        system, _, _, _, manager = make_stack(PredictivePolicy(), lambda c: 8000.0)
        initial = manager.deadlines
        system.engine.run_until(21.0)
        assert manager.actions_taken() > 0
        assert manager.deadlines is not initial

    def test_history_records_every_step(self):
        system, _, _, _, manager = make_stack(
            PredictivePolicy(), lambda c: 500.0, n_periods=15
        )
        system.engine.run_until(16.0)
        assert len(manager.history) == 15
        assert all(event.total_replicas >= 2 for event in manager.history)

    def test_rm_step_runs_before_release(self):
        """The RM event at t=k fires before the release at t=k."""
        system, _, assignment, executor, manager = make_stack(
            PredictivePolicy(), lambda c: 8000.0
        )
        system.engine.run_until(21.0)
        # Find the first step that acted; the release of the same period
        # index must already see the enlarged replica set.
        for event in manager.history:
            if event.acted:
                period_index = int(round(event.time))
                record = executor.records[period_index]
                added_to = event.outcomes[0].subtask_index
                assert record.stage(added_to) is None or (
                    record.stage(added_to).replica_count
                    >= len(event.placement[added_to])
                )
                break

    def test_step_callable_directly(self):
        system, _, _, _, manager = make_stack(PredictivePolicy(), lambda c: 500.0)
        event = manager.step()
        assert event.report.time == system.engine.now
        assert not event.acted


class TestDeadlineReferenceAblation:
    def test_current_reference_creeps_to_max_allocation(self):
        """The documented failure mode of self-referential budgets."""
        stable = make_stack(
            PredictivePolicy(),
            lambda c: 6000.0,
            rm_config=RMConfig(initial_d_tracks=500.0, deadline_reference="initial"),
        )
        creeping = make_stack(
            PredictivePolicy(),
            lambda c: 6000.0,
            rm_config=RMConfig(initial_d_tracks=500.0, deadline_reference="current"),
        )
        for system, *_ in (stable, creeping):
            system.engine.run_until(21.0)
        stable_replicas = stable[2].total_replicas()
        creeping_replicas = creeping[2].total_replicas()
        assert creeping_replicas >= stable_replicas
