"""Unit tests for :mod:`repro.recovery.checkpoint`."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import BaselineConfig, ExperimentConfig
from repro.experiments.runner import build_world, finalize_world
from repro.recovery import (
    Checkpointer,
    SimSnapshot,
    restore_snapshot,
    resume_experiment,
)

BASELINE = BaselineConfig(n_periods=8, seed=3)


def _config(**overrides) -> ExperimentConfig:
    return ExperimentConfig(
        policy="predictive",
        pattern="triangular",
        max_workload_units=12.0,
        baseline=BASELINE,
        **overrides,
    )


class TestValidation:
    def test_non_positive_interval_rejected(self, fitted_estimator):
        world = build_world(_config(), estimator=fitted_estimator)
        with pytest.raises(ConfigurationError):
            Checkpointer(world, 0.0)
        with pytest.raises(ConfigurationError):
            Checkpointer(world, -1.0)

    def test_keep_must_be_positive(self, fitted_estimator):
        world = build_world(_config(), estimator=fitted_estimator)
        with pytest.raises(ConfigurationError):
            Checkpointer(world, 1.0, keep=0)

    def test_config_checkpoint_validation(self):
        with pytest.raises(ConfigurationError):
            _config(checkpoint=0.0)
        with pytest.raises(ConfigurationError):
            _config(checkpoint=-2.5)


class TestCadence:
    def test_config_arms_checkpointer(self, fitted_estimator):
        world = build_world(_config(checkpoint=2.0), estimator=fitted_estimator)
        assert isinstance(world.checkpointer, Checkpointer)
        world.system.engine.run_until(world.end_time)
        # 8 periods at 1 s + drain: captures every 2 s until the end.
        assert world.checkpointer.taken >= 4
        assert world.checkpointer.latest is not None

    def test_keep_bounds_the_buffer(self, fitted_estimator):
        world = build_world(_config(), estimator=fitted_estimator)
        ckpt = Checkpointer(world, 1.0, keep=3).arm()
        world.checkpointer = ckpt
        world.system.engine.run_until(world.end_time)
        assert ckpt.taken > 3
        assert len(ckpt.snapshots) == 3
        labels = [s.meta["label"] for s in ckpt.snapshots]
        assert labels == [f"ckpt-{ckpt.taken - 3 + i}" for i in range(3)]

    def test_directory_persists_every_capture(self, fitted_estimator, tmp_path):
        world = build_world(_config(), estimator=fitted_estimator)
        ckpt = Checkpointer(world, 3.0, directory=tmp_path).arm()
        world.checkpointer = ckpt
        world.system.engine.run_until(world.end_time)
        files = sorted(tmp_path.glob("ckpt_*.pkl"))
        assert len(files) == ckpt.taken
        loaded = SimSnapshot.load(files[0])
        assert loaded.time == pytest.approx(3.0)

    def test_snapshots_never_nest(self, fitted_estimator):
        # A capture taken by a checkpointed world must not embed the
        # earlier captures (snapshot-in-snapshot would grow quadratically).
        world = build_world(_config(checkpoint=2.0), estimator=fitted_estimator)
        world.system.engine.run_until(6.5)
        snapshot = world.checkpointer.latest
        assert snapshot is not None
        resumed_world = restore_snapshot(snapshot)
        assert resumed_world.checkpointer.snapshots == []
        # Cadence configuration survives, so the resumed run keeps
        # checkpointing from the captured calendar.
        assert resumed_world.checkpointer.interval_s == 2.0

    def test_resumed_run_keeps_checkpointing(self, fitted_estimator):
        world = build_world(_config(checkpoint=2.0), estimator=fitted_estimator)
        world.system.engine.run_until(4.5)
        snapshot = world.checkpointer.latest
        result = resume_experiment(snapshot)
        assert result.metrics.periods_released == BASELINE.n_periods
        resumed_world = restore_snapshot(snapshot)
        resumed_world.system.engine.run_until(resumed_world.end_time)
        assert resumed_world.checkpointer.taken > 0
        result2 = finalize_world(resumed_world)
        assert result2.metrics.as_dict() == result.metrics.as_dict()
