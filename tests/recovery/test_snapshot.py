"""Unit tests for :mod:`repro.recovery.snapshot`."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import BaselineConfig, ExperimentConfig
from repro.experiments.runner import build_world, finalize_world, run_experiment
from repro.recovery import (
    SNAPSHOT_SCHEMA_VERSION,
    SimSnapshot,
    restore_snapshot,
    resume_experiment,
    take_snapshot,
)

BASELINE = BaselineConfig(n_periods=8, seed=3)
CONFIG = ExperimentConfig(
    policy="predictive",
    pattern="triangular",
    max_workload_units=12.0,
    baseline=BASELINE,
)


@pytest.fixture(scope="module")
def reference(request):
    estimator = request.getfixturevalue("fitted_estimator")
    return run_experiment(CONFIG, estimator=estimator)


class TestTakeRestore:
    def test_midway_snapshot_resumes_bit_identically(
        self, fitted_estimator, reference
    ):
        world = build_world(CONFIG, estimator=fitted_estimator)
        world.system.engine.run_until(3.0)
        snapshot = take_snapshot(world, label="midway")
        resumed = resume_experiment(snapshot)
        assert resumed.decision_digest == reference.decision_digest
        assert resumed.metrics.as_dict() == reference.metrics.as_dict()
        assert resumed.final_placement == reference.final_placement

    def test_snapshot_fields(self, fitted_estimator):
        world = build_world(CONFIG, estimator=fitted_estimator)
        world.system.engine.run_until(2.0)
        snapshot = take_snapshot(world, label="x")
        assert snapshot.schema_version == SNAPSHOT_SCHEMA_VERSION
        assert snapshot.time == pytest.approx(2.0)
        assert snapshot.meta["label"] == "x"
        assert set(snapshot.counters) == {"job_ids", "message_ids"}

    def test_restore_is_repeatable(self, fitted_estimator, reference):
        # One snapshot, two restores: the payload is immutable, so the
        # second resume must not see state mutated by the first.
        world = build_world(CONFIG, estimator=fitted_estimator)
        world.system.engine.run_until(4.0)
        snapshot = take_snapshot(world)
        first = resume_experiment(snapshot)
        second = resume_experiment(snapshot)
        assert first.decision_digest == second.decision_digest
        assert first.decision_digest == reference.decision_digest
        assert first.metrics.as_dict() == second.metrics.as_dict()

    def test_original_world_is_untouched_by_snapshot(
        self, fitted_estimator, reference
    ):
        # Taking a snapshot must not perturb the running world: carry
        # it to completion afterwards and compare against the plain run.
        world = build_world(CONFIG, estimator=fitted_estimator)
        world.system.engine.run_until(3.0)
        take_snapshot(world)
        world.system.engine.run_until(world.end_time)
        result = finalize_world(world)
        assert result.decision_digest == reference.decision_digest
        assert result.metrics.as_dict() == reference.metrics.as_dict()


class TestSaveLoad:
    def test_round_trip(self, fitted_estimator, tmp_path, reference):
        world = build_world(CONFIG, estimator=fitted_estimator)
        world.system.engine.run_until(3.0)
        snapshot = take_snapshot(world)
        path = snapshot.save(tmp_path / "ckpt.pkl")
        loaded = SimSnapshot.load(path)
        assert loaded.time == snapshot.time
        assert loaded.payload == snapshot.payload
        assert loaded.counters == snapshot.counters
        resumed = resume_experiment(loaded)
        assert resumed.decision_digest == reference.decision_digest

    def test_load_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "junk.pkl"
        path.write_bytes(pickle.dumps({"not": "a snapshot"}))
        with pytest.raises(ConfigurationError):
            SimSnapshot.load(path)

    def test_restore_rejects_unknown_schema(self, fitted_estimator):
        world = build_world(CONFIG, estimator=fitted_estimator)
        snapshot = take_snapshot(world)
        stale = SimSnapshot(
            schema_version=SNAPSHOT_SCHEMA_VERSION + 1,
            time=snapshot.time,
            payload=snapshot.payload,
            counters=snapshot.counters,
            meta=snapshot.meta,
        )
        with pytest.raises(ConfigurationError):
            restore_snapshot(stale)
