"""Controller failover: standby takeover under the ``rm_crash*`` scenarios.

The headline acceptance gate lives here: under ``rm_crash_under_load``
(controller killed while nodes churn) the failover-armed run must beat
the no-failover baseline *strictly* on availability and on total
deadline-miss window — without a controller there is nobody to recover
failed replicas, so coasting on the frozen allocation loses.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import BaselineConfig, ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.recovery import FailoverCoordinator

BASELINE = BaselineConfig(n_periods=24, seed=5)


def _run(scenario, failover, estimator, policy="predictive"):
    config = ExperimentConfig(
        policy=policy,
        pattern="triangular",
        max_workload_units=25.0,
        baseline=BASELINE,
        chaos_scenario=scenario,
        hardened=scenario is not None,
        failover=failover,
    )
    return run_experiment(config, estimator=estimator)


class TestFailoverGate:
    @pytest.fixture(scope="class")
    def pair(self, request):
        estimator = request.getfixturevalue("fitted_estimator")
        without = _run("rm_crash_under_load", False, estimator)
        with_fo = _run("rm_crash_under_load", True, estimator)
        return without, with_fo

    def test_failover_strictly_beats_no_failover_on_availability(self, pair):
        without, with_fo = pair
        assert with_fo.scorecard.availability > without.scorecard.availability

    def test_failover_strictly_shrinks_miss_window(self, pair):
        without, with_fo = pair
        assert with_fo.scorecard.miss_window_s < without.scorecard.miss_window_s

    def test_takeover_latency_is_reported_and_bounded(self, pair):
        _, with_fo = pair
        latency = with_fo.scorecard.takeover_latency_s
        assert latency is not None
        # Detection needs one missed lease (1.6 periods) plus at most
        # one watch interval (period/4) of slack.
        period = BASELINE.period
        assert 0.0 < latency <= 1.6 * period + 2 * (period / 4)

    def test_missed_monitoring_cycles(self, pair):
        without, with_fo = pair
        assert without.scorecard.takeover_latency_s is None
        assert with_fo.scorecard.missed_rm_cycles < without.scorecard.missed_rm_cycles
        # Takeover within ~1.7 s at a 1 s monitoring period: at most
        # two boundaries can fall inside the outage.
        assert with_fo.scorecard.missed_rm_cycles <= 2

    def test_crash_is_counted_once(self, pair):
        without, with_fo = pair
        assert without.scorecard.rm_crashes == 1
        assert with_fo.scorecard.rm_crashes == 1


class TestFailoverInertWithoutCrash:
    def test_armed_failover_changes_nothing_fault_free(self, fitted_estimator):
        plain = _run(None, False, fitted_estimator)
        armed = _run(None, True, fitted_estimator)
        assert armed.decision_digest == plain.decision_digest
        assert armed.metrics.as_dict() == plain.metrics.as_dict()
        assert armed.final_placement == plain.final_placement

    def test_scorecard_fields_stay_empty_fault_free(self, fitted_estimator):
        armed = _run(None, True, fitted_estimator)
        assert armed.scorecard is None or armed.scorecard.rm_crashes == 0

    def test_armed_failover_changes_nothing_under_other_faults(
        self, fitted_estimator
    ):
        # A scenario without rm_crash faults never triggers the
        # watchdog: the armed run stays bit-identical.
        plain = _run("crashes", False, fitted_estimator)
        armed = _run("crashes", True, fitted_estimator)
        assert armed.decision_digest == plain.decision_digest
        assert armed.metrics.as_dict() == plain.metrics.as_dict()


class TestCoordinatorValidation:
    def test_requires_positive_lease(self, fitted_estimator):
        from repro.errors import ConfigurationError
        from repro.experiments.runner import build_world

        world = build_world(_config_plain(), estimator=fitted_estimator)
        with pytest.raises(ConfigurationError):
            FailoverCoordinator(world.manager, lease_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            FailoverCoordinator(world.manager, watch_interval_s=-1.0)


def _config_plain() -> ExperimentConfig:
    return ExperimentConfig(
        policy="predictive",
        pattern="triangular",
        max_workload_units=12.0,
        baseline=BaselineConfig(n_periods=6, seed=1),
    )
