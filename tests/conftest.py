"""Shared fixtures.

The expensive artifact is the profiled+fitted :class:`TimingEstimator`;
it is built once per test session (with a reduced grid for speed) and
shared by every test that needs realistic regression models.  Tests that
need *exact* models use hand-built ones instead.
"""

from __future__ import annotations

import pytest

from repro.bench.app import aaw_task, default_initial_placement
from repro.bench.profiler import build_estimator
from repro.cluster.topology import System, build_system
from repro.experiments.config import BaselineConfig
from repro.regression.buffer_model import BufferDelayModel
from repro.regression.comm import CommunicationDelayModel
from repro.regression.estimator import TimingEstimator
from repro.regression.latency_model import ExecutionLatencyModel
from repro.regression.transmission import TransmissionModel
from repro.tasks.state import ReplicaAssignment


@pytest.fixture()
def system() -> System:
    """A fresh 6-node Table 1 system."""
    return build_system(n_processors=6, seed=42)


@pytest.fixture()
def task():
    """The benchmark task without execution noise (deterministic)."""
    return aaw_task(noise_sigma=0.0)


@pytest.fixture()
def noisy_task():
    """The benchmark task with its default noise."""
    return aaw_task()


@pytest.fixture()
def assignment(task, system):
    """Default round-robin initial placement for the benchmark task."""
    placement = default_initial_placement(task, [p.name for p in system.processors])
    return ReplicaAssignment(task, placement)


@pytest.fixture(scope="session")
def fitted_estimator() -> TimingEstimator:
    """A realistically fitted estimator (reduced grid, noise-free app).

    Session-scoped: profiling even the reduced grid costs ~1 s.
    """
    quiet_task = aaw_task(noise_sigma=0.0)
    return build_estimator(
        quiet_task,
        u_grid=(0.0, 0.2, 0.4, 0.6),
        d_grid_tracks=(200.0, 500.0, 1000.0, 2000.0, 4000.0),
        repetitions=1,
        seed=7,
    )


def exact_estimator(task) -> TimingEstimator:
    """An estimator whose eq. 3 surfaces equal the ground-truth demands.

    ``eex(d, u) = demand(d)`` exactly (no utilization stretch), and a
    zero-buffer, overhead-free communication model.  Useful when a test
    needs analytically predictable forecasts.
    """
    models = {}
    for subtask in task.subtasks:
        service = subtask.service
        models[subtask.index] = ExecutionLatencyModel(
            subtask_name=subtask.name,
            a=(0.0, 0.0, service.q2_ms),
            b=(0.0, 0.0, service.q1_ms),
        )
    comm = CommunicationDelayModel(
        buffer=BufferDelayModel(k_ms_per_track=0.0),
        transmission=TransmissionModel(bandwidth_bps=100e6, overhead_bytes=0.0),
    )
    return TimingEstimator(task=task, latency_models=models, comm_model=comm)


@pytest.fixture()
def analytic_estimator(task) -> TimingEstimator:
    """Fixture wrapper around :func:`exact_estimator`."""
    return exact_estimator(task)


@pytest.fixture(scope="session")
def baseline() -> BaselineConfig:
    """The Table 1 baseline configuration."""
    return BaselineConfig()
