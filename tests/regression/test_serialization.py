"""Unit tests for model persistence."""

from __future__ import annotations

import json

import pytest

from repro.errors import RegressionError
from repro.regression.buffer_model import BufferDelayModel
from repro.regression.comm import CommunicationDelayModel
from repro.regression.latency_model import ExecutionLatencyModel
from repro.regression.serialization import (
    comm_model_from_dict,
    comm_model_to_dict,
    latency_model_from_dict,
    latency_model_to_dict,
    load_models,
    save_models,
)
from repro.regression.transmission import TransmissionModel


def latency_model():
    return ExecutionLatencyModel(
        "Filter", a=(0.1, 0.2, 0.3), b=(1.0, 2.0, 3.0), r_squared=0.99, n_samples=50
    )


def comm_model():
    return CommunicationDelayModel(
        buffer=BufferDelayModel(k_ms_per_track=0.002, r_squared=0.95, n_samples=6),
        transmission=TransmissionModel(bandwidth_bps=100e6, overhead_bytes=1500.0),
    )


class TestRoundTrips:
    def test_latency_model_round_trip(self):
        model = latency_model()
        restored = latency_model_from_dict(latency_model_to_dict(model))
        assert restored == model

    def test_comm_model_round_trip(self):
        model = comm_model()
        restored = comm_model_from_dict(comm_model_to_dict(model))
        assert restored.buffer.k_ms_per_track == model.buffer.k_ms_per_track
        assert restored.transmission == model.transmission

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "models.json"
        models = {3: latency_model(), 5: latency_model()}
        save_models(path, models, comm_model())
        loaded_models, loaded_comm = load_models(path)
        assert set(loaded_models) == {3, 5}
        assert loaded_models[3] == models[3]
        assert loaded_comm.buffer.k_ms_per_track == pytest.approx(0.002)

    def test_saved_file_is_valid_json(self, tmp_path):
        path = tmp_path / "models.json"
        save_models(path, {1: latency_model()}, comm_model())
        payload = json.loads(path.read_text())
        assert payload["version"] == 1


class TestErrors:
    def test_wrong_kind_rejected(self):
        data = latency_model_to_dict(latency_model())
        data["kind"] = "other"
        with pytest.raises(RegressionError):
            latency_model_from_dict(data)

    def test_bad_coefficient_count_rejected(self):
        data = latency_model_to_dict(latency_model())
        data["a"] = [1.0, 2.0]
        with pytest.raises(RegressionError):
            latency_model_from_dict(data)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(RegressionError):
            load_models(tmp_path / "nope.json")

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(RegressionError):
            load_models(path)
