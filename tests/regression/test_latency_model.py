"""Unit tests for the eq. 3 execution-latency surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InsufficientDataError, RegressionError
from repro.regression.latency_model import ExecutionLatencyModel


def synth_samples(a, b, u_levels, d_values, noise=0.0, seed=0):
    """Generate samples from an exact eq. 3 surface."""
    rng = np.random.default_rng(seed)
    d_list, u_list, y_list = [], [], []
    for u in u_levels:
        a_u = a[0] * u * u + a[1] * u + a[2]
        b_u = b[0] * u * u + b[1] * u + b[2]
        for d in d_values:
            y = a_u * d * d + b_u * d
            if noise:
                y *= 1.0 + rng.normal(0, noise)
            d_list.append(d)
            u_list.append(u)
            y_list.append(y)
    return np.array(d_list), np.array(u_list), np.array(y_list)


TRUE_A = (0.5, -0.1, 0.3)
TRUE_B = (2.0, 0.5, 1.0)
U_LEVELS = (0.0, 0.2, 0.4, 0.6, 0.8)
D_VALUES = (1.0, 2.0, 5.0, 10.0, 20.0)


class TestPrediction:
    def test_known_surface_values(self):
        model = ExecutionLatencyModel("s", a=(0, 0, 1.0), b=(0, 0, 2.0))
        # eex = d^2 + 2 d
        assert model.predict_ms(3.0, 0.0) == pytest.approx(15.0)

    def test_utilization_dependence(self):
        model = ExecutionLatencyModel("s", a=(1.0, 0.0, 1.0), b=(0, 0, 0))
        assert model.predict_ms(2.0, 0.0) == pytest.approx(4.0)
        assert model.predict_ms(2.0, 1.0) == pytest.approx(8.0)

    def test_negative_prediction_clamped(self):
        model = ExecutionLatencyModel("s", a=(0, 0, -1.0), b=(0, 0, 0))
        assert model.predict_ms(5.0, 0.0) == 0.0

    def test_zero_data_zero_latency(self):
        model = ExecutionLatencyModel("s", a=TRUE_A, b=TRUE_B)
        assert model.predict_ms(0.0, 0.5) == 0.0

    def test_unit_conversion_predict_seconds(self):
        model = ExecutionLatencyModel("s", a=(0, 0, 0), b=(0, 0, 100.0))
        # 100 ms per hundred items: 500 tracks = 5 units -> 500 ms.
        assert model.predict_seconds(500.0, 0.0) == pytest.approx(0.5)

    def test_invalid_inputs_rejected(self):
        model = ExecutionLatencyModel("s", a=TRUE_A, b=TRUE_B)
        with pytest.raises(RegressionError):
            model.predict_ms(-1.0, 0.5)
        with pytest.raises(RegressionError):
            model.predict_ms(1.0, 1.5)

    def test_grid_prediction_matches_scalar(self):
        model = ExecutionLatencyModel("s", a=TRUE_A, b=TRUE_B)
        d = np.array([1.0, 5.0, 10.0])
        u = np.array([0.1, 0.5, 0.8])
        grid = model.predict_ms_grid(d, u)
        for i in range(3):
            assert grid[i] == pytest.approx(model.predict_ms(d[i], u[i]))

    def test_coefficients_dict_layout(self):
        model = ExecutionLatencyModel("s", a=(1, 2, 3), b=(4, 5, 6))
        assert model.coefficients() == {
            "a1": 1, "a2": 2, "a3": 3, "b1": 4, "b2": 5, "b3": 6,
        }


class TestTwoStageFit:
    def test_exact_recovery(self):
        d, u, y = synth_samples(TRUE_A, TRUE_B, U_LEVELS, D_VALUES)
        model = ExecutionLatencyModel.fit_two_stage("s", d, u, y)
        assert model.a == pytest.approx(TRUE_A, abs=1e-8)
        assert model.b == pytest.approx(TRUE_B, abs=1e-8)
        assert model.r_squared == pytest.approx(1.0)

    def test_noisy_recovery(self):
        d, u, y = synth_samples(TRUE_A, TRUE_B, U_LEVELS, D_VALUES, noise=0.02)
        model = ExecutionLatencyModel.fit_two_stage("s", d, u, y)
        assert model.a[2] == pytest.approx(TRUE_A[2], rel=0.3)
        assert model.r_squared > 0.98

    def test_stage1_r2_recorded_per_level(self):
        d, u, y = synth_samples(TRUE_A, TRUE_B, U_LEVELS, D_VALUES)
        model = ExecutionLatencyModel.fit_two_stage("s", d, u, y)
        assert set(model.stage1_r_squared) == set(U_LEVELS)

    def test_too_few_levels_rejected(self):
        d, u, y = synth_samples(TRUE_A, TRUE_B, (0.0, 0.4), D_VALUES)
        with pytest.raises(InsufficientDataError):
            ExecutionLatencyModel.fit_two_stage("s", d, u, y)

    def test_too_few_data_sizes_rejected(self):
        d, u, y = synth_samples(TRUE_A, TRUE_B, U_LEVELS, (5.0,))
        with pytest.raises(InsufficientDataError):
            ExecutionLatencyModel.fit_two_stage("s", d, u, y)

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(RegressionError):
            ExecutionLatencyModel.fit_two_stage(
                "s", np.ones(3), np.ones(4), np.ones(3)
            )


class TestDirectFit:
    def test_exact_recovery(self):
        d, u, y = synth_samples(TRUE_A, TRUE_B, U_LEVELS, D_VALUES)
        model = ExecutionLatencyModel.fit_direct("s", d, u, y)
        assert model.a == pytest.approx(TRUE_A, abs=1e-8)
        assert model.b == pytest.approx(TRUE_B, abs=1e-8)

    def test_agrees_with_two_stage_on_noiseless_data(self):
        d, u, y = synth_samples(TRUE_A, TRUE_B, U_LEVELS, D_VALUES)
        two_stage = ExecutionLatencyModel.fit_two_stage("s", d, u, y)
        direct = ExecutionLatencyModel.fit_direct("s", d, u, y)
        for d_test in (1.0, 10.0, 30.0):
            for u_test in (0.0, 0.5, 0.8):
                assert two_stage.predict_ms(d_test, u_test) == pytest.approx(
                    direct.predict_ms(d_test, u_test), rel=1e-6, abs=1e-9
                )
