"""Tests for regression fit diagnostics."""

from __future__ import annotations

import pytest

from repro.bench.app import aaw_task
from repro.bench.profiler import profile_subtask
from repro.errors import RegressionError
from repro.regression.diagnostics import diagnose_latency_fit
from repro.bench.profiler import LatencyProfileResult


@pytest.fixture(scope="module")
def noiseless_diag():
    task = aaw_task(noise_sigma=0.0)
    result = profile_subtask(
        task.subtask(3),
        u_grid=(0.0, 0.3, 0.6),
        d_grid_tracks=(200.0, 800.0, 2000.0, 4000.0),
        repetitions=1,
        seed=4,
    )
    return diagnose_latency_fit(result)


@pytest.fixture(scope="module")
def noisy_diag():
    task = aaw_task(noise_sigma=0.15)
    result = profile_subtask(
        task.subtask(3),
        u_grid=(0.0, 0.3, 0.6),
        d_grid_tracks=(200.0, 800.0, 2000.0, 4000.0),
        repetitions=3,
        seed=4,
    )
    return diagnose_latency_fit(result)


class TestDiagnostics:
    def test_noiseless_fit_is_healthy(self, noiseless_diag):
        assert noiseless_diag.is_healthy
        assert noiseless_diag.r_squared > 0.99

    def test_per_level_r2_covers_grid(self, noiseless_diag):
        assert set(noiseless_diag.per_level_r_squared) == {0.0, 0.3, 0.6}

    def test_noise_degrades_but_stays_usable(self, noisy_diag):
        assert noisy_diag.rmse_ms > 0.0
        assert noisy_diag.r_squared > 0.85

    def test_heteroscedasticity_detected_on_noisy_quadratic(self, noisy_diag):
        """Multiplicative noise on a quadratic demand: residuals grow
        with data size, so the large-d half has bigger RMS."""
        assert noisy_diag.heteroscedasticity_ratio > 1.0

    def test_render(self, noiseless_diag):
        text = noiseless_diag.render()
        assert "Filter" in text
        assert "overall R^2" in text
        assert "healthy" in text

    def test_empty_profile_rejected(self):
        from repro.regression.latency_model import ExecutionLatencyModel

        empty = LatencyProfileResult(
            subtask_name="x",
            samples=[],
            model=ExecutionLatencyModel("x", a=(0, 0, 1), b=(0, 0, 1)),
        )
        with pytest.raises(RegressionError):
            diagnose_latency_fit(empty)
