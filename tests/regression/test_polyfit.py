"""Unit tests for the OLS core."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InsufficientDataError, RegressionError
from repro.regression.polyfit import ols_fit


class TestExactRecovery:
    def test_recovers_line(self):
        x = np.linspace(0, 10, 20)
        design = np.column_stack([x, np.ones_like(x)])
        y = 3.0 * x + 2.0
        result = ols_fit(design, y)
        assert result.coefficients == pytest.approx([3.0, 2.0])
        assert result.r_squared == pytest.approx(1.0)
        assert result.rmse == pytest.approx(0.0, abs=1e-9)

    def test_recovers_quadratic_through_origin(self):
        x = np.linspace(1, 5, 10)
        design = np.column_stack([x * x, x])
        y = 0.5 * x * x + 2.0 * x
        result = ols_fit(design, y)
        assert result.coefficients == pytest.approx([0.5, 2.0])

    def test_noisy_fit_close(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 10, 200)
        design = np.column_stack([x, np.ones_like(x)])
        y = 3.0 * x + 2.0 + rng.normal(0, 0.1, x.size)
        result = ols_fit(design, y)
        assert result.coefficients == pytest.approx([3.0, 2.0], abs=0.1)
        assert 0.99 < result.r_squared <= 1.0
        assert result.rmse == pytest.approx(0.1, abs=0.05)

    def test_std_errors_shrink_with_samples(self):
        rng = np.random.default_rng(1)

        def fit(n):
            x = np.linspace(0, 10, n)
            design = np.column_stack([x, np.ones_like(x)])
            y = x + rng.normal(0, 0.5, n)
            return ols_fit(design, y)

        assert fit(400).std_errors[0] < fit(20).std_errors[0]


class TestValidation:
    def test_underdetermined_rejected(self):
        with pytest.raises(InsufficientDataError):
            ols_fit(np.ones((1, 2)), np.ones(1))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(RegressionError):
            ols_fit(np.ones((3, 1)), np.ones(4))

    def test_non_2d_design_rejected(self):
        with pytest.raises(RegressionError):
            ols_fit(np.ones(3), np.ones(3))

    def test_empty_design_rejected(self):
        with pytest.raises(RegressionError):
            ols_fit(np.ones((3, 0)), np.ones(3))

    def test_nan_rejected(self):
        design = np.ones((3, 1))
        y = np.array([1.0, np.nan, 2.0])
        with pytest.raises(RegressionError):
            ols_fit(design, y)

    def test_rank_deficient_rejected(self):
        x = np.ones(5)
        design = np.column_stack([x, 2 * x])  # collinear
        with pytest.raises(RegressionError):
            ols_fit(design, x)


class TestPredict:
    def test_prediction_matches_training(self):
        x = np.linspace(1, 5, 10)
        design = np.column_stack([x, np.ones_like(x)])
        result = ols_fit(design, 2 * x + 1)
        assert result.predict(design) == pytest.approx(2 * x + 1)

    def test_incompatible_design_rejected(self):
        x = np.linspace(1, 5, 10)
        design = np.column_stack([x, np.ones_like(x)])
        result = ols_fit(design, 2 * x + 1)
        with pytest.raises(RegressionError):
            result.predict(np.ones((3, 3)))

    def test_constant_response_r2_is_one(self):
        design = np.ones((5, 1))
        result = ols_fit(design, np.full(5, 7.0))
        assert result.r_squared == pytest.approx(1.0)
