"""Unit tests for design-matrix builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RegressionError
from repro.regression.design import (
    linear_through_origin_features,
    poly2_features,
    quadratic_features,
    surface_features,
)


class TestPoly2:
    def test_columns_are_d2_d(self):
        out = poly2_features(np.array([1.0, 2.0, 3.0]))
        assert out.shape == (3, 2)
        assert out[:, 0] == pytest.approx([1.0, 4.0, 9.0])
        assert out[:, 1] == pytest.approx([1.0, 2.0, 3.0])

    def test_scalar_promoted(self):
        assert poly2_features(2.0).shape == (1, 2)

    def test_nan_rejected(self):
        with pytest.raises(RegressionError):
            poly2_features(np.array([1.0, np.nan]))


class TestQuadratic:
    def test_columns_are_u2_u_1(self):
        out = quadratic_features(np.array([0.5]))
        assert out[0] == pytest.approx([0.25, 0.5, 1.0])


class TestSurface:
    def test_column_order_matches_paper_layout(self):
        d = np.array([2.0])
        u = np.array([0.5])
        out = surface_features(d, u)
        # [u^2 d^2, u d^2, d^2, u^2 d, u d, d]
        assert out[0] == pytest.approx([1.0, 2.0, 4.0, 0.5, 1.0, 2.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(RegressionError):
            surface_features(np.array([1.0, 2.0]), np.array([0.5]))

    def test_multiple_rows(self):
        out = surface_features(np.array([1.0, 2.0]), np.array([0.0, 1.0]))
        assert out.shape == (2, 6)
        # u=0 row: only d^2 and d columns non-zero.
        assert out[0] == pytest.approx([0, 0, 1, 0, 0, 1])


class TestLinearThroughOrigin:
    def test_single_column(self):
        out = linear_through_origin_features(np.array([1.0, 2.0]))
        assert out.shape == (2, 1)
        assert out[:, 0] == pytest.approx([1.0, 2.0])

    def test_2d_rejected(self):
        with pytest.raises(RegressionError):
            linear_through_origin_features(np.ones((2, 2)))
