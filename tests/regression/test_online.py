"""Unit tests for the online-corrected estimator."""

from __future__ import annotations

import pytest

from repro.bench.app import aaw_task
from repro.errors import RegressionError
from repro.regression.online import OnlineCorrectedEstimator

from tests.conftest import exact_estimator


@pytest.fixture()
def online():
    task = aaw_task(noise_sigma=0.0)
    return OnlineCorrectedEstimator(base=exact_estimator(task), alpha=0.5)


class TestConstruction:
    def test_corrections_start_at_unity(self, online):
        for subtask in online.task.subtasks:
            assert online.correction(subtask.index) == 1.0

    def test_invalid_alpha_rejected(self, online):
        with pytest.raises(RegressionError):
            OnlineCorrectedEstimator(base=online.base, alpha=1.5)

    def test_invalid_clamp_rejected(self, online):
        with pytest.raises(RegressionError):
            OnlineCorrectedEstimator(base=online.base, clamp=0.5)

    def test_unknown_subtask_rejected(self, online):
        with pytest.raises(RegressionError):
            online.correction(42)


class TestInterfacePassThrough:
    def test_uncorrected_equals_base(self, online):
        assert online.eex_seconds(3, 1000.0, 0.2) == pytest.approx(
            online.base.eex_seconds(3, 1000.0, 0.2)
        )
        assert online.ecd_seconds(1, 500.0, 1000.0) == pytest.approx(
            online.base.ecd_seconds(1, 500.0, 1000.0)
        )

    def test_chain_estimates_match_base_initially(self, online):
        ours = online.chain_estimate_seconds(1000.0, 0.1)
        base = online.base.chain_estimate_seconds(1000.0, 0.1)
        assert ours[0] == pytest.approx(base[0])
        assert ours[1] == pytest.approx(base[1])

    def test_task_and_models_exposed(self, online):
        assert online.task is online.base.task
        assert online.latency_models is online.base.latency_models
        assert online.comm_model is online.base.comm_model


class TestLearning:
    def test_observation_moves_correction_toward_ratio(self, online):
        predicted = online.base.eex_seconds(3, 1000.0, 0.2)
        online.observe_stage(3, 1000.0, 0.2, observed_exec_s=2.0 * predicted)
        # alpha = 0.5: correction = 0.5*1 + 0.5*2 = 1.5.
        assert online.correction(3) == pytest.approx(1.5)
        assert online.eex_seconds(3, 1000.0, 0.2) == pytest.approx(
            1.5 * predicted
        )
        assert online.observations == 1

    def test_repeated_observations_converge(self, online):
        predicted = online.base.eex_seconds(3, 1000.0, 0.2)
        for _ in range(20):
            online.observe_stage(3, 1000.0, 0.2, observed_exec_s=1.4 * predicted)
        assert online.correction(3) == pytest.approx(1.4, rel=1e-3)

    def test_corrections_are_per_subtask(self, online):
        predicted3 = online.base.eex_seconds(3, 1000.0, 0.2)
        online.observe_stage(3, 1000.0, 0.2, observed_exec_s=2.0 * predicted3)
        assert online.correction(5) == 1.0

    def test_clamping(self, online):
        predicted = online.base.eex_seconds(3, 1000.0, 0.2)
        for _ in range(50):
            online.observe_stage(3, 1000.0, 0.2, observed_exec_s=100 * predicted)
        assert online.correction(3) == online.clamp

    def test_degenerate_observations_ignored(self, online):
        online.observe_stage(3, 0.0, 0.2, observed_exec_s=1.0)
        online.observe_stage(3, 1000.0, 0.2, observed_exec_s=0.0)
        assert online.correction(3) == 1.0
        assert online.observations == 0

    def test_corrected_deadline_chain(self, online):
        predicted = online.base.eex_seconds(3, 1000.0, 0.2)
        online.observe_stage(3, 1000.0, 0.2, observed_exec_s=2.0 * predicted)
        exec_est, _ = online.chain_estimate_seconds(1000.0, 0.2)
        base_exec, _ = online.base.chain_estimate_seconds(1000.0, 0.2)
        assert exec_est[2] == pytest.approx(1.5 * base_exec[2])
        assert exec_est[0] == pytest.approx(base_exec[0])


class TestManagerIntegration:
    def test_manager_feeds_observations(self):
        from repro.bench.app import default_initial_placement
        from repro.cluster.topology import build_system
        from repro.core.manager import AdaptiveResourceManager, RMConfig
        from repro.core.predictive import PredictivePolicy
        from repro.runtime.executor import PeriodicTaskExecutor
        from repro.tasks.state import ReplicaAssignment

        system = build_system(n_processors=6, seed=3)
        task = aaw_task(noise_sigma=0.0)
        assignment = ReplicaAssignment(
            task,
            default_initial_placement(task, [p.name for p in system.processors]),
        )
        online = OnlineCorrectedEstimator(base=exact_estimator(task))
        executor = PeriodicTaskExecutor(
            system, task, assignment, workload=lambda c: 2000.0
        )
        manager = AdaptiveResourceManager(
            system, executor, online, policy=PredictivePolicy(),
            config=RMConfig(initial_d_tracks=2000.0),
        )
        manager.start(8)
        executor.start(8)
        system.engine.run_until(10.0)
        assert online.observations > 0
