"""Unit tests for the eq. 4/5/6 communication models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RegressionError
from repro.regression.buffer_model import BufferDelayModel
from repro.regression.comm import CommunicationDelayModel
from repro.regression.transmission import TransmissionModel


class TestBufferModel:
    def test_prediction_is_linear(self):
        model = BufferDelayModel(k_ms_per_track=0.002)
        assert model.predict_ms(1000.0) == pytest.approx(2.0)
        assert model.predict_seconds(1000.0) == pytest.approx(0.002)

    def test_zero_load_zero_delay(self):
        assert BufferDelayModel(k_ms_per_track=0.5).predict_ms(0.0) == 0.0

    def test_negative_load_rejected(self):
        with pytest.raises(RegressionError):
            BufferDelayModel(k_ms_per_track=0.5).predict_ms(-1.0)

    def test_negative_slope_clamped_in_prediction(self):
        model = BufferDelayModel(k_ms_per_track=-0.1)
        assert model.predict_ms(100.0) == 0.0

    def test_fit_recovers_slope(self):
        loads = np.array([100.0, 500.0, 1000.0, 5000.0])
        delays = 0.7e-3 * loads * 1e3  # 0.7 ms per track... in ms: 0.7*loads
        model = BufferDelayModel.fit(loads, 0.7 * loads)
        assert model.k_ms_per_track == pytest.approx(0.7)
        assert model.r_squared == pytest.approx(1.0)

    def test_fit_with_noise(self):
        rng = np.random.default_rng(0)
        loads = np.linspace(100, 10000, 50)
        delays = 0.3 * loads + rng.normal(0, 5.0, 50)
        model = BufferDelayModel.fit(loads, delays)
        assert model.k_ms_per_track == pytest.approx(0.3, rel=0.05)

    def test_fit_misaligned_rejected(self):
        with pytest.raises(RegressionError):
            BufferDelayModel.fit(np.ones(3), np.ones(4))


class TestTransmissionModel:
    def test_known_delay(self):
        model = TransmissionModel(bandwidth_bps=100e6, overhead_bytes=0.0)
        # 1.25 MB = 10 Mbit -> 100 ms at 100 Mbit/s.
        assert model.predict_seconds(1_250_000) == pytest.approx(0.1)
        assert model.predict_ms(1_250_000) == pytest.approx(100.0)

    def test_overhead_included(self):
        model = TransmissionModel(bandwidth_bps=8e6, overhead_bytes=1000.0)
        assert model.predict_seconds(0.0) == pytest.approx(0.001)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(RegressionError):
            TransmissionModel(bandwidth_bps=0.0)
        with pytest.raises(RegressionError):
            TransmissionModel(overhead_bytes=-1.0)


class TestCommunicationDelayModel:
    def test_eq4_is_sum_of_parts(self):
        model = CommunicationDelayModel(
            buffer=BufferDelayModel(k_ms_per_track=0.001),
            transmission=TransmissionModel(bandwidth_bps=100e6, overhead_bytes=0.0),
        )
        payload = 1_250_000
        total_tracks = 2000.0
        expected = 0.001 * 2000.0 / 1e3 + 0.1
        assert model.predict_seconds(payload, total_tracks) == pytest.approx(expected)
        assert model.predict_ms(payload, total_tracks) == pytest.approx(expected * 1e3)

    def test_delay_monotone_in_both_drivers(self):
        model = CommunicationDelayModel(
            buffer=BufferDelayModel(k_ms_per_track=0.001),
            transmission=TransmissionModel(),
        )
        base = model.predict_seconds(1000.0, 1000.0)
        assert model.predict_seconds(2000.0, 1000.0) > base
        assert model.predict_seconds(1000.0, 2000.0) > base
