"""Unit tests for the TimingEstimator facade."""

from __future__ import annotations

import pytest

from repro.bench.app import aaw_task
from repro.errors import RegressionError
from repro.regression.buffer_model import BufferDelayModel
from repro.regression.comm import CommunicationDelayModel
from repro.regression.estimator import TimingEstimator
from repro.regression.latency_model import ExecutionLatencyModel
from repro.regression.transmission import TransmissionModel

from tests.conftest import exact_estimator


@pytest.fixture()
def task():
    return aaw_task(noise_sigma=0.0)


@pytest.fixture()
def estimator(task):
    return exact_estimator(task)


class TestConstruction:
    def test_missing_model_rejected(self, task):
        comm = CommunicationDelayModel(
            buffer=BufferDelayModel(k_ms_per_track=0.0),
            transmission=TransmissionModel(),
        )
        models = {
            1: ExecutionLatencyModel("x", a=(0, 0, 0), b=(0, 0, 1)),
        }
        with pytest.raises(RegressionError):
            TimingEstimator(task=task, latency_models=models, comm_model=comm)


class TestEex:
    def test_matches_ground_truth_demand(self, task, estimator):
        # The analytic estimator encodes eex == mean demand at any u.
        for subtask in task.subtasks:
            expected = subtask.service.mean_demand_seconds(2000.0)
            got = estimator.eex_seconds(subtask.index, 2000.0, 0.5)
            # The analytic surface has no floor, so compare above floor.
            assert got == pytest.approx(expected, rel=1e-6)

    def test_unknown_subtask_rejected(self, estimator):
        with pytest.raises(RegressionError):
            estimator.eex_seconds(99, 100.0, 0.1)

    def test_eex_monotone_in_data(self, estimator):
        small = estimator.eex_seconds(3, 500.0, 0.2)
        large = estimator.eex_seconds(3, 5000.0, 0.2)
        assert large > small


class TestEcd:
    def test_transmission_only_model(self, task, estimator):
        # 1000 tracks on m1 (80 B/item + 16 B/item context at total=1000):
        # (80*1000 + 16*1000) * 8 bits / 100e6 bps.
        expected = (80 * 1000 + 16 * 1000) * 8 / 100e6
        assert estimator.ecd_seconds(1, 1000.0, 1000.0) == pytest.approx(expected)

    def test_share_below_total(self, estimator):
        # Share of 500 out of 1000 total: context still covers the total.
        expected = (80 * 500 + 16 * 1000) * 8 / 100e6
        assert estimator.ecd_seconds(1, 500.0, 1000.0) == pytest.approx(expected)

    def test_unknown_message_rejected(self, estimator):
        with pytest.raises(Exception):
            estimator.ecd_seconds(9, 100.0, 100.0)


class TestChainEstimates:
    def test_chain_lengths(self, task, estimator):
        exec_times, comm_times = estimator.chain_estimate_seconds(1000.0, 0.1)
        assert len(exec_times) == task.n_subtasks
        assert len(comm_times) == task.n_subtasks - 1

    def test_end_to_end_is_sum(self, estimator):
        exec_times, comm_times = estimator.chain_estimate_seconds(1000.0, 0.1)
        total = estimator.end_to_end_estimate_seconds(1000.0, 0.1)
        assert total == pytest.approx(sum(exec_times) + sum(comm_times))

    def test_end_to_end_grows_with_workload(self, estimator):
        assert estimator.end_to_end_estimate_seconds(
            5000.0, 0.1
        ) > estimator.end_to_end_estimate_seconds(500.0, 0.1)


class TestFittedEstimatorSanity:
    """The session-fitted estimator must track ground truth reasonably."""

    def test_fitted_eex_tracks_demand_at_zero_util(self, fitted_estimator):
        task = fitted_estimator.task
        for index in (3, 5):
            truth = task.subtask(index).service.mean_demand_seconds(2000.0)
            fitted = fitted_estimator.eex_seconds(index, 2000.0, 0.0)
            assert fitted == pytest.approx(truth, rel=0.35)

    def test_fitted_eex_increases_with_utilization(self, fitted_estimator):
        low = fitted_estimator.eex_seconds(3, 2000.0, 0.0)
        high = fitted_estimator.eex_seconds(3, 2000.0, 0.6)
        assert high > low

    def test_fitted_surfaces_have_good_r2(self, fitted_estimator):
        for model in fitted_estimator.latency_models.values():
            assert model.r_squared > 0.9
