"""Smoke tests for the example scripts.

Every example must at least compile and expose a ``main`` entry point;
the quickstart (the one a new user runs first) is executed end to end.
The heavier examples are exercised by the manual/e2e flow and the bench
suite covers their underlying APIs.
"""

from __future__ import annotations

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 8


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_defines_main(path):
    source = path.read_text()
    assert "def main(" in source
    assert '__name__ == "__main__"' in source
    # Every example carries a module docstring with a Run: line.
    assert source.lstrip().startswith(('"""', '#!'))
    assert "Run:" in source


def test_quickstart_runs_end_to_end():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert "combined metric C" in completed.stdout
    assert "Final replica placement" in completed.stdout
