"""Unit tests for background load generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.background import BackgroundLoad
from repro.cluster.processor import Processor
from repro.errors import ClusterError
from repro.sim.engine import Engine


def make(target, **kwargs):
    engine = Engine()
    proc = Processor(engine, "p1", utilization_window=20.0)
    return engine, proc, BackgroundLoad(proc, target, **kwargs)


class TestValidation:
    def test_target_out_of_range_rejected(self):
        engine = Engine()
        proc = Processor(engine, "p1")
        with pytest.raises(ClusterError):
            BackgroundLoad(proc, -0.1)
        with pytest.raises(ClusterError):
            BackgroundLoad(proc, 0.99)

    def test_bad_interval_rejected(self):
        engine = Engine()
        proc = Processor(engine, "p1")
        with pytest.raises(ClusterError):
            BackgroundLoad(proc, 0.5, interval_s=0.0)

    def test_jitter_requires_rng(self):
        engine = Engine()
        proc = Processor(engine, "p1")
        with pytest.raises(ClusterError):
            BackgroundLoad(proc, 0.5, jitter=0.2)

    def test_bad_jitter_rejected(self):
        engine = Engine()
        proc = Processor(engine, "p1")
        with pytest.raises(ClusterError):
            BackgroundLoad(proc, 0.5, jitter=1.0, rng=np.random.default_rng(0))


class TestBehaviour:
    @pytest.mark.parametrize("target", [0.2, 0.5, 0.8])
    def test_achieves_target_utilization(self, target):
        engine, proc, load = make(target, interval_s=0.020)
        load.start()
        engine.run_until(10.0)
        assert proc.utilization(window=10.0) == pytest.approx(target, abs=0.02)

    def test_zero_target_produces_nothing(self):
        engine, proc, load = make(0.0)
        load.start()
        assert not load.running
        engine.run_until(2.0)
        assert load.jobs_submitted == 0
        assert proc.utilization(window=2.0) == 0.0

    def test_start_is_idempotent(self):
        engine, proc, load = make(0.3)
        load.start()
        load.start()
        engine.run_until(1.0)
        # One generator, not two: utilization stays near target.
        assert proc.utilization(window=1.0) == pytest.approx(0.3, abs=0.05)

    def test_stop_halts_generation(self):
        engine, proc, load = make(0.5)
        load.start()
        engine.run_until(2.0)
        load.stop()
        submitted = load.jobs_submitted
        engine.run_until(5.0)
        assert load.jobs_submitted == submitted
        assert not load.running

    def test_jittered_load_still_hits_target_on_average(self):
        engine, proc, load = make(
            0.4, interval_s=0.010, jitter=0.3, rng=np.random.default_rng(3)
        )
        load.start()
        engine.run_until(15.0)
        assert proc.utilization(window=15.0) == pytest.approx(0.4, abs=0.03)

    def test_jobs_are_tagged_background(self):
        engine, proc, load = make(0.3)
        load.start()
        engine.run_until(0.2)
        jobs = proc.active_jobs()
        # Any in-flight jobs carry the background tag.
        assert all(job.kind == "background" for job in jobs)
