"""Unit tests for the clock-sync substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.clock import ClockSyncService, NodeClock
from repro.errors import ClusterError
from repro.sim.engine import Engine


class TestNodeClock:
    def test_perfect_clock(self):
        clock = NodeClock("n1")
        assert clock.local_time(10.0) == 10.0
        assert clock.error(10.0) == 0.0

    def test_offset(self):
        clock = NodeClock("n1", offset=0.002)
        assert clock.local_time(10.0) == pytest.approx(10.002)

    def test_drift_accumulates(self):
        clock = NodeClock("n1", drift=1e-4)
        assert clock.error(100.0) == pytest.approx(0.01)

    def test_discipline_resets_drift_accumulation(self):
        clock = NodeClock("n1", drift=1e-4)
        clock.discipline(100.0, residual_offset=1e-4)
        assert clock.error(100.0) == pytest.approx(1e-4)
        # Drift resumes from the sync point.
        assert clock.error(110.0) == pytest.approx(1e-4 + 10 * 1e-4, rel=0.01)


class TestClockSyncService:
    def make(self, n=3, drift=1e-4, interval=10.0, bound=1e-3):
        engine = Engine()
        clocks = [NodeClock(f"n{i}", offset=0.05, drift=drift) for i in range(n)]
        service = ClockSyncService(
            engine,
            clocks,
            sync_interval=interval,
            sync_bound=bound,
            rng=np.random.default_rng(1),
        )
        return engine, clocks, service

    def test_sync_now_bounds_offsets(self):
        engine, clocks, service = self.make()
        assert service.max_error() == pytest.approx(0.05)
        service.sync_now()
        assert service.max_error() <= 1e-3

    def test_error_bounded_while_running(self):
        engine, clocks, service = self.make(drift=1e-5, interval=10.0, bound=1e-3)
        service.start()
        engine.run_until(100.0)
        # Worst case: residual bound + drift over one interval.
        assert service.max_error() <= 1e-3 + 10.0 * 1e-5 + 1e-12
        assert service.rounds == 11  # t=0,10,...,100

    def test_stop_lets_drift_grow(self):
        engine, clocks, service = self.make(drift=1e-4, interval=5.0)
        service.start()
        engine.run_until(10.0)
        service.stop()
        engine.run_until(110.0)
        assert service.max_error() >= 5e-3  # ~100 s of 1e-4 drift

    def test_invalid_parameters_rejected(self):
        engine = Engine()
        rng = np.random.default_rng(1)
        with pytest.raises(ClusterError):
            ClockSyncService(engine, [], sync_interval=0.0, rng=rng)
        with pytest.raises(ClusterError):
            ClockSyncService(engine, [], sync_bound=-1.0, rng=rng)

    def test_missing_rng_rejected(self):
        # The rng is load-bearing for determinism: a hidden fixed-seed
        # fallback would correlate clock residuals across every run.
        engine = Engine()
        with pytest.raises(ClusterError):
            ClockSyncService(engine, [])

    def test_empty_clock_list_max_error_zero(self):
        engine = Engine()
        service = ClockSyncService(engine, [], rng=np.random.default_rng(1))
        assert service.max_error() == 0.0
