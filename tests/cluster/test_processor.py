"""Unit tests for the processor model (PS and quantum-RR disciplines)."""

from __future__ import annotations

import pytest

from repro.cluster.processor import Discipline, Job, Processor
from repro.errors import ClusterError
from repro.sim.engine import Engine


def ps_processor(engine=None):
    engine = engine or Engine()
    return engine, Processor(engine, "p1")


def rr_processor(engine=None, quantum=0.001):
    engine = engine or Engine()
    return engine, Processor(
        engine, "p1", discipline=Discipline.ROUND_ROBIN, quantum=quantum
    )


class TestJob:
    def test_non_positive_demand_rejected(self):
        with pytest.raises(ClusterError):
            Job(0.0)
        with pytest.raises(ClusterError):
            Job(-1.0)

    def test_latency_before_completion_raises(self):
        with pytest.raises(ClusterError):
            Job(1.0).latency

    def test_ids_are_unique(self):
        assert Job(1.0).job_id != Job(1.0).job_id


class TestProcessorSharing:
    def test_single_job_runs_at_full_rate(self):
        engine, proc = ps_processor()
        job = proc.run_for(2.0)
        engine.run()
        assert job.completion_time == pytest.approx(2.0)
        assert job.latency == pytest.approx(2.0)

    def test_two_equal_jobs_share_equally(self):
        engine, proc = ps_processor()
        a = proc.run_for(1.0)
        b = proc.run_for(1.0)
        engine.run()
        # Both progress at rate 1/2; both finish at t=2.
        assert a.completion_time == pytest.approx(2.0)
        assert b.completion_time == pytest.approx(2.0)

    def test_short_job_finishes_first(self):
        engine, proc = ps_processor()
        long = proc.run_for(3.0)
        short = proc.run_for(1.0)
        engine.run()
        # Shared until short done: at t=2 short has 1.0 served. Then the
        # long job runs alone: 3 - 1 = 2 remaining -> finishes at t=4.
        assert short.completion_time == pytest.approx(2.0)
        assert long.completion_time == pytest.approx(4.0)

    def test_late_arrival_shares_from_arrival(self):
        engine, proc = ps_processor()
        first = proc.run_for(2.0)
        engine.schedule(1.0, proc.run_for, 0.5)
        engine.run()
        # [0,1): first alone, 1.0 served. [1,?): rate 1/2 each.
        # Second needs 0.5 -> 1.0 wall; finishes t=2.0; first then has
        # 2.0-1.0-0.5=0.5 left alone -> t=2.5.
        assert first.completion_time == pytest.approx(2.5)

    def test_completion_callback_fired(self):
        engine, proc = ps_processor()
        done = []
        proc.run_for(1.0, on_complete=lambda job, t: done.append(t))
        engine.run()
        assert done == [pytest.approx(1.0)]

    def test_active_count_and_busy(self):
        engine, proc = ps_processor()
        assert not proc.is_busy
        proc.run_for(1.0)
        proc.run_for(1.0)
        assert proc.active_count == 2
        assert proc.is_busy
        engine.run()
        assert proc.active_count == 0
        assert not proc.is_busy

    def test_utilization_reflects_busy_time(self):
        engine, proc = ps_processor()
        proc.run_for(1.0)
        engine.run_until(4.0)
        assert proc.utilization(window=4.0) == pytest.approx(0.25)

    def test_completed_jobs_counter(self):
        engine, proc = ps_processor()
        for _ in range(3):
            proc.run_for(0.5)
        engine.run()
        assert proc.completed_jobs == 3

    def test_many_equal_jobs_all_finish_together(self):
        engine, proc = ps_processor()
        jobs = [proc.run_for(1.0) for _ in range(5)]
        engine.run()
        for job in jobs:
            assert job.completion_time == pytest.approx(5.0)


class TestCancelPS:
    def test_cancel_prevents_completion(self):
        engine, proc = ps_processor()
        done = []
        job = proc.run_for(1.0, on_complete=lambda j, t: done.append(t))
        engine.run_until(0.5)
        assert proc.cancel_job(job)
        engine.run()
        assert done == []
        assert proc.active_count == 0

    def test_cancel_speeds_up_competitor(self):
        engine, proc = ps_processor()
        keep = proc.run_for(2.0)
        drop = proc.run_for(2.0)
        engine.run_until(1.0)  # each has 0.5 served
        proc.cancel_job(drop)
        engine.run()
        # keep has 1.5 remaining, now alone -> finishes at 2.5.
        assert keep.completion_time == pytest.approx(2.5)

    def test_cancel_unknown_job_returns_false(self):
        engine, proc = ps_processor()
        other = Job(1.0)
        assert not proc.cancel_job(other)

    def test_cancel_frees_busy_state(self):
        engine, proc = ps_processor()
        job = proc.run_for(10.0)
        engine.run_until(1.0)
        proc.cancel_job(job)
        assert not proc.is_busy


class TestRoundRobin:
    def test_single_job_latency_equals_demand(self):
        engine, proc = rr_processor()
        job = proc.run_for(0.010)
        engine.run()
        assert job.completion_time == pytest.approx(0.010)

    def test_two_jobs_interleave(self):
        engine, proc = rr_processor(quantum=0.001)
        a = proc.run_for(0.010)
        b = proc.run_for(0.010)
        engine.run()
        # Interleaved quantum by quantum; both finish around 0.020, with
        # a finishing one quantum before b.
        assert a.completion_time == pytest.approx(0.019, abs=1e-9)
        assert b.completion_time == pytest.approx(0.020, abs=1e-9)

    def test_short_quantum_final_partial_slice(self):
        engine, proc = rr_processor(quantum=0.003)
        job = proc.run_for(0.0055)
        engine.run()
        assert job.completion_time == pytest.approx(0.0055)

    def test_cancel_queued_job(self):
        engine, proc = rr_processor()
        running = proc.run_for(0.010)
        queued = proc.run_for(0.010)
        assert proc.cancel_job(queued)
        engine.run()
        assert running.completion_time == pytest.approx(0.010)
        assert queued.completion_time is None

    def test_cancel_running_job(self):
        engine, proc = rr_processor()
        running = proc.run_for(0.010)
        nxt = proc.run_for(0.010)
        engine.run_until(0.0005)  # mid-slice
        assert proc.cancel_job(running)
        engine.run()
        assert running.completion_time is None
        assert nxt.completion_time is not None

    def test_invalid_quantum_rejected(self):
        engine = Engine()
        with pytest.raises(ClusterError):
            Processor(engine, "p", quantum=0.0)


class TestPSvsRR:
    """The PS discipline must approximate quantum-RR (DESIGN.md §2)."""

    @pytest.mark.parametrize("demands", [
        (0.200, 0.200),
        (0.300, 0.100, 0.050),
        (0.500, 0.250, 0.125, 0.0625),
    ])
    def test_completion_times_close(self, demands):
        engine_ps, ps = ps_processor()
        engine_rr, rr = rr_processor(quantum=0.001)
        ps_jobs = [ps.run_for(d) for d in demands]
        rr_jobs = [rr.run_for(d) for d in demands]
        engine_ps.run()
        engine_rr.run()
        for ps_job, rr_job in zip(ps_jobs, rr_jobs):
            # RR lag behind PS is bounded by ~one quantum per competitor.
            assert ps_job.completion_time == pytest.approx(
                rr_job.completion_time, abs=0.002 * len(demands)
            )

    def test_staggered_arrivals_close(self):
        engine_ps, ps = ps_processor()
        engine_rr, rr = rr_processor(quantum=0.001)
        for engine, proc in ((engine_ps, ps), (engine_rr, rr)):
            proc.run_for(0.300)
            engine.schedule(0.100, proc.run_for, 0.200)
            engine.schedule(0.150, proc.run_for, 0.100)
        engine_ps.run()
        engine_rr.run()
        assert ps.completed_jobs == rr.completed_jobs == 3
        # Total busy time identical (work conservation).
        assert ps.meter.busy_between(0.0, 1.0) == pytest.approx(
            rr.meter.busy_between(0.0, 1.0), abs=1e-6
        )
