"""Tests for per-label network traffic accounting."""

from __future__ import annotations

import pytest

from repro.cluster.network import Network
from repro.sim.engine import Engine


def make(mode="shared"):
    engine = Engine()
    return engine, Network(
        engine, bandwidth_bps=100e6, default_overhead_bytes=0.0, mode=mode
    )


class TestPerLabelAccounting:
    def test_labels_accumulate_counts_and_bytes(self):
        engine, net = make()
        net.send_bytes(1000.0, label="m1")
        net.send_bytes(2000.0, label="m1")
        net.send_bytes(500.0, label="m2")
        engine.run()
        assert net.delivered_by_label["m1"] == (2, 3000.0)
        assert net.delivered_by_label["m2"] == (1, 500.0)

    def test_unlabelled_messages_not_tracked(self):
        engine, net = make()
        net.send_bytes(1000.0)
        engine.run()
        assert net.delivered_by_label == {}
        assert net.delivered_count == 1

    def test_switched_mode_accounts_identically(self):
        engine, net = make(mode="switched")
        net.send_bytes(1000.0, label="a")
        net.send_bytes(1000.0, label="a")
        engine.run()
        assert net.delivered_by_label["a"] == (2, 2000.0)

    def test_totals_match_sum_over_labels(self):
        engine, net = make()
        for i in range(6):
            net.send_bytes(100.0 * (i + 1), label=f"m{i % 2}")
        engine.run()
        by_label = sum(b for _, b in net.delivered_by_label.values())
        assert by_label == pytest.approx(net.delivered_bytes)

    def test_experiment_traffic_split_by_stage(self):
        """End-to-end: an executor run yields per-message-stage totals."""
        from repro.bench.app import aaw_task, default_initial_placement
        from repro.cluster.topology import build_system
        from repro.runtime.executor import PeriodicTaskExecutor
        from repro.tasks.state import ReplicaAssignment

        system = build_system(n_processors=6, seed=2)
        task = aaw_task(noise_sigma=0.0)
        assignment = ReplicaAssignment(
            task,
            default_initial_placement(task, [p.name for p in system.processors]),
        )
        executor = PeriodicTaskExecutor(
            system, task, assignment, workload=lambda c: 2000.0
        )
        executor.start(2)
        system.engine.run_until(4.0)
        labels = set(system.network.delivered_by_label)
        assert labels == {"aaw.m1", "aaw.m2", "aaw.m3", "aaw.m4"}
        # m1 (80 B/item + 16 context) outweighs m4 (16 + 16).
        assert (
            system.network.delivered_by_label["aaw.m1"][1]
            > system.network.delivered_by_label["aaw.m4"][1]
        )
