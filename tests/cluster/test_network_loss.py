"""Unit tests for message loss and retransmission."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.network import Network
from repro.errors import ClusterError
from repro.sim.engine import Engine
from repro.sim.trace import Tracer


def make(loss=0.5, mode="shared", seed=0, timeout=0.050, max_retries=None):
    engine = Engine()
    return engine, Network(
        engine,
        bandwidth_bps=100e6,
        default_overhead_bytes=0.0,
        mode=mode,
        loss_probability=loss,
        retransmit_timeout=timeout,
        max_retries=max_retries,
        rng=np.random.default_rng(seed),
    )


class TestValidation:
    def test_bad_probability_rejected(self):
        engine = Engine()
        with pytest.raises(ClusterError):
            Network(engine, loss_probability=1.0, rng=np.random.default_rng(0))
        with pytest.raises(ClusterError):
            Network(engine, loss_probability=-0.1, rng=np.random.default_rng(0))

    def test_loss_requires_rng(self):
        engine = Engine()
        with pytest.raises(ClusterError):
            Network(engine, loss_probability=0.1)

    def test_bad_timeout_rejected(self):
        engine = Engine()
        with pytest.raises(ClusterError):
            Network(
                engine, loss_probability=0.1, retransmit_timeout=0.0,
                rng=np.random.default_rng(0),
            )


class TestRetransmission:
    @pytest.mark.parametrize("mode", ["shared", "switched"])
    def test_every_message_eventually_delivered(self, mode):
        engine, net = make(loss=0.4, mode=mode, seed=1)
        messages = [net.send_bytes(10_000.0) for _ in range(30)]
        engine.run()
        assert net.delivered_count == 30
        assert all(m.delivery_time is not None for m in messages)
        assert net.lost_count > 0  # at 40% loss, some retries happened

    def test_lost_message_delay_includes_timeout(self):
        engine, net = make(loss=0.99999, timeout=0.100)
        message = net.send_bytes(10_000.0)
        # Force exactly one loss then disable further losses.
        engine.run_until(0.010)
        net.loss_probability = 0.0
        engine.run()
        # 0.8 ms wire + 100 ms retransmit timeout + 0.8 ms retry.
        assert message.total_delay == pytest.approx(0.1016, abs=0.002)
        assert net.lost_count == 1

    def test_zero_loss_is_the_reliable_baseline(self):
        engine, net = make(loss=0.0)
        message = net.send_bytes(1_250_000)
        engine.run()
        assert net.lost_count == 0
        assert message.total_delay == pytest.approx(0.1)

    def test_loss_rate_statistics(self):
        engine, net = make(loss=0.25, seed=3)
        for _ in range(400):
            net.send_bytes(1_000.0)
        engine.run()
        # Attempts = delivered + lost; empirical rate near 25%.
        attempts = net.delivered_count + net.lost_count
        assert net.lost_count / attempts == pytest.approx(0.25, abs=0.06)

    def test_queue_continues_during_retransmit_wait(self):
        """A loss must not stall the medium: later messages proceed."""
        engine, net = make(loss=0.99999, timeout=0.500)
        first = net.send_bytes(10_000.0, label="first")
        engine.run_until(0.002)
        net.loss_probability = 0.0
        second = net.send_bytes(10_000.0, label="second")
        engine.run()
        assert second.delivery_time < first.delivery_time


class TestDroppedMessages:
    def test_retry_exhaustion_drops_message(self):
        engine, net = make(loss=0.99999, max_retries=2)
        message = net.send_bytes(10_000.0, label="m")
        engine.run()
        assert message.dropped
        assert message.loss_count == 3  # initial attempt + 2 retries
        assert message.delivery_time is None
        assert net.dropped_count == 1
        assert net.delivered_count == 0

    def test_dropped_and_lost_counters_are_distinct(self):
        engine, net = make(loss=0.5, seed=7, max_retries=0)
        messages = [net.send_bytes(1_000.0) for _ in range(100)]
        engine.run()
        # With zero retries every loss is a drop; nothing retries.
        assert net.dropped_count == net.lost_count > 0
        assert net.delivered_count + net.dropped_count == 100
        assert sum(m.dropped for m in messages) == net.dropped_count

    def test_unlimited_retries_never_drop(self):
        engine, net = make(loss=0.6, seed=2)
        for _ in range(50):
            net.send_bytes(1_000.0)
        engine.run()
        assert net.dropped_count == 0
        assert net.delivered_count == 50

    @pytest.mark.parametrize("mode", ["shared", "switched"])
    def test_drop_is_traced(self, mode):
        engine = Engine(tracer=Tracer(categories={"message"}))
        net = Network(
            engine, bandwidth_bps=100e6, default_overhead_bytes=0.0,
            mode=mode, loss_probability=0.99999, max_retries=1,
            rng=np.random.default_rng(0),
        )
        net.send_bytes(10_000.0, label="probe")
        engine.run()
        labels = [record.label for record in engine.tracer.records]
        assert "probe.dropped" in labels

    def test_negative_max_retries_rejected(self):
        engine = Engine()
        with pytest.raises(ClusterError):
            Network(
                engine, loss_probability=0.1, max_retries=-1,
                rng=np.random.default_rng(0),
            )


class TestSystemIntegration:
    def test_lossy_experiment_still_functions(self, fitted_estimator):
        from repro.experiments.config import BaselineConfig, ExperimentConfig
        from repro.experiments.runner import run_experiment

        config = ExperimentConfig(
            policy="predictive",
            pattern="triangular",
            max_workload_units=10.0,
            baseline=BaselineConfig(
                n_periods=15, noise_sigma=0.0, seed=4,
                message_loss_probability=0.05,
            ),
        )
        result = run_experiment(config, estimator=fitted_estimator)
        # 5% loss adds latency spikes; the RM absorbs them.
        assert result.metrics.missed_deadline_ratio <= 0.35
