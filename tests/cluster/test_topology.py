"""Unit tests for the assembled system."""

from __future__ import annotations

import pytest

from repro.cluster.topology import System, build_system
from repro.errors import ClusterError


class TestBuildSystem:
    def test_baseline_shape(self):
        system = build_system()
        assert system.size == 6
        assert [p.name for p in system.processors] == [
            "p1", "p2", "p3", "p4", "p5", "p6",
        ]
        assert len(system.clocks) == 6
        assert system.clock_sync is not None

    def test_zero_processors_rejected(self):
        with pytest.raises(ClusterError):
            build_system(n_processors=0)

    def test_clock_sync_optional(self):
        system = build_system(clock_sync_enabled=False)
        assert system.clock_sync is None

    def test_deterministic_given_seed(self):
        a = build_system(seed=3)
        b = build_system(seed=3)
        assert [c.offset for c in a.clocks] == [c.offset for c in b.clocks]

    def test_different_seeds_differ(self):
        a = build_system(seed=3)
        b = build_system(seed=4)
        assert [c.offset for c in a.clocks] != [c.offset for c in b.clocks]


class TestLookups:
    def test_processor_lookup(self):
        system = build_system(n_processors=3)
        assert system.processor("p2").name == "p2"
        with pytest.raises(ClusterError):
            system.processor("p9")

    def test_clock_lookup(self):
        system = build_system(n_processors=3)
        assert system.clock_of("p1").name == "p1"
        with pytest.raises(ClusterError):
            system.clock_of("p9")

    def test_utilizations_map(self):
        system = build_system(n_processors=3)
        utils = system.utilizations()
        assert set(utils) == {"p1", "p2", "p3"}
        assert all(u == 0.0 for u in utils.values())


class TestLeastUtilized:
    def test_ties_break_by_name(self):
        system = build_system(n_processors=4)
        assert system.least_utilized().name == "p1"

    def test_exclusion(self):
        system = build_system(n_processors=3)
        chosen = system.least_utilized(exclude={"p1"})
        assert chosen.name == "p2"

    def test_all_excluded_returns_none(self):
        system = build_system(n_processors=2)
        assert system.least_utilized(exclude={"p1", "p2"}) is None

    def test_prefers_truly_least_utilized(self):
        system = build_system(n_processors=3)
        system.processor("p1").run_for(3.0)
        system.processor("p2").run_for(1.0)
        system.engine.run_until(4.0)
        # p3 never worked.
        assert system.least_utilized().name == "p3"
        assert system.least_utilized(exclude={"p3"}).name == "p2"

    def test_duplicate_processor_names_rejected(self):
        system = build_system(n_processors=2)
        with pytest.raises(ClusterError):
            System(
                engine=system.engine,
                processors=[system.processors[0], system.processors[0]],
                network=system.network,
                clocks=system.clocks,
                clock_sync=None,
                rng=system.rng,
            )
