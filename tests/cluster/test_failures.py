"""Unit tests for processor failure and the failure injector."""

from __future__ import annotations

import pytest

from repro.cluster.failures import FailureEvent, FailureInjector
from repro.cluster.processor import Processor
from repro.cluster.topology import build_system
from repro.errors import ClusterError
from repro.sim.engine import Engine


class TestProcessorFailure:
    def test_fail_loses_active_jobs(self):
        engine = Engine()
        proc = Processor(engine, "p1")
        done = []
        proc.run_for(1.0, on_complete=lambda j, t: done.append(t))
        proc.run_for(2.0, on_complete=lambda j, t: done.append(t))
        engine.run_until(0.5)
        lost = proc.fail()
        assert lost == 2
        engine.run_until(10.0)
        assert done == []
        assert proc.active_count == 0
        assert not proc.is_busy

    def test_fail_is_idempotent(self):
        engine = Engine()
        proc = Processor(engine, "p1")
        proc.run_for(1.0)
        assert proc.fail() == 1
        assert proc.fail() == 0
        assert proc.failure_count == 1

    def test_submissions_while_failed_never_complete(self):
        engine = Engine()
        proc = Processor(engine, "p1")
        proc.fail()
        done = []
        proc.run_for(0.1, on_complete=lambda j, t: done.append(t))
        engine.run_until(10.0)
        assert done == []

    def test_recover_restores_service(self):
        engine = Engine()
        proc = Processor(engine, "p1")
        proc.fail()
        proc.recover()
        done = []
        proc.run_for(0.5, on_complete=lambda j, t: done.append(t))
        engine.run_until(1.0)
        assert len(done) == 1

    def test_recover_without_failure_is_noop(self):
        engine = Engine()
        proc = Processor(engine, "p1")
        proc.recover()
        assert not proc.failed


class TestSystemFailureViews:
    def test_least_utilized_skips_failed(self):
        system = build_system(n_processors=3)
        system.processor("p1").fail()
        assert system.least_utilized().name == "p2"

    def test_all_failed_returns_none(self):
        system = build_system(n_processors=2)
        for p in system.processors:
            p.fail()
        assert system.least_utilized() is None

    def test_live_and_failed_views(self):
        system = build_system(n_processors=3)
        system.processor("p2").fail()
        assert [p.name for p in system.live_processors()] == ["p1", "p3"]
        assert system.failed_processor_names() == {"p2"}


class TestFailureInjector:
    def test_scheduled_fail_and_recover(self):
        system = build_system(n_processors=2)
        injector = FailureInjector(system)
        injector.plan(FailureEvent("p1", fail_at=1.0, recover_at=2.0))
        injector.arm()
        system.engine.run_until(1.5)
        assert system.processor("p1").failed
        system.engine.run_until(2.5)
        assert not system.processor("p1").failed

    def test_permanent_failure(self):
        system = build_system(n_processors=2)
        FailureInjector(system).plan(FailureEvent("p2", fail_at=1.0)).arm()
        system.engine.run_until(100.0)
        assert system.processor("p2").failed

    def test_unknown_processor_rejected(self):
        system = build_system(n_processors=2)
        with pytest.raises(ClusterError):
            FailureInjector(system).plan(FailureEvent("p9", fail_at=1.0))

    def test_bad_event_times_rejected(self):
        with pytest.raises(ClusterError):
            FailureEvent("p1", fail_at=-1.0)
        with pytest.raises(ClusterError):
            FailureEvent("p1", fail_at=2.0, recover_at=1.0)

    def test_double_arm_rejected(self):
        system = build_system(n_processors=2)
        injector = FailureInjector(system)
        injector.arm()
        with pytest.raises(ClusterError):
            injector.arm()
        with pytest.raises(ClusterError):
            injector.plan(FailureEvent("p1", fail_at=1.0))


class TestPlanValidation:
    def test_duplicate_fail_time_rejected(self):
        system = build_system(n_processors=2)
        injector = FailureInjector(system)
        with pytest.raises(ClusterError, match="duplicate"):
            injector.plan(
                FailureEvent("p1", fail_at=1.0, recover_at=2.0),
                FailureEvent("p1", fail_at=1.0, recover_at=3.0),
            )

    def test_overlapping_windows_rejected(self):
        system = build_system(n_processors=2)
        injector = FailureInjector(system)
        with pytest.raises(ClusterError, match="overlap"):
            injector.plan(
                FailureEvent("p1", fail_at=1.0, recover_at=5.0),
                FailureEvent("p1", fail_at=3.0, recover_at=8.0),
            )

    def test_event_after_permanent_failure_rejected(self):
        system = build_system(n_processors=2)
        injector = FailureInjector(system)
        with pytest.raises(ClusterError, match="no recovery"):
            injector.plan(
                FailureEvent("p1", fail_at=1.0),
                FailureEvent("p1", fail_at=5.0, recover_at=6.0),
            )

    def test_overlap_across_plan_calls_rejected(self):
        system = build_system(n_processors=2)
        injector = FailureInjector(system)
        injector.plan(FailureEvent("p1", fail_at=1.0, recover_at=5.0))
        with pytest.raises(ClusterError):
            injector.plan(FailureEvent("p1", fail_at=2.0, recover_at=3.0))
        # The failed call must not have mutated the plan.
        assert len(injector.events) == 1

    def test_same_times_on_different_processors_allowed(self):
        system = build_system(n_processors=3)
        injector = FailureInjector(system)
        injector.plan(
            FailureEvent("p1", fail_at=1.0, recover_at=5.0),
            FailureEvent("p2", fail_at=1.0, recover_at=5.0),
        )
        assert len(injector.events) == 2

    def test_back_to_back_windows_allowed(self):
        system = build_system(n_processors=2)
        injector = FailureInjector(system)
        injector.plan(
            FailureEvent("p1", fail_at=1.0, recover_at=2.0),
            FailureEvent("p1", fail_at=2.0, recover_at=3.0),
        )
        assert len(injector.events) == 2
