"""Unit tests for the utilization meter."""

from __future__ import annotations

import pytest

from repro.cluster.metering import UtilizationMeter


class TestBasics:
    def test_idle_meter_reports_zero(self):
        meter = UtilizationMeter()
        assert meter.utilization(10.0, 5.0) == 0.0
        assert not meter.is_busy

    def test_fully_busy_window(self):
        meter = UtilizationMeter()
        meter.set_busy(0.0, True)
        assert meter.utilization(10.0, 5.0) == pytest.approx(1.0)
        assert meter.is_busy

    def test_half_busy_window(self):
        meter = UtilizationMeter()
        meter.set_busy(5.0, True)
        meter.set_busy(7.5, False)
        assert meter.utilization(10.0, 5.0) == pytest.approx(0.5)

    def test_busy_between_simple(self):
        meter = UtilizationMeter()
        meter.set_busy(1.0, True)
        meter.set_busy(3.0, False)
        assert meter.busy_between(0.0, 4.0) == pytest.approx(2.0)
        assert meter.busy_between(2.0, 4.0) == pytest.approx(1.0)

    def test_interpolation_inside_busy_span(self):
        meter = UtilizationMeter()
        meter.set_busy(0.0, True)
        meter.set_busy(10.0, False)
        assert meter.busy_between(0.0, 4.0) == pytest.approx(4.0)
        assert meter.busy_between(3.0, 7.0) == pytest.approx(4.0)

    def test_interpolation_inside_idle_span(self):
        meter = UtilizationMeter()
        meter.set_busy(0.0, True)
        meter.set_busy(2.0, False)
        meter.set_busy(8.0, True)
        meter.set_busy(9.0, False)
        assert meter.busy_between(3.0, 7.0) == pytest.approx(0.0)

    def test_redundant_transitions_ignored(self):
        meter = UtilizationMeter()
        meter.set_busy(0.0, True)
        meter.set_busy(1.0, True)  # no-op
        meter.set_busy(2.0, False)
        meter.set_busy(3.0, False)  # no-op
        assert meter.busy_between(0.0, 4.0) == pytest.approx(2.0)


class TestValidation:
    def test_time_going_backwards_rejected(self):
        meter = UtilizationMeter()
        meter.set_busy(5.0, True)
        with pytest.raises(ValueError):
            meter.set_busy(4.0, False)

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            UtilizationMeter().busy_between(3.0, 2.0)

    def test_non_positive_window_rejected(self):
        with pytest.raises(ValueError):
            UtilizationMeter().utilization(1.0, 0.0)

    def test_window_beyond_max_rejected(self):
        meter = UtilizationMeter(max_window=5.0)
        with pytest.raises(ValueError):
            meter.utilization(100.0, 10.0)

    def test_non_positive_max_window_rejected(self):
        with pytest.raises(ValueError):
            UtilizationMeter(max_window=0.0)


class TestWarmup:
    def test_warmup_uses_elapsed_not_window(self):
        """At t=2 with a 5 s window, a fully busy [0,2] reads 1.0, not 0.4."""
        meter = UtilizationMeter()
        meter.set_busy(0.0, True)
        assert meter.utilization(2.0, 5.0) == pytest.approx(1.0)

    def test_at_time_zero_reflects_current_state(self):
        meter = UtilizationMeter()
        assert meter.utilization(0.0, 5.0) == 0.0
        meter.set_busy(0.0, True)
        assert meter.utilization(0.0, 5.0) == 1.0


class TestPruning:
    def test_long_history_stays_accurate_in_window(self):
        meter = UtilizationMeter(max_window=5.0)
        # Alternate 0.5 busy / 0.5 idle for 200 s -> 50% utilization.
        t = 0.0
        for _ in range(200):
            meter.set_busy(t, True)
            meter.set_busy(t + 0.5, False)
            t += 1.0
        assert meter.utilization(200.0, 5.0) == pytest.approx(0.5)

    def test_lifetime_utilization(self):
        meter = UtilizationMeter()
        meter.set_busy(0.0, True)
        meter.set_busy(5.0, False)
        assert meter.lifetime_utilization(10.0) == pytest.approx(0.5)
        assert meter.lifetime_utilization(0.0) == 0.0
