"""Unit tests for the switched network mode."""

from __future__ import annotations

import pytest

from repro.cluster.network import Network
from repro.errors import ClusterError
from repro.sim.engine import Engine


def make(mode="switched"):
    engine = Engine()
    return engine, Network(
        engine, bandwidth_bps=100e6, default_overhead_bytes=0.0, mode=mode
    )


class TestSwitchedMode:
    def test_unknown_mode_rejected(self):
        engine = Engine()
        with pytest.raises(ClusterError):
            Network(engine, mode="quantum")

    def test_concurrent_messages_do_not_queue(self):
        engine, net = make()
        first = net.send_bytes(1_250_000)   # 100 ms
        second = net.send_bytes(1_250_000)
        engine.run()
        assert first.buffer_delay == 0.0
        assert second.buffer_delay == 0.0
        assert first.delivery_time == pytest.approx(0.1)
        assert second.delivery_time == pytest.approx(0.1)

    def test_shared_mode_same_messages_queue(self):
        engine, net = make(mode="shared")
        net.send_bytes(1_250_000)
        second = net.send_bytes(1_250_000)
        engine.run()
        assert second.buffer_delay == pytest.approx(0.1)

    def test_counters_still_track(self):
        engine, net = make()
        for _ in range(5):
            net.send_bytes(1000.0)
        engine.run()
        assert net.delivered_count == 5
        assert net.delivered_bytes == 5000.0

    def test_delivery_callbacks_fire(self):
        engine, net = make()
        got = []
        for _ in range(3):
            net.send_bytes(1000.0, on_delivered=lambda m, t: got.append(t))
        engine.run()
        assert len(got) == 3

    def test_utilization_counts_any_in_flight(self):
        engine, net = make()
        net.send_bytes(1_250_000)  # 100 ms
        net.send_bytes(2_500_000)  # 200 ms, concurrent
        engine.run_until(1.0)
        # Busy while >= 1 transmission in flight: 200 ms of 1 s.
        assert net.utilization(window=1.0) == pytest.approx(0.2, abs=1e-6)

    def test_burst_latency_advantage_over_shared(self):
        """The buffer-delay mechanism (eq. 5) vanishes on a switch."""
        engine_sw, net_sw = make("switched")
        engine_sh, net_sh = make("shared")
        last_sw = [net_sw.send_bytes(125_000) for _ in range(8)][-1]
        last_sh = [net_sh.send_bytes(125_000) for _ in range(8)][-1]
        engine_sw.run()
        engine_sh.run()
        assert last_sw.total_delay == pytest.approx(0.01)
        assert last_sh.total_delay == pytest.approx(0.08)
