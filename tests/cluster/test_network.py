"""Unit tests for the shared network medium."""

from __future__ import annotations

import pytest

from repro.cluster.network import Message, Network
from repro.errors import ClusterError
from repro.sim.engine import Engine


def make(bandwidth=100e6, overhead=0.0):
    engine = Engine()
    return engine, Network(
        engine, bandwidth_bps=bandwidth, default_overhead_bytes=overhead
    )


class TestMessage:
    def test_negative_payload_rejected(self):
        with pytest.raises(ClusterError):
            Message(-1.0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ClusterError):
            Message(10.0, overhead_bytes=-1.0)

    def test_delays_before_transmission_raise(self):
        message = Message(10.0)
        with pytest.raises(ClusterError):
            message.buffer_delay
        with pytest.raises(ClusterError):
            message.total_delay

    def test_wire_bytes(self):
        assert Message(100.0, overhead_bytes=20.0).wire_bytes == 120.0


class TestTransmission:
    def test_single_message_delay_is_bits_over_bandwidth(self):
        engine, net = make(bandwidth=100e6)
        message = net.send_bytes(1_250_000)  # 10 Mbit
        engine.run()
        assert message.delivery_time == pytest.approx(0.1)
        assert message.buffer_delay == 0.0
        assert message.total_delay == pytest.approx(0.1)

    def test_default_overhead_applied(self):
        engine, net = make(overhead=500.0)
        message = net.send_bytes(500.0)
        engine.run()
        assert message.wire_bytes == 1000.0
        assert message.total_delay == pytest.approx(1000 * 8 / 100e6)

    def test_explicit_overhead_not_overwritten(self):
        engine, net = make(overhead=500.0)
        message = net.send(Message(500.0, overhead_bytes=100.0))
        engine.run()
        assert message.wire_bytes == 600.0

    def test_fifo_queueing_creates_buffer_delay(self):
        engine, net = make(bandwidth=100e6)
        first = net.send_bytes(1_250_000)   # 100 ms on the wire
        second = net.send_bytes(1_250_000)
        engine.run()
        assert first.buffer_delay == 0.0
        assert second.buffer_delay == pytest.approx(0.1)
        assert second.delivery_time == pytest.approx(0.2)

    def test_burst_of_k_messages_serializes(self):
        engine, net = make(bandwidth=100e6)
        messages = [net.send_bytes(125_000) for _ in range(5)]  # 10 ms each
        engine.run()
        for i, message in enumerate(messages):
            assert message.buffer_delay == pytest.approx(i * 0.010)

    def test_delivery_callback(self):
        engine, net = make()
        got = []
        net.send_bytes(1000.0, on_delivered=lambda m, t: got.append(t))
        engine.run()
        assert len(got) == 1

    def test_counters(self):
        engine, net = make()
        net.send_bytes(1000.0)
        net.send_bytes(2000.0)
        engine.run()
        assert net.delivered_count == 2
        assert net.delivered_bytes == 3000.0

    def test_queue_length(self):
        engine, net = make()
        net.send_bytes(1_250_000)
        net.send_bytes(1_250_000)
        net.send_bytes(1_250_000)
        assert net.queue_length == 2  # one transmitting, two waiting
        engine.run()
        assert net.queue_length == 0

    def test_idle_between_sends(self):
        engine, net = make(bandwidth=100e6)
        net.send_bytes(125_000)  # 10 ms
        engine.run_until(1.0)
        second = net.send_bytes(125_000)
        engine.run()
        assert second.buffer_delay == 0.0
        assert second.start_time == pytest.approx(1.0)

    def test_utilization_reflects_wire_time(self):
        engine, net = make(bandwidth=100e6)
        net.send_bytes(2_500_000)  # 200 ms
        engine.run_until(1.0)
        assert net.utilization(window=1.0) == pytest.approx(0.2, abs=1e-6)

    def test_zero_payload_with_overhead_still_transmits(self):
        engine, net = make(overhead=100.0)
        message = net.send_bytes(0.0)
        engine.run()
        assert message.delivery_time is not None

    def test_invalid_bandwidth_rejected(self):
        engine = Engine()
        with pytest.raises(ClusterError):
            Network(engine, bandwidth_bps=0.0)
