"""Tests for the incremental utilization index (RM hot-path scalability).

Two families of guarantees are exercised here:

* **Query equivalence** — under randomized background load, failures,
  and recoveries, every index query (`least_utilized`,
  `processors_below`, `mean_utilization`) returns bit-identical results
  to the reference O(P) scans.
* **Decision equivalence** — full P=6 replication runs (predictive and
  non-predictive) produce identical RM decision sequences with the
  index on and off, which is the paper-replication acceptance bar for
  the index rewrite.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.app import aaw_task, default_initial_placement
from repro.cluster.index import UtilizationIndex
from repro.cluster.topology import build_system
from repro.core.manager import AdaptiveResourceManager, RMConfig
from repro.core.nonpredictive import NonPredictivePolicy
from repro.core.predictive import PredictivePolicy
from repro.runtime.executor import PeriodicTaskExecutor
from repro.tasks.state import ReplicaAssignment

from tests.conftest import exact_estimator


def assert_queries_match(system, exclude=frozenset(), thresholds=(0.1, 0.2, 0.5)):
    """Every index-served query equals its reference scan, bit for bit."""
    got = system.least_utilized(exclude=exclude)
    want = system.least_utilized_scan(exclude=exclude)
    if want is None:
        assert got is None
    else:
        assert got is not None
        assert got.name == want.name
        assert got.utilization() == want.utilization()
    for threshold in thresholds:
        got_below = [p.name for p in system.processors_below(threshold)]
        want_below = [p.name for p in system.processors_below_scan(threshold)]
        assert got_below == want_below
    assert system.mean_utilization() == (
        sum(p.utilization() for p in system.processors) / len(system.processors)
    )


def drive_random_load(system, rng, horizon, n_jobs=120):
    """Schedule bursty background jobs across the cluster."""
    for _ in range(n_jobs):
        proc = system.processors[rng.randrange(len(system.processors))]
        start = rng.uniform(0.0, horizon)
        demand = rng.uniform(0.05, 1.5)
        system.engine.schedule_at(
            start,
            lambda p=proc, d=demand: None if p.failed else p.run_for(d, kind="bg"),
            label="test.bg",
        )


class TestIndexAgainstScan:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_randomized_load_agreement(self, seed):
        rng = random.Random(seed)
        system = build_system(
            n_processors=12, seed=seed, clock_sync_enabled=False
        )
        drive_random_load(system, rng, horizon=20.0)
        t = 0.0
        while t < 22.0:
            t += rng.uniform(0.05, 1.0)
            system.engine.run_until(t)
            exclude = frozenset(
                p.name
                for p in system.processors
                if rng.random() < 0.25
            )
            assert_queries_match(system, exclude=exclude)
            # Same-timestamp repeat must agree too (served from cache).
            assert_queries_match(system, exclude=exclude)

    def test_exclude_everything_returns_none(self):
        system = build_system(n_processors=4, clock_sync_enabled=False)
        everyone = frozenset(p.name for p in system.processors)
        assert system.least_utilized(exclude=everyone) is None
        assert system.least_utilized_scan(exclude=everyone) is None

    def test_tie_break_is_by_name(self):
        system = build_system(n_processors=6, clock_sync_enabled=False)
        # All idle: every utilization is 0.0, so the name decides.
        found = system.least_utilized()
        assert found is not None and found.name == "p1"
        found = system.least_utilized(exclude={"p1", "p2"})
        assert found is not None and found.name == "p3"

    def test_below_preserves_creation_order(self):
        system = build_system(n_processors=8, clock_sync_enabled=False)
        # Load the middle processors so the selected set is non-trivial.
        for proc in system.processors[2:5]:
            proc.run_for(10.0)
        system.engine.run_until(3.0)
        names = [p.name for p in system.processors_below(0.5)]
        assert names == [p.name for p in system.processors_below_scan(0.5)]
        assert names == sorted(names, key=lambda n: int(n[1:]))

    def test_repeated_below_never_duplicates(self):
        system = build_system(n_processors=6, clock_sync_enabled=False)
        system.processors[0].run_for(1.0)
        system.engine.run_until(2.0)
        for _ in range(4):
            names = [p.name for p in system.processors_below(0.9)]
            assert len(names) == len(set(names))

    def test_nondefault_window_falls_back_to_scan(self):
        system = build_system(n_processors=6, clock_sync_enabled=False)
        system.processors[3].run_for(0.5)
        system.engine.run_until(1.0)
        # window=2.0 reads a shorter history than the index caches; the
        # System facade must bypass the index and still be correct.
        got = system.least_utilized(window=2.0)
        want = system.least_utilized_scan(window=2.0)
        assert got is not None and want is not None
        assert got.name == want.name


class TestFailuresAndRecovery:
    def test_failed_processors_never_returned(self):
        system = build_system(n_processors=6, clock_sync_enabled=False)
        system.engine.run_until(1.0)
        system.processors[0].fail()
        system.processors[1].fail()
        assert_queries_match(system)
        found = system.least_utilized()
        assert found is not None and found.name == "p3"
        assert all(not p.failed for p in system.processors_below(1.0))

    def test_recovery_readmits_processor(self):
        system = build_system(n_processors=6, clock_sync_enabled=False)
        for proc in system.processors[1:]:
            proc.run_for(20.0)
        system.engine.run_until(1.0)
        system.processors[0].fail()
        assert_queries_match(system)
        system.engine.run_until(2.0)
        system.processors[0].recover()
        assert_queries_match(system)
        found = system.least_utilized()
        assert found is not None and found.name == "p1"

    def test_direct_failed_flag_writes_stay_safe(self):
        # Some tests poke `failed` directly instead of calling fail();
        # the index discovers the flag at pop time, so both must work.
        system = build_system(n_processors=5, clock_sync_enabled=False)
        system.engine.run_until(1.0)
        system.processors[0].failed = True
        assert_queries_match(system)
        system.processors[0].failed = False
        system.engine.run_until(2.0)
        assert_queries_match(system)

    def test_all_failed_yields_empty_answers(self):
        system = build_system(n_processors=3, clock_sync_enabled=False)
        for proc in system.processors:
            proc.fail()
        assert system.least_utilized() is None
        assert system.processors_below(1.0) == []

    @pytest.mark.parametrize("seed", [11, 12])
    def test_randomized_churn_agreement(self, seed):
        rng = random.Random(seed)
        system = build_system(
            n_processors=10, seed=seed, clock_sync_enabled=False
        )
        drive_random_load(system, rng, horizon=15.0)
        t = 0.0
        while t < 16.0:
            t += rng.uniform(0.1, 0.8)
            system.engine.run_until(t)
            for proc in system.processors:
                roll = rng.random()
                if roll < 0.10 and not proc.failed:
                    proc.fail()
                elif roll < 0.20 and proc.failed:
                    proc.recover()
            assert_queries_match(system)


class TestIndexEfficiency:
    def test_same_timestamp_queries_avoid_meter_reads(self):
        system = build_system(n_processors=64, clock_sync_enabled=False)
        for proc in system.processors[::3]:
            proc.run_for(5.0)
        system.engine.run_until(2.0)
        index = system.utilization_index
        assert index is not None
        system.least_utilized()  # first query at t=2 pays the re-reads
        reads_after_warmup = index.stats.meter_reads
        for _ in range(50):
            system.least_utilized()
        # Warm queries are served from the same-timestamp cache: zero
        # additional meter reads regardless of query count.
        assert index.stats.meter_reads == reads_after_warmup
        assert index.stats.argmin_queries == 51

    def test_stats_export_shape(self):
        system = build_system(n_processors=4, clock_sync_enabled=False)
        index = system.utilization_index
        assert index is not None
        system.least_utilized()
        system.processors_below(0.5)
        stats = index.stats.as_dict()
        assert set(stats) == {
            "argmin_queries",
            "below_queries",
            "rekeys",
            "heap_pops",
            "meter_reads",
            "refreshes",
            "parks",
        }
        assert stats["argmin_queries"] == 1
        assert stats["below_queries"] == 1

    def test_standalone_index_matches_scan_after_refresh(self):
        system = build_system(n_processors=8, clock_sync_enabled=False)
        index = UtilizationIndex(system.engine, system.processors)
        system.processors[4].run_for(3.0)
        system.engine.run_until(1.5)
        index.refresh([p.name for p in system.processors])
        found = index.argmin()
        want = system.least_utilized_scan()
        assert found is not None and want is not None
        assert found[1] == want.name
        assert found[0] == want.utilization()


def run_decision_history(policy, workload, use_index, n_periods=40, horizon=41.0):
    """One full replication run; returns the RM decision sequence."""
    system = build_system(
        n_processors=6, seed=0, use_utilization_index=use_index
    )
    task = aaw_task(noise_sigma=0.0)
    placement = default_initial_placement(
        task, [p.name for p in system.processors]
    )
    assignment = ReplicaAssignment(task, placement)
    executor = PeriodicTaskExecutor(system, task, assignment, workload=workload)
    manager = AdaptiveResourceManager(
        system,
        executor,
        exact_estimator(task),
        policy=policy,
        config=RMConfig(initial_d_tracks=500.0),
    )
    manager.start(n_periods)
    executor.start(n_periods)
    system.engine.run_until(horizon)
    return [
        (
            event.time,
            event.placement,
            tuple(event.shutdowns),
            tuple(event.recoveries),
            tuple(
                (
                    outcome.subtask_index,
                    outcome.added_processors,
                    outcome.success,
                    outcome.forecast_latency,
                )
                for outcome in event.outcomes
            ),
        )
        for event in manager.history
    ]


class TestDecisionSequenceEquivalence:
    """The ISSUE acceptance bar: P=6 runs are bit-identical index vs scan."""

    def rise_and_fall(self, cycle):
        return 8000.0 if cycle < 10 else 300.0

    def test_predictive_run_identical(self):
        with_index = run_decision_history(
            PredictivePolicy(), self.rise_and_fall, use_index=True
        )
        with_scan = run_decision_history(
            PredictivePolicy(), self.rise_and_fall, use_index=False
        )
        assert with_index == with_scan
        # The run actually exercised the hot paths (grew and shrank).
        assert any(step[4] and step[4][0][1] for step in with_index)
        assert any(step[2] for step in with_index)

    def test_nonpredictive_run_identical(self):
        with_index = run_decision_history(
            NonPredictivePolicy(), self.rise_and_fall, use_index=True
        )
        with_scan = run_decision_history(
            NonPredictivePolicy(), self.rise_and_fall, use_index=False
        )
        assert with_index == with_scan
        assert any(step[4] and step[4][0][1] for step in with_index)

    def test_predictive_run_with_failure_identical(self):
        def run(use_index):
            system = build_system(
                n_processors=6, seed=0, use_utilization_index=use_index
            )
            task = aaw_task(noise_sigma=0.0)
            placement = default_initial_placement(
                task, [p.name for p in system.processors]
            )
            assignment = ReplicaAssignment(task, placement)
            executor = PeriodicTaskExecutor(
                system, task, assignment, workload=lambda c: 6000.0
            )
            manager = AdaptiveResourceManager(
                system,
                executor,
                exact_estimator(task),
                policy=PredictivePolicy(),
                config=RMConfig(initial_d_tracks=500.0),
            )
            manager.start(30)
            executor.start(30)
            system.engine.schedule_at(
                9.5, system.processors[2].fail, label="test.fail"
            )
            system.engine.schedule_at(
                18.5, system.processors[2].recover, label="test.recover"
            )
            system.engine.run_until(31.0)
            return [
                (event.time, event.placement, tuple(event.recoveries))
                for event in manager.history
            ]

        with_index = run(True)
        with_scan = run(False)
        assert with_index == with_scan
        assert any(step[2] for step in with_index)  # migration happened
