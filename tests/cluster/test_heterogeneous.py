"""Unit tests for heterogeneous processor speeds."""

from __future__ import annotations

import pytest

from repro.cluster.processor import Discipline, Processor
from repro.cluster.topology import build_system
from repro.errors import ClusterError
from repro.sim.engine import Engine


class TestSpeedFactor:
    def test_invalid_speed_rejected(self):
        engine = Engine()
        with pytest.raises(ClusterError):
            Processor(engine, "p", speed=0.0)

    def test_fast_processor_finishes_sooner(self):
        engine = Engine()
        fast = Processor(engine, "fast", speed=2.0)
        slow = Processor(engine, "slow", speed=0.5)
        fast_job = fast.run_for(1.0)
        slow_job = slow.run_for(1.0)
        engine.run()
        assert fast_job.completion_time == pytest.approx(0.5)
        assert slow_job.completion_time == pytest.approx(2.0)

    def test_ps_sharing_scales_with_speed(self):
        engine = Engine()
        proc = Processor(engine, "p", speed=2.0)
        a = proc.run_for(1.0)
        b = proc.run_for(1.0)
        engine.run()
        # Combined demand 2.0 at rate 2.0: both finish at t=1.
        assert a.completion_time == pytest.approx(1.0)
        assert b.completion_time == pytest.approx(1.0)

    def test_rr_respects_speed(self):
        engine = Engine()
        proc = Processor(
            engine, "p", discipline=Discipline.ROUND_ROBIN,
            quantum=0.001, speed=2.0,
        )
        job = proc.run_for(0.010)
        engine.run()
        assert job.completion_time == pytest.approx(0.005)

    def test_rr_and_ps_agree_under_speed(self):
        results = {}
        for discipline in (Discipline.PROCESSOR_SHARING, Discipline.ROUND_ROBIN):
            engine = Engine()
            proc = Processor(
                engine, "p", discipline=discipline, quantum=0.001, speed=0.5
            )
            jobs = [proc.run_for(0.100), proc.run_for(0.050)]
            engine.run()
            results[discipline] = [j.completion_time for j in jobs]
        ps, rr = results.values()
        for a, b in zip(ps, rr):
            assert a == pytest.approx(b, abs=0.004)

    def test_busy_time_reflects_wall_clock_not_demand(self):
        engine = Engine()
        proc = Processor(engine, "p", speed=0.5)
        proc.run_for(1.0)  # runs for 2 wall seconds
        engine.run_until(4.0)
        assert proc.meter.busy_between(0.0, 4.0) == pytest.approx(2.0)


class TestHeterogeneousSystem:
    def test_speed_factors_applied(self):
        system = build_system(
            n_processors=3, speed_factors=(2.0, 1.0, 0.5)
        )
        assert [p.speed for p in system.processors] == [2.0, 1.0, 0.5]

    def test_wrong_factor_count_rejected(self):
        with pytest.raises(ClusterError):
            build_system(n_processors=3, speed_factors=(1.0, 1.0))

    def test_default_is_homogeneous(self):
        system = build_system(n_processors=3)
        assert all(p.speed == 1.0 for p in system.processors)
