"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.sim.engine import Engine
from repro.sim.trace import Tracer


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_custom_start_time(self):
        assert Engine(start_time=5.0).now == 5.0

    def test_schedule_returns_pending_event(self):
        engine = Engine()
        event = engine.schedule(1.0, lambda: None)
        assert event.pending
        assert event.time == 1.0

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SchedulingError):
            engine.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        engine = Engine()
        engine.run_until(2.0)
        with pytest.raises(SchedulingError):
            engine.schedule_at(1.0, lambda: None)

    def test_zero_delay_allowed(self):
        engine = Engine()
        fired = []
        engine.schedule(0.0, lambda: fired.append(engine.now))
        engine.run_until(0.0)
        assert fired == [0.0]

    def test_pending_count(self):
        engine = Engine()
        for i in range(5):
            engine.schedule(float(i + 1), lambda: None)
        assert engine.pending_count == 5


class TestExecutionOrder:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(3.0, lambda: order.append(3))
        engine.schedule(1.0, lambda: order.append(1))
        engine.schedule(2.0, lambda: order.append(2))
        engine.run()
        assert order == [1, 2, 3]

    def test_fifo_at_equal_times(self):
        engine = Engine()
        order = []
        for i in range(10):
            engine.schedule(1.0, order.append, i)
        engine.run()
        assert order == list(range(10))

    def test_priority_breaks_ties(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, order.append, "late", priority=5)
        engine.schedule(1.0, order.append, "early", priority=-5)
        engine.schedule(1.0, order.append, "mid", priority=0)
        engine.run()
        assert order == ["early", "mid", "late"]

    def test_clock_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(2.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [2.5]

    def test_callback_args_passed(self):
        engine = Engine()
        got = []
        engine.schedule(1.0, lambda a, b: got.append((a, b)), 1, "x")
        engine.run()
        assert got == [(1, "x")]


class TestRunUntil:
    def test_stops_at_boundary(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, fired.append, 1)
        engine.schedule(2.0, fired.append, 2)
        engine.schedule(3.0, fired.append, 3)
        engine.run_until(2.0)
        assert fired == [1, 2]
        assert engine.now == 2.0

    def test_clock_lands_exactly_on_until(self):
        engine = Engine()
        engine.run_until(7.25)
        assert engine.now == 7.25

    def test_run_until_past_rejected(self):
        engine = Engine()
        engine.run_until(5.0)
        with pytest.raises(SchedulingError):
            engine.run_until(4.0)

    def test_events_scheduled_during_run_execute(self):
        engine = Engine()
        fired = []

        def first():
            fired.append("first")
            engine.schedule(0.5, lambda: fired.append("chained"))

        engine.schedule(1.0, first)
        engine.run_until(2.0)
        assert fired == ["first", "chained"]

    def test_event_exactly_at_boundary_runs(self):
        engine = Engine()
        fired = []
        engine.schedule(2.0, fired.append, True)
        engine.run_until(2.0)
        assert fired == [True]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        event = engine.schedule(1.0, fired.append, 1)
        assert event.cancel()
        engine.run()
        assert fired == []

    def test_double_cancel_returns_false(self):
        engine = Engine()
        event = engine.schedule(1.0, lambda: None)
        assert event.cancel()
        assert not event.cancel()

    def test_cancel_after_execution_returns_false(self):
        engine = Engine()
        event = engine.schedule(1.0, lambda: None)
        engine.run()
        assert not event.cancel()

    def test_peek_time_skips_cancelled(self):
        engine = Engine()
        event = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        event.cancel()
        assert engine.peek_time() == 2.0

    def test_drain_cancels_everything(self):
        engine = Engine()
        for i in range(4):
            engine.schedule(float(i + 1), lambda: None)
        drained = list(engine.drain())
        assert len(drained) == 4
        assert engine.peek_time() is None


class TestStepAndRun:
    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_step_executes_one_event(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, fired.append, 1)
        engine.schedule(2.0, fired.append, 2)
        assert engine.step()
        assert fired == [1]

    def test_run_returns_executed_count(self):
        engine = Engine()
        for i in range(7):
            engine.schedule(float(i + 1), lambda: None)
        assert engine.run() == 7

    def test_run_max_events(self):
        engine = Engine()
        for i in range(10):
            engine.schedule(float(i + 1), lambda: None)
        assert engine.run(max_events=3) == 3
        assert engine.executed_count == 3


class TestEvery:
    def test_periodic_firing(self):
        engine = Engine()
        fired = []
        engine.every(1.0, lambda: fired.append(engine.now))
        engine.run_until(3.5)
        assert fired == [1.0, 2.0, 3.0]

    def test_start_delay(self):
        engine = Engine()
        fired = []
        engine.every(1.0, lambda: fired.append(engine.now), start_delay=0.0)
        engine.run_until(2.5)
        assert fired == [0.0, 1.0, 2.0]

    def test_stop_halts_recurrence(self):
        engine = Engine()
        fired = []
        stop = engine.every(1.0, lambda: fired.append(engine.now))
        engine.run_until(2.0)
        stop()
        engine.run_until(10.0)
        assert fired == [1.0, 2.0]

    def test_non_positive_interval_rejected(self):
        engine = Engine()
        with pytest.raises(SchedulingError):
            engine.every(0.0, lambda: None)

    def test_stop_from_within_callback(self):
        engine = Engine()
        fired = []
        holder = {}

        def tick():
            fired.append(engine.now)
            if len(fired) == 2:
                holder["stop"]()

        holder["stop"] = engine.every(1.0, tick)
        engine.run_until(10.0)
        assert fired == [1.0, 2.0]


class TestTracing:
    def test_tracer_records_events(self):
        tracer = Tracer()
        engine = Engine(tracer=tracer)
        engine.schedule(1.0, lambda: None, label="hello")
        engine.run()
        assert len(tracer.by_category("event")) == 1
        assert tracer.by_category("event")[0].label == "hello"

    def test_determinism_same_seeded_program(self):
        def program():
            engine = Engine()
            out = []
            engine.schedule(1.0, out.append, "a")
            engine.schedule(1.0, out.append, "b", priority=-1)
            engine.schedule(0.5, out.append, "c")
            engine.run()
            return out

        assert program() == program() == ["c", "b", "a"]
