"""Unit tests for the named random-stream registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.rng import RngRegistry


class TestStreams:
    def test_same_name_same_generator_instance(self):
        registry = RngRegistry(1)
        assert registry.stream("a") is registry.stream("a")

    def test_streams_are_reproducible_across_registries(self):
        a = RngRegistry(5).stream("noise").random(8)
        b = RngRegistry(5).stream("noise").random(8)
        assert np.array_equal(a, b)

    def test_different_names_differ(self):
        registry = RngRegistry(5)
        a = registry.stream("noise").random(8)
        b = registry.stream("background").random(8)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").random(8)
        b = RngRegistry(2).stream("x").random(8)
        assert not np.array_equal(a, b)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(0).stream("")

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(-1)

    def test_fork_changes_streams(self):
        base = RngRegistry(3)
        child = base.fork(1)
        assert child.master_seed != base.master_seed
        a = base.stream("x").random(4)
        b = child.stream("x").random(4)
        assert not np.array_equal(a, b)

    def test_fork_reproducible(self):
        a = RngRegistry(3).fork(2).stream("x").random(4)
        b = RngRegistry(3).fork(2).stream("x").random(4)
        assert np.array_equal(a, b)

    def test_common_random_numbers_discipline(self):
        """Consuming one stream must not perturb another."""
        r1 = RngRegistry(9)
        r1.stream("a").random(1000)  # heavy consumption
        after = r1.stream("b").random(4)
        fresh = RngRegistry(9).stream("b").random(4)
        assert np.array_equal(after, fresh)
