"""Unit tests for the array-backed :class:`VectorizedEngine`.

The contract under test is *observational equivalence*: any workload —
large sorted batches, unsorted batches, tiny batches that fall back to
the irregular heap, mid-run scheduling from callbacks, cancellations —
must execute in exactly the order the scalar heap engine executes it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.sim.engine import Engine
from repro.sim.vector import VectorizedEngine


def _order_log(engine_cls, drive):
    """Run ``drive(engine, log)`` and return the execution-order log."""
    engine = engine_cls()
    log: list = []
    drive(engine, log)
    return log


def assert_equivalent(drive):
    """Both engines must produce identical execution logs for ``drive``."""
    assert _order_log(Engine, drive) == _order_log(VectorizedEngine, drive)


class TestBatchScheduling:
    def test_supports_batch_flags(self):
        assert VectorizedEngine.supports_batch is True
        assert Engine.supports_batch is False

    def test_schedule_many_returns_events_in_input_order(self):
        engine = VectorizedEngine()
        times = [3.0, 1.0, 2.0, 5.0, 4.0, 0.5, 6.0, 7.0]
        events = engine.schedule_many(times, lambda: None)
        assert [e.time for e in events] == times
        # Seqs are consumed consecutively in input order.
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)

    def test_small_batch_uses_irregular_heap(self):
        engine = VectorizedEngine()
        events = engine.schedule_many([1.0, 2.0], lambda: None)
        assert len(events) == 2
        assert engine.pending_count == 2
        engine.run_until(3.0)
        assert engine.executed_count == 2

    def test_length_mismatch_rejected(self):
        engine = VectorizedEngine()
        with pytest.raises(SchedulingError):
            engine.schedule_many([1.0, 2.0], [lambda: None])
        with pytest.raises(SchedulingError):
            engine.schedule_many(
                [1.0] * 8, lambda: None, args_list=[(1,)] * 7
            )
        with pytest.raises(SchedulingError):
            engine.schedule_many([1.0] * 8, lambda: None, labels=["a"] * 7)

    def test_past_times_rejected(self):
        engine = VectorizedEngine()
        engine.run_until(2.0)
        with pytest.raises(SchedulingError):
            engine.schedule_at(1.0, lambda: None)
        with pytest.raises(SchedulingError):
            engine.schedule_many([3.0, 1.0] + [4.0] * 6, lambda: None)

    def test_pending_and_executed_counts(self):
        engine = VectorizedEngine()
        engine.schedule_many([float(i) for i in range(10)], lambda: None)
        engine.schedule_at(0.5, lambda: None)
        assert engine.pending_count == 11
        engine.run_until(4.5)
        assert engine.executed_count == 6
        assert engine.pending_count == 5


class TestOrderEquivalence:
    def test_sorted_large_batches(self):
        def drive(engine, log):
            for c in range(5):
                base = float(c)
                times = [base + i / 20.0 for i in range(16)]
                engine.schedule_many(
                    times,
                    [
                        (lambda i=c, j=j: log.append((i, j, engine.now)))
                        for j in range(16)
                    ],
                )
                engine.run_until(base + 1.0)

        assert_equivalent(drive)

    def test_unsorted_batches(self):
        def drive(engine, log):
            rng = np.random.default_rng(3)
            for c in range(5):
                base = float(c)
                times = [base + d for d in rng.uniform(0.0, 0.9, size=24)]
                engine.schedule_many(
                    times,
                    [
                        (lambda i=c, j=j: log.append((i, j, engine.now)))
                        for j in range(24)
                    ],
                )
                engine.run_until(base + 1.0)

        assert_equivalent(drive)

    def test_batches_racing_irregular_events_and_priorities(self):
        def drive(engine, log):
            rng = np.random.default_rng(11)
            for c in range(6):
                base = float(c)
                times = [base + d for d in rng.uniform(0.0, 0.9, size=12)]
                engine.schedule_many(
                    times,
                    [
                        (lambda i=c, j=j: log.append(("m", i, j, engine.now)))
                        for j in range(12)
                    ],
                )
                engine.schedule_at(
                    base + 0.45,
                    lambda i=c: log.append(("hi", i, engine.now)),
                    priority=-10,
                )
                engine.schedule_at(
                    base + 0.45, lambda i=c: log.append(("lo", i, engine.now))
                )
                engine.run_until(base + 1.0)

        assert_equivalent(drive)

    def test_equal_times_resolve_by_priority_then_seq(self):
        def drive(engine, log):
            times = [1.0] * 8
            engine.schedule_many(
                times,
                [(lambda j=j: log.append(("a", j))) for j in range(8)],
                priority=5,
            )
            engine.schedule_many(
                times,
                [(lambda j=j: log.append(("b", j))) for j in range(8)],
                priority=-5,
            )
            engine.run_until(2.0)

        assert_equivalent(drive)

    def test_callbacks_scheduling_mid_run(self):
        # A batch callback schedules new work *inside* the chunk window;
        # the vectorized engine must notice and re-race the calendar.
        def drive(engine, log):
            def spawn(tag):
                log.append((tag, engine.now))
                if tag % 3 == 0:
                    engine.schedule_at(
                        engine.now + 0.01,
                        lambda: log.append(("spawned", tag, engine.now)),
                    )

            times = [1.0 + i / 10.0 for i in range(12)]
            engine.schedule_many(
                times, [(lambda j=j: spawn(j)) for j in range(12)]
            )
            engine.run_until(5.0)

        assert_equivalent(drive)

    def test_cancellation_before_and_during_run(self):
        def drive(engine, log):
            events = engine.schedule_many(
                [1.0 + i / 10.0 for i in range(12)],
                [(lambda j=j: log.append(j)) for j in range(12)],
            )
            events[3].cancel()
            events[7].cancel()

            # Cancel a later batch event from inside a callback.
            def cancel_ten():
                log.append("cancelling")
                events[10].cancel()

            engine.schedule_at(1.55, cancel_ten, priority=-1)
            engine.run_until(3.0)

        assert_equivalent(drive)

    def test_interleaved_many_batches_and_singles(self):
        def drive(engine, log):
            rng = np.random.default_rng(23)
            for c in range(4):
                base = float(c)
                for _ in range(3):
                    size = int(rng.integers(2, 20))
                    times = [
                        base + d for d in rng.uniform(0.0, 0.9, size=size)
                    ]
                    engine.schedule_many(
                        times,
                        [
                            (lambda t=round(t, 6): log.append(("m", t)))
                            for t in times
                        ],
                    )
                engine.schedule_at(
                    base + float(rng.uniform(0.0, 0.9)),
                    lambda i=c: log.append(("s", i, engine.now)),
                )
                engine.run_until(base + 1.0)

        assert_equivalent(drive)


class TestExecutionApi:
    def test_step_and_run(self):
        engine = VectorizedEngine()
        fired: list[float] = []
        engine.schedule_many(
            [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
            lambda: fired.append(engine.now),
        )
        assert engine.step() is True
        assert fired == [1.0]
        assert engine.run(max_events=3) == 3
        assert fired == [1.0, 2.0, 3.0, 4.0]
        assert engine.run() == 4
        assert engine.step() is False

    def test_peek_time_spans_both_structures(self):
        engine = VectorizedEngine()
        engine.schedule_many([2.0 + i / 10.0 for i in range(8)], lambda: None)
        assert engine.peek_time() == 2.0
        engine.schedule_at(1.5, lambda: None)
        assert engine.peek_time() == 1.5

    def test_drain_matches_scalar(self):
        def build(engine_cls):
            engine = engine_cls()
            engine.schedule_many(
                [5.0, 1.0, 3.0, 4.0, 2.0, 6.0, 8.0, 7.0],
                lambda: None,
                labels=[f"b{i}" for i in range(8)],
            )
            engine.schedule_at(0.5, lambda: None, label="s")
            engine.run_until(2.5)
            return engine

        scalar, vector = build(Engine), build(VectorizedEngine)
        drained_s = [(e.time, e.label) for e in scalar.drain()]
        drained_v = [(e.time, e.label) for e in vector.drain()]
        assert drained_v == drained_s
        assert vector.pending_count == 0

    def test_run_until_time_advances_even_when_idle(self):
        engine = VectorizedEngine()
        engine.run_until(4.0)
        assert engine.now == 4.0
