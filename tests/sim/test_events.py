"""Unit tests for Event objects."""

from __future__ import annotations

from repro.sim.events import Event, EventState


def make(time=1.0, seq=1, priority=0, label=""):
    return Event(time, seq, lambda: None, priority=priority, label=label)


class TestLifecycle:
    def test_starts_pending(self):
        event = make()
        assert event.state is EventState.PENDING
        assert event.pending
        assert not event.cancelled

    def test_cancel_transitions(self):
        event = make()
        assert event.cancel()
        assert event.state is EventState.CANCELLED
        assert event.cancelled
        assert not event.pending

    def test_execute_transitions(self):
        fired = []
        event = Event(1.0, 1, fired.append, args=(42,))
        event._execute()
        assert event.state is EventState.EXECUTED
        assert fired == [42]

    def test_cancel_after_execute_fails(self):
        event = make()
        event._execute()
        assert not event.cancel()


class TestOrdering:
    def test_time_dominates(self):
        assert make(time=1.0, seq=99) < make(time=2.0, seq=1)

    def test_priority_breaks_time_ties(self):
        assert make(time=1.0, priority=-1, seq=99) < make(time=1.0, priority=0, seq=1)

    def test_seq_breaks_remaining_ties(self):
        assert make(time=1.0, seq=1) < make(time=1.0, seq=2)

    def test_sort_key_shape(self):
        event = make(time=2.0, seq=7, priority=3)
        assert event.sort_key() == (2.0, 3, 7)

    def test_sorting_a_list(self):
        events = [make(time=t, seq=i) for i, t in enumerate([3.0, 1.0, 2.0])]
        ordered = sorted(events)
        assert [e.time for e in ordered] == [1.0, 2.0, 3.0]
