"""Unit tests for tracing."""

from __future__ import annotations

from collections import deque

from repro.sim.trace import NullTracer, StreamingTracer, Tracer
from repro.telemetry.sinks import MemorySink


class TestTracer:
    def test_records_accumulate(self):
        tracer = Tracer()
        tracer.record(1.0, "job", "a")
        tracer.record(2.0, "message", "b", {"bytes": 10})
        assert len(tracer) == 2
        assert tracer.records[1].data["bytes"] == 10

    def test_category_filter(self):
        tracer = Tracer(categories=["job"])
        tracer.record(1.0, "job", "kept")
        tracer.record(1.0, "message", "dropped")
        assert [r.label for r in tracer.records] == ["kept"]

    def test_by_category(self):
        tracer = Tracer()
        tracer.record(1.0, "job", "a")
        tracer.record(2.0, "rm", "b")
        tracer.record(3.0, "job", "c")
        assert [r.label for r in tracer.by_category("job")] == ["a", "c"]

    def test_max_records_bounds_memory(self):
        tracer = Tracer(max_records=10)
        for i in range(25):
            tracer.record(float(i), "job", str(i))
        assert len(tracer) == 10
        assert tracer.records[-1].label == "24"

    def test_cap_drops_oldest_records(self):
        """Regression: the cap must evict from the *front* (oldest first)."""
        tracer = Tracer(max_records=5)
        for i in range(12):
            tracer.record(float(i), "job", str(i))
        assert len(tracer) == 5
        assert [r.label for r in tracer.records] == ["7", "8", "9", "10", "11"]
        # The buffer is a bounded deque, so eviction stays O(1) per record.
        assert isinstance(tracer.records, deque)
        assert tracer.records.maxlen == 5

    def test_cap_holds_under_sustained_load(self):
        tracer = Tracer(max_records=100)
        for i in range(10_000):
            tracer.record(float(i), "job", str(i))
        assert len(tracer) == 100
        assert tracer.records[0].label == "9900"

    def test_empty_allow_list_drops_everything(self):
        """categories=() is an empty allow-list, not 'no filter'."""
        tracer = Tracer(categories=())
        tracer.record(1.0, "job", "a")
        tracer.record(1.0, "message", "b")
        assert len(tracer) == 0

    def test_none_categories_keeps_everything(self):
        tracer = Tracer(categories=None)
        tracer.record(1.0, "job", "a")
        tracer.record(1.0, "anything", "b")
        assert len(tracer) == 2

    def test_by_category_preserves_record_order(self):
        tracer = Tracer()
        # Interleaved categories with equal timestamps: insertion order
        # must be preserved within a category.
        tracer.record(1.0, "job", "a")
        tracer.record(1.0, "rm", "x")
        tracer.record(1.0, "job", "b")
        tracer.record(2.0, "job", "c")
        assert [r.label for r in tracer.by_category("job")] == ["a", "b", "c"]

    def test_by_category_unknown_category_is_empty(self):
        tracer = Tracer()
        tracer.record(1.0, "job", "a")
        assert tracer.by_category("nope") == []

    def test_clear(self):
        tracer = Tracer()
        tracer.record(1.0, "job", "a")
        tracer.clear()
        assert len(tracer) == 0

    def test_clear_then_record_again(self):
        tracer = Tracer(max_records=3)
        for i in range(5):
            tracer.record(float(i), "job", str(i))
        tracer.clear()
        assert len(tracer) == 0
        tracer.record(9.0, "job", "fresh")
        assert len(tracer) == 1
        assert tracer.records[-1].label == "fresh"

    def test_len_counts_only_kept_records(self):
        tracer = Tracer(categories=["job"])
        tracer.record(1.0, "job", "kept")
        tracer.record(1.0, "message", "dropped")
        tracer.record(1.0, "job", "kept2")
        assert len(tracer) == 2

    def test_enabled_flag(self):
        assert Tracer().enabled
        assert not NullTracer().enabled


class TestNullTracer:
    def test_drops_everything(self):
        tracer = NullTracer()
        tracer.record(1.0, "job", "a")
        assert len(tracer) == 0


class TestStreamingTracer:
    def test_streams_records_to_sink(self):
        sink = MemorySink()
        tracer = StreamingTracer(sink)
        tracer.record(1.5, "job", "a", {"demand": 2.0})
        assert len(tracer) == 1
        assert sink.records == [
            {
                "t": 1.5,
                "kind": "trace",
                "cat": "job",
                "label": "a",
                "data": {"demand": 2.0},
            }
        ]

    def test_category_filter_applies_to_sink_too(self):
        sink = MemorySink()
        tracer = StreamingTracer(sink, categories=["job"])
        tracer.record(1.0, "job", "kept")
        tracer.record(1.0, "event", "dropped")
        assert [r["label"] for r in sink.records] == ["kept"]

    def test_buffer_stays_bounded_while_sink_keeps_all(self):
        sink = MemorySink()
        tracer = StreamingTracer(sink, max_records=10)
        for i in range(50):
            tracer.record(float(i), "job", str(i))
        assert len(tracer) == 10
        assert len(sink) == 50
