"""Unit tests for tracing."""

from __future__ import annotations

from repro.sim.trace import NullTracer, Tracer


class TestTracer:
    def test_records_accumulate(self):
        tracer = Tracer()
        tracer.record(1.0, "job", "a")
        tracer.record(2.0, "message", "b", {"bytes": 10})
        assert len(tracer) == 2
        assert tracer.records[1].data["bytes"] == 10

    def test_category_filter(self):
        tracer = Tracer(categories=["job"])
        tracer.record(1.0, "job", "kept")
        tracer.record(1.0, "message", "dropped")
        assert [r.label for r in tracer.records] == ["kept"]

    def test_by_category(self):
        tracer = Tracer()
        tracer.record(1.0, "job", "a")
        tracer.record(2.0, "rm", "b")
        tracer.record(3.0, "job", "c")
        assert [r.label for r in tracer.by_category("job")] == ["a", "c"]

    def test_max_records_bounds_memory(self):
        tracer = Tracer(max_records=10)
        for i in range(25):
            tracer.record(float(i), "job", str(i))
        assert len(tracer) == 10
        assert tracer.records[-1].label == "24"

    def test_clear(self):
        tracer = Tracer()
        tracer.record(1.0, "job", "a")
        tracer.clear()
        assert len(tracer) == 0

    def test_enabled_flag(self):
        assert Tracer().enabled
        assert not NullTracer().enabled


class TestNullTracer:
    def test_drops_everything(self):
        tracer = NullTracer()
        tracer.record(1.0, "job", "a")
        assert len(tracer) == 0
