"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_rejects_bad_table_number(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "4"])

    def test_rejects_unknown_policy_listing_registry(self, capsys):
        """--policy is validated at parse time against the registry."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "bogus"])
        err = capsys.readouterr().err
        assert "unknown policy 'bogus'" in err
        for name in ("market", "fairshare", "oracle", "predictive"):
            assert name in err

    def test_campaign_policies_validated_too(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "--policies", "predictive", "alchemy"]
            )
        assert "unknown policy 'alchemy'" in capsys.readouterr().err

    @pytest.mark.parametrize("name", ["market", "fairshare", "oracle"])
    def test_zoo_policies_parse(self, name):
        args = build_parser().parse_args(["run", "--policy", name])
        assert args.policy == name


class TestTableCommands:
    def test_table1(self, capsys):
        code, out, _ = run_cli(capsys, "table", "1")
        assert code == 0
        assert "Number of nodes" in out
        assert "990 ms" in out

    def test_table3(self, capsys):
        code, out, _ = run_cli(capsys, "table", "3")
        assert code == 0
        assert "Table 3" in out
        assert "paper" in out


class TestRunCommand:
    def test_single_run_prints_metrics(self, capsys):
        code, out, _ = run_cli(
            capsys, "--periods", "8", "run",
            "--policy", "predictive", "--pattern", "triangular",
            "--max-units", "5",
        )
        assert code == 0
        assert "combined" in out
        assert "rm_actions" in out

    def test_multi_task_run(self, capsys):
        code, out, _ = run_cli(
            capsys, "--periods", "8", "run", "--tasks", "2", "--max-units", "5"
        )
        assert code == 0
        assert "aaw1" in out and "aaw2" in out

    def test_replicated_run(self, capsys):
        code, out, _ = run_cli(
            capsys, "--periods", "6", "run", "--seeds", "2", "--max-units", "5"
        )
        assert code == 0
        assert "95% CI" in out

    def test_json_export(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        code, out, _ = run_cli(
            capsys, "--periods", "6", "run", "--max-units", "5",
            "--json", str(path),
        )
        assert code == 0
        data = json.loads(path.read_text())
        assert data["policy"] == "predictive"
        assert "combined" in data
        # Forecast calibration is part of the export contract (None when
        # the predictive policy produced no realized samples).
        assert "forecasts" in data

    def test_json_export_forecast_calibration(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        code, _, _ = run_cli(
            capsys, "--periods", "12", "run", "--policy", "predictive",
            "--pattern", "increasing", "--max-units", "8",
            "--json", str(path),
        )
        assert code == 0
        forecasts = json.loads(path.read_text())["forecasts"]
        assert forecasts is not None
        assert forecasts["n"] > 0
        assert forecasts["mape"] >= 0.0
        assert 0.0 <= forecasts["pessimism_rate"] <= 1.0
        assert 0.0 <= forecasts["missed_deadline_ratio"] <= 1.0


class TestTelemetry:
    def test_run_writes_telemetry_artifacts(self, capsys, tmp_path):
        tel = tmp_path / "tel"
        code, out, _ = run_cli(
            capsys, "--periods", "8", "run", "--policy", "predictive",
            "--max-units", "5", "--telemetry-dir", str(tel),
        )
        assert code == 0
        assert "telemetry written" in out
        trace = tel / "trace.jsonl"
        assert trace.exists()
        records = [
            json.loads(line)
            for line in trace.read_text().splitlines()
            if line.strip()
        ]
        assert any(r["kind"] == "run.meta" for r in records)
        assert any(r["kind"] == "rm.span" for r in records)
        metrics = json.loads((tel / "metrics.json").read_text())
        names = {m["name"] for m in metrics["metrics"]}
        assert "sim.events_executed" in names
        assert "task.periods_completed" in names
        prom = (tel / "metrics.prom").read_text()
        assert "# TYPE repro_sim_events_executed counter" in prom

    def test_telemetry_dir_rejects_multi_run(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "--periods", "6", "run", "--tasks", "2",
            "--max-units", "5", "--telemetry-dir", str(tmp_path / "tel"),
        )
        assert code == 2
        assert "single run" in err
        code, _, err = run_cli(
            capsys, "--periods", "6", "run", "--seeds", "2",
            "--max-units", "5", "--telemetry-dir", str(tmp_path / "tel2"),
        )
        assert code == 2
        assert "single run" in err

    def test_trace_command_summarizes_and_converts(self, capsys, tmp_path):
        tel = tmp_path / "tel"
        run_cli(
            capsys, "--periods", "8", "run", "--policy", "predictive",
            "--max-units", "5", "--telemetry-dir", str(tel),
        )
        trace = tel / "trace.jsonl"
        code, out, _ = run_cli(capsys, "trace", str(trace))
        assert code == 0
        assert "per-processor utilization" in out
        assert "forecast calibration" in out
        chrome = tel / "trace.chrome.json"
        assert chrome.exists()
        doc = json.loads(chrome.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) > 10

    def test_trace_command_no_chrome_and_explicit_target(self, capsys, tmp_path):
        tel = tmp_path / "tel"
        run_cli(
            capsys, "--periods", "6", "run", "--max-units", "5",
            "--telemetry-dir", str(tel),
        )
        trace = tel / "trace.jsonl"
        code, out, _ = run_cli(capsys, "trace", str(trace), "--no-chrome")
        assert code == 0
        assert not (tel / "trace.chrome.json").exists()
        target = tmp_path / "custom.json"
        code, _, _ = run_cli(capsys, "trace", str(trace), "--chrome", str(target))
        assert code == 0
        assert target.exists()

    def test_trace_command_missing_file_errors(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "trace", str(tmp_path / "nope.jsonl"))
        assert code == 2
        assert "error:" in err


class TestErrorHandling:
    def test_repro_error_exits_2_with_message(self, capsys):
        code, out, err = run_cli(capsys, "--periods", "0", "table", "1")
        assert code == 2
        assert "error:" in err

    def test_validate_exit_code_reflects_verdicts(self, capsys):
        code, out, _ = run_cli(capsys, "--periods", "20", "validate")
        assert "verdict" in out
        # On the reduced-but-representative run the claims hold.
        assert code == 0
        assert "FAIL" not in out


class TestCapacityCommand:
    def test_capacity_plan_printed(self, capsys):
        code, out, _ = run_cli(capsys, "capacity", "--units", "2", "35")
        assert code == 0
        assert "k(st3)" in out
        assert "feasible" in out
        assert "saturation" in out or "all planned workloads" in out

    def test_capacity_utilization_knob(self, capsys):
        code, out, _ = run_cli(
            capsys, "capacity", "--units", "10", "--utilization", "0.6"
        )
        assert code == 0
        assert "60%" in out


class TestReportCommand:
    def test_report_to_stdout(self, capsys):
        code, out, _ = run_cli(
            capsys, "--periods", "6", "report", "--units", "1",
            "--skip-tables", "--skip-validation",
        )
        assert code == 0
        assert "# Reproduction report" in out
        assert "Figure 10" in out


class TestOtherCommands:
    def test_patterns(self, capsys):
        code, out, _ = run_cli(
            capsys, "--periods", "6", "patterns", "--max-units", "4"
        )
        assert code == 0
        assert "triangular" in out

    def test_profile(self, capsys):
        code, out, _ = run_cli(capsys, "profile", "--subtask", "3",
                               "--repetitions", "1")
        assert code == 0
        assert "a1" in out and "R^2" in out

    def test_figure8(self, capsys):
        code, out, _ = run_cli(capsys, "figure", "8")
        assert code == 0
        assert "Figure 8" in out

    def test_figure10_reduced(self, capsys):
        code, out, _ = run_cli(
            capsys, "--periods", "8", "figure", "10", "--units", "1", "10"
        )
        assert code == 0
        assert "predictive" in out and "nonpredictive" in out

    def test_figure10_csv_export(self, capsys, tmp_path):
        path = tmp_path / "fig10.csv"
        code, out, _ = run_cli(
            capsys, "--periods", "6", "figure", "10", "--units", "1", "5",
            "--csv", str(path),
        )
        assert code == 0
        from repro.experiments.export import figure_from_csv

        x_label, x_values, series = figure_from_csv(path)
        assert x_values == [1.0, 5.0]
        assert set(series) == {"predictive", "nonpredictive"}

    def test_multi_panel_csv_gets_suffixes(self, capsys, tmp_path):
        path = tmp_path / "fig9.csv"
        code, out, _ = run_cli(
            capsys, "--periods", "6", "figure", "9", "--units", "5",
            "--csv", str(path),
        )
        assert code == 0
        written = sorted(p.name for p in tmp_path.glob("fig9_*.csv"))
        assert written == ["fig9_1.csv", "fig9_2.csv", "fig9_3.csv", "fig9_4.csv"]


GATE_RULES_TOML = """\
[[slo.rules]]
name = "forecast-calibration"
signal = "forecast_calibration_error"
objective = 0.25
tolerance = 0.5
windows = [10.0, 30.0]
"""


class TestSloCommand:
    def test_list_prints_rule_table_without_running(self, capsys):
        code, out, _ = run_cli(capsys, "slo", "--list")
        assert code == 0
        for name in ("deadline-miss-rate", "availability",
                     "forecast-calibration", "message-loss"):
            assert name in out

    def test_healthy_run_passes_check(self, capsys, tmp_path):
        report_path = tmp_path / "slo.json"
        code, out, _ = run_cli(
            capsys, "--periods", "30", "--seed", "0", "slo",
            "--max-units", "10", "--check", "--json", str(report_path),
        )
        assert code == 0
        assert "PASS" in out
        data = json.loads(report_path.read_text())
        assert data["passed"] is True
        assert {v["name"] for v in data["verdicts"]} >= {"deadline-miss-rate"}

    def test_gate_exit_codes_unhardened_vs_hardened(self, capsys, tmp_path):
        rules = tmp_path / "rules.toml"
        rules.write_text(GATE_RULES_TOML)
        gate = ["--seed", "0", "slo", "--max-units", "30",
                "--scenario", "estimator_bias", "--rules", str(rules),
                "--check"]
        code, out, _ = run_cli(capsys, *gate)
        assert code == 1
        assert "FAIL" in out
        code, out, _ = run_cli(capsys, *gate, "--hardened")
        assert code == 0
        assert "FAIL" not in out

    def test_bad_rules_file_is_a_cli_error(self, capsys, tmp_path):
        rules = tmp_path / "rules.toml"
        rules.write_text("[[slo.rules]]\nname = 'x'\nsignal = 'nope'\n"
                         "objective = 0.1\n")
        code, _, err = run_cli(capsys, "slo", "--rules", str(rules))
        assert code == 2
        assert "unknown signal" in err


class TestReportHealthCommand:
    def test_health_html_to_stdout(self, capsys):
        code, out, _ = run_cli(
            capsys, "--periods", "8", "report", "--health",
            "--max-units", "5",
        )
        assert code == 0
        assert out.startswith("<!DOCTYPE html>")
        assert "<h2>Run" in out and "<h2>Metrics" in out
        assert "<h2>SLOs" in out and "<h2>Profile" in out

    def test_health_html_is_deterministic_on_disk(self, capsys, tmp_path):
        argv = ["--periods", "8", "--seed", "1", "report", "--health",
                "--max-units", "5"]
        first, second = tmp_path / "a.html", tmp_path / "b.html"
        assert run_cli(capsys, *argv, "--out", str(first))[0] == 0
        assert run_cli(capsys, *argv, "--out", str(second))[0] == 0
        assert first.read_bytes() == second.read_bytes()

    def test_health_report_embeds_rollup(self, capsys, tmp_path):
        rollup = tmp_path / "rollup.json"
        code, _, _ = run_cli(
            capsys, "--periods", "6", "campaign", "--units", "5",
            "--slo", "--rollup", str(rollup), "--quiet",
        )
        assert code == 0
        code, out, _ = run_cli(
            capsys, "--periods", "8", "report", "--health",
            "--max-units", "5", "--rollup", str(rollup),
        )
        assert code == 0
        assert "Campaign rollup" in out


class TestCampaignSloRollup:
    def test_campaign_writes_rollup_with_verdicts(self, capsys, tmp_path):
        rollup = tmp_path / "rollup.json"
        code, out, _ = run_cli(
            capsys, "--periods", "6", "campaign", "--units", "5",
            "--slo", "--rollup", str(rollup), "--quiet",
        )
        assert code == 0
        assert "rollup written" in out
        data = json.loads(rollup.read_text())
        assert data["kind"] == "campaign_rollup"
        assert data["aggregate"]["n_runs"] == len(data["runs"]) == 2
        for cell in data["runs"].values():
            assert cell["slo"] is not None
            assert cell["decision_digest"]

    def test_campaign_without_slo_leaves_verdicts_absent(self, capsys, tmp_path):
        rollup = tmp_path / "rollup.json"
        code, _, _ = run_cli(
            capsys, "--periods", "6", "campaign", "--units", "5",
            "--rollup", str(rollup), "--quiet",
        )
        assert code == 0
        data = json.loads(rollup.read_text())
        assert data["aggregate"]["slo"]["absent"] == 2
